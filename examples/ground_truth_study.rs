//! The §2 pipeline end to end: build a verified ground-truth sample, look
//! at each behavioral feature's separation, then run the Table-1 bake-off
//! (RBF-SVM vs. calibrated threshold rule, 5-fold cross-validation).
//!
//! ```sh
//! cargo run --release --example ground_truth_study [-- tiny|small]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::eval::cross_validate;
use renren_sybils::detect::svm::kernel::KernelSvmParams;
use renren_sybils::detect::{KernelSvm, ThresholdClassifier};
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::{FeatureExtractor, FeatureVector};
use renren_sybils::sim::{simulate, SimConfig};
use renren_sybils::stats::{ascii, Cdf};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let config = match scale.as_str() {
        "small" => SimConfig::small(2026),
        _ => SimConfig::tiny(2026),
    };
    let per_class = if scale == "small" { 250 } else { 50 };

    println!("simulating ({scale}) ...");
    let out = simulate(config);
    let fx = FeatureExtractor::new(&out);
    let mut rng = StdRng::seed_from_u64(99);
    let mut ds = GroundTruth::sample(&fx, per_class, &mut rng);
    println!(
        "ground truth: {} Sybils + {} normal users\n",
        ds.num_sybil(),
        ds.len() - ds.num_sybil()
    );

    // Feature separation, one CDF pair per feature.
    type FeatureView = (&'static str, fn(&FeatureVector) -> f64);
    let feature_views: [FeatureView; 4] = [
        ("invitations per active hour (Fig. 1)", |f| f.inv_freq_1h),
        ("outgoing accept ratio (Fig. 2)", |f| f.outgoing_accept_ratio),
        ("incoming accept ratio (Fig. 3)", |f| f.incoming_accept_ratio),
        ("first-50 clustering coefficient (Fig. 4)", |f| {
            f.clustering_coefficient
        }),
    ];
    for (name, get) in feature_views {
        let sybil = Cdf::from_iter(
            ds.features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l)
                .map(|(f, _)| get(f)),
        );
        let normal = Cdf::from_iter(
            ds.features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| !l)
                .map(|(f, _)| get(f)),
        );
        println!("--- {name}");
        println!(
            "    medians: sybil {:.3}, normal {:.3}",
            sybil.median().unwrap_or(0.0),
            normal.median().unwrap_or(0.0)
        );
        print!(
            "{}",
            ascii::plot_cdfs(&[("Sybil", &sybil), ("Normal", &normal)], 60, 10, false)
        );
        println!();
    }

    // Table-1 style evaluation.
    ds.shuffle(&mut rng);
    let svm = cross_validate(&ds, 5, |train| {
        KernelSvm::train_features(&train.features, &train.labels, &KernelSvmParams::default())
    });
    let thr = cross_validate(&ds, 5, ThresholdClassifier::calibrate);
    println!("5-fold cross-validation (Table 1):");
    println!(
        "  SVM        sybil recall {:.1}%  normal recall {:.1}%  accuracy {:.1}%",
        100.0 * svm.sybil_recall(),
        100.0 * svm.normal_recall(),
        100.0 * svm.accuracy()
    );
    println!(
        "  threshold  sybil recall {:.1}%  normal recall {:.1}%  accuracy {:.1}%",
        100.0 * thr.sybil_recall(),
        100.0 * thr.normal_recall(),
        100.0 * thr.accuracy()
    );
    println!("\npaper: both ≈ 99%/99% — the cheap rule matches the SVM.");
}
