//! Audit the community-based Sybil defenses (§3.1): run SybilGuard,
//! SybilLimit, SybilInfer, SumUp, and the conductance-ranking reduction on
//! (a) the synthetic injected-cluster graphs they were validated on and
//! (b) a realistic simulated topology — reproducing the paper's conclusion
//! that integrated Sybils defeat all of them.
//!
//! ```sh
//! cargo run --release --example community_defense_audit
//! ```

use rand::prelude::*;
use rand::rngs::StdRng;
use renren_sybils::defense::common::injected_cluster_graph;
use renren_sybils::defense::{
    evaluate_defense, ConductanceRanking, SybilDefense, SybilGuard, SybilInfer, SybilLimit,
};
use renren_sybils::graph::NodeId;
use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    // --- (a) the synthetic validation setting -----------------------------
    println!("== injected-cluster graph (how these defenses were validated) ==");
    let mut rng = StdRng::seed_from_u64(7);
    let (inj, first_sybil) = injected_cluster_graph(2500, 250, 10, &mut rng);
    println!(
        "honest BA region: 2500 nodes; injected Sybil region: 250 nodes; 10 attack edges\n"
    );
    let inj_sybils: Vec<NodeId> = (0..25u32).map(|i| NodeId(first_sybil.0 + i)).collect();
    let inj_honest: Vec<NodeId> = (100..125u32).map(NodeId).collect();
    let verifier = NodeId(0);

    let defenses: Vec<Box<dyn SybilDefense>> = vec![
        Box::new(SybilGuard::new(&inj, Some(60), 1)),
        Box::new(SybilLimit::new(&inj, 2)),
        Box::new(SybilInfer::new(&inj, 3)),
        Box::new(ConductanceRanking::new()),
    ];
    for d in &defenses {
        let e = evaluate_defense(d.as_ref(), &inj, verifier, &inj_sybils, &inj_honest);
        println!(
            "  {:20} sybils accepted {:3.0}%   honest rejected {:3.0}%",
            d.name(),
            100.0 * e.sybil_acceptance_rate(),
            100.0 * e.honest_rejection_rate()
        );
    }

    // --- (b) the wild topology --------------------------------------------
    println!("\n== simulated wild topology (snowball-sampled, integrated Sybils) ==");
    let out = simulate(SimConfig::small(4));
    let g = &out.graph;
    let mut rng = StdRng::seed_from_u64(8);
    let mut sybils: Vec<NodeId> = out
        .sybil_ids()
        .into_iter()
        .filter(|&s| g.degree(s) >= 5)
        .collect();
    sybils.shuffle(&mut rng);
    sybils.truncate(25);
    let mut honest: Vec<NodeId> = out
        .normal_ids()
        .into_iter()
        .filter(|&n| g.degree(n) >= 5)
        .collect();
    honest.shuffle(&mut rng);
    honest.truncate(25);
    let verifier = *honest.last().expect("sampled honest users");
    println!(
        "{} nodes, {} edges; verifier degree {}\n",
        g.num_nodes(),
        g.num_edges(),
        g.degree(verifier)
    );

    let wild: Vec<Box<dyn SybilDefense>> = vec![
        Box::new(SybilGuard::new(g, None, 1)),
        Box::new(SybilLimit::new(g, 2)),
        Box::new(SybilInfer::new(g, 3)),
        Box::new(ConductanceRanking::new()),
    ];
    for d in &wild {
        let e = evaluate_defense(d.as_ref(), g, verifier, &sybils, &honest);
        println!(
            "  {:20} sybils accepted {:3.0}%   honest rejected {:3.0}%",
            d.name(),
            100.0 * e.sybil_acceptance_rate(),
            100.0 * e.honest_rejection_rate()
        );
    }
    println!(
        "\nconclusion (paper §3): Sybils that integrate into the social graph are \
         indistinguishable to community-based detection — either they are accepted, \
         or honest users drown in false rejections."
    );
}
