//! Social-honeypot viability study (related work, §4): Webb et al. caught
//! MySpace spammers with honeypot accounts that wait to be friended. The
//! paper's counterpoint: Renren Sybils *target popular users*, so a
//! honeypot only attracts Sybils if it looks popular.
//!
//! We measure exactly that on simulated data: group normal accounts by
//! popularity (degree decile) and count how many Sybil friend requests
//! each group received per account.
//!
//! ```sh
//! cargo run --release --example honeypot
//! ```

use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    println!("simulating ...");
    let out = simulate(SimConfig::small(2024));

    // Sybil requests received per normal account.
    let n = out.accounts.len();
    let mut sybil_reqs = vec![0u32; n];
    for r in out.log.records() {
        if out.is_sybil(r.from) && !out.is_sybil(r.to) {
            sybil_reqs[r.to.index()] += 1;
        }
    }

    // Decile by degree among normal users.
    let mut normals = out.normal_ids();
    normals.sort_by_key(|&u| out.graph.degree(u));
    let decile = normals.len() / 10;
    println!("\nSybil friend requests received, by popularity decile:");
    println!("{:>8} {:>12} {:>16} {:>22}", "decile", "mean degree", "accounts", "sybil reqs / account");
    for d in 0..10 {
        let slice = &normals[d * decile..((d + 1) * decile).min(normals.len())];
        let mean_deg =
            slice.iter().map(|&u| out.graph.degree(u)).sum::<usize>() as f64 / slice.len() as f64;
        let reqs: u32 = slice.iter().map(|&u| sybil_reqs[u.index()]).sum();
        println!(
            "{:>8} {:>12.1} {:>16} {:>22.3}",
            d + 1,
            mean_deg,
            slice.len(),
            reqs as f64 / slice.len() as f64
        );
    }

    let bottom: u32 = normals[..decile].iter().map(|&u| sybil_reqs[u.index()]).sum();
    let top: u32 = normals[normals.len() - decile..]
        .iter()
        .map(|&u| sybil_reqs[u.index()])
        .sum();
    println!(
        "\ntop decile attracts {:.0}x the Sybil requests of the bottom decile.",
        top as f64 / bottom.max(1) as f64
    );
    println!(
        "=> a passive, unpopular honeypot (bottom decile) would wait a long time; \
         honeypots must be engineered to appear popular (paper §4)."
    );
}
