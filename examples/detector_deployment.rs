//! Deployment rehearsal: replay a simulated request stream through the
//! streaming detector exactly the way the paper's system consumed Renren's
//! production events (§2.3, deployed August 2010, ~100k Sybils banned by
//! February 2011).
//!
//! Compares a static calibrated rule against the adaptive-feedback
//! variant, and reports catch rate, false positives, and detection
//! latency.
//!
//! ```sh
//! cargo run --release --example detector_deployment
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::realtime::{replay, RealtimeConfig};
use renren_sybils::detect::ThresholdClassifier;
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::FeatureExtractor;
use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    println!("simulating six months of OSN traffic ...");
    let out = simulate(SimConfig::small(777));
    let stats = out.stats();
    println!(
        "{} accounts, {} requests, {} Sybils created, {} already banned by Renren's \
         prior techniques\n",
        out.accounts.len(),
        stats.requests,
        out.sybil_ids().len(),
        stats.banned
    );

    // Calibrate an initial rule on a small labeled sample, as the authors
    // did on their 1000+1000 ground truth before going live.
    let fx = FeatureExtractor::new(&out);
    let mut rng = StdRng::seed_from_u64(5);
    let ds = GroundTruth::sample(&fx, 150, &mut rng);
    let rule = ThresholdClassifier::calibrate(&ds);
    println!(
        "initial rule from ground truth: ratio < {:.2} ∧ freq > {:.1} ∧ cc < {}",
        rule.max_out_ratio,
        rule.min_freq,
        if rule.max_cc.is_finite() {
            format!("{:.3}", rule.max_cc)
        } else {
            "(disabled)".into()
        }
    );

    for adaptive in [false, true] {
        let cfg = RealtimeConfig {
            rule,
            adaptive,
            ..RealtimeConfig::default()
        };
        let report = replay(&out, &cfg);
        let label = if adaptive { "adaptive" } else { "static " };
        println!(
            "\n[{label}] detections {} | sybils caught {} ({:.0}% of eligible) | \
             false positives {} | mean latency {:.0}h",
            report.detections.len(),
            report.true_positives,
            100.0 * report.catch_rate(),
            report.false_positives,
            report.mean_latency_h
        );
        if adaptive {
            println!(
                "[{label}] final adaptive rule: ratio < {:.2} ∧ freq > {:.1}",
                report.final_rule.max_out_ratio, report.final_rule.min_freq
            );
        }
        // The first few detections, like an operator's dashboard.
        for d in report.detections.iter().take(5) {
            println!(
                "    t={:7.1}h  account {:>6}  {}",
                d.at.as_hours(),
                d.account.0,
                if d.correct { "confirmed Sybil" } else { "FALSE POSITIVE" }
            );
        }
    }
}
