//! Graph census: does the simulated network look like a real OSN?
//!
//! Computes the structural profile of (a) the simulated wild graph,
//! (b) its honest-only subgraph, and (c) a degree-matched Barabási–Albert
//! null model, side by side. Real-OSN signatures to look for: heavy
//! degree tail, high clustering relative to the null model, positive-ish
//! assortativity, a single giant component, short paths.
//!
//! ```sh
//! cargo run --release --example graph_census
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::graph::generators;
use renren_sybils::graph::profile::GraphProfile;
use renren_sybils::graph::subgraph::InducedSubgraph;
use renren_sybils::graph::Timestamp;
use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    println!("simulating ...");
    let out = simulate(SimConfig::small(8));
    let mut rng = StdRng::seed_from_u64(1);

    println!("\n== wild simulated graph (normal users + Sybils) ==");
    let wild = GraphProfile::compute(&out.graph, 12, &mut rng);
    print!("{}", wild.render());

    println!("\n== honest-only subgraph ==");
    let honest = InducedSubgraph::new(&out.graph, &out.normal_ids());
    let honest_profile = GraphProfile::compute(&honest.graph, 12, &mut rng);
    print!("{}", honest_profile.render());

    println!("\n== Barabási–Albert null model (same n, similar m) ==");
    let m_per_node =
        ((out.graph.num_edges() as f64 / out.graph.num_nodes() as f64).round() as usize).max(1);
    let ba = generators::barabasi_albert(
        out.graph.num_nodes(),
        m_per_node,
        Timestamp::ZERO,
        &mut rng,
    );
    let ba_profile = GraphProfile::compute(&ba, 12, &mut rng);
    print!("{}", ba_profile.render());

    println!(
        "\nsignatures: the simulated graph clusters {}x more than the BA null model \
         (triadic closure at work) while keeping comparable path lengths ({:.1} vs {:.1}).",
        (wild.avg_clustering / ba_profile.avg_clustering.max(1e-9)).round(),
        wild.mean_distance,
        ba_profile.mean_distance
    );
}
