//! What-if: a defense-aware attacker (the arms race the paper's
//! conclusion predicts).
//!
//! The deployed detector keys primarily on invitation frequency. What if
//! attackers throttle their tools to a fifth of the normal rate? This
//! example simulates normal and stealth campaigns and replays both
//! through the static and adaptive detectors.
//!
//! ```sh
//! cargo run --release --example stealth_attacker
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::realtime::{replay, RealtimeConfig};
use renren_sybils::detect::ThresholdClassifier;
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::FeatureExtractor;
use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    // Calibrate the rule on a NORMAL campaign (what the defender has seen).
    println!("simulating the baseline campaign (tools at full rate) ...");
    let baseline = simulate(SimConfig::small(99));
    let fx = FeatureExtractor::new(&baseline);
    let mut rng = StdRng::seed_from_u64(5);
    let ds = GroundTruth::sample(&fx, 150, &mut rng);
    let rule = ThresholdClassifier::calibrate(&ds);
    println!(
        "rule learned from baseline: ratio < {:.2} ∧ freq > {:.1}\n",
        rule.max_out_ratio, rule.min_freq
    );

    // The attacker adapts: throttle to 20% of the tool rate.
    println!("simulating the STEALTH campaign (tools throttled to 20%) ...");
    let mut stealth_cfg = SimConfig::small(99);
    stealth_cfg.sybil.stealth_rate_mult = 0.2;
    let stealth = simulate(stealth_cfg);

    for (name, out) in [("baseline", &baseline), ("stealth", &stealth)] {
        println!("== {name} campaign ==");
        for adaptive in [false, true] {
            let report = replay(
                out,
                &RealtimeConfig {
                    rule,
                    adaptive,
                    ..RealtimeConfig::default()
                },
            );
            println!(
                "  {:8} detector: catch rate {:>3.0}%  false positives {:>4}  \
                 mean latency {:>4.0}h",
                if adaptive { "adaptive" } else { "static" },
                100.0 * report.catch_rate(),
                report.false_positives,
                report.mean_latency_h
            );
        }
        // The throttled attacker also pays a price: fewer requests, fewer
        // accepted friends per unit time.
        let stats = out.stats();
        println!(
            "  attacker throughput: {} requests, {} accepted ({} sybils)\n",
            stats.sybil_requests,
            stats.sybil_accepted,
            out.sybil_ids().len()
        );
    }
    println!(
        "takeaway: throttling degrades the static rule far more than the adaptive \
         one, and costs the attacker most of their friending throughput — the \
         paper's call for adaptive, multi-signal detection in one experiment."
    );
}
