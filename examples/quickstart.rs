//! Quickstart: simulate a small OSN with Sybil attackers, extract the
//! paper's behavioral features, calibrate the threshold detector, and
//! measure it — in about thirty lines of API use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::eval::evaluate;
use renren_sybils::detect::ThresholdClassifier;
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::FeatureExtractor;
use renren_sybils::sim::{simulate, SimConfig};

fn main() {
    // 1. Simulate a Renren-like network: normal users befriend
    //    acquaintances; attackers drive Sybils with commercial tools.
    let out = simulate(SimConfig::tiny(42));
    let stats = out.stats();
    println!(
        "simulated {} accounts, {} friend requests, {} edges ({} Sybil edges, {} attack edges)",
        out.accounts.len(),
        stats.requests,
        stats.edges,
        stats.sybil_edges,
        stats.attack_edges
    );

    // 2. Extract the four behavioral features of §2.2 for a labeled sample.
    let fx = FeatureExtractor::new(&out);
    let mut rng = StdRng::seed_from_u64(7);
    let ds = GroundTruth::sample(&fx, 60, &mut rng);
    println!(
        "ground-truth sample: {} Sybils + {} normal users",
        ds.num_sybil(),
        ds.len() - ds.num_sybil()
    );

    // 3. Calibrate the paper's threshold rule on the sample.
    let rule = ThresholdClassifier::calibrate(&ds);
    println!(
        "calibrated rule: accept-ratio < {:.2} AND freq > {:.1} AND cc < {}",
        rule.max_out_ratio,
        rule.min_freq,
        if rule.max_cc.is_finite() {
            format!("{:.3}", rule.max_cc)
        } else {
            "(disabled)".into()
        }
    );

    // 4. Evaluate.
    let m = evaluate(&rule, &ds.features, &ds.labels);
    println!(
        "training-sample accuracy {:.1}% (sybil recall {:.1}%, false positives {:.1}%)",
        100.0 * m.accuracy(),
        100.0 * m.sybil_recall(),
        100.0 * m.false_positive_rate()
    );
}
