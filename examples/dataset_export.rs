//! Dataset interchange: export a simulated measurement dataset as CSV
//! (graph, labels, request log), reload it, and verify the analyses agree
//! — the workflow for archiving runs or handing data to external tooling.
//!
//! ```sh
//! cargo run --release --example dataset_export [-- OUT_DIR]
//! ```

use renren_sybils::sim::{io, simulate, SimConfig};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/dataset-tiny-42".to_string());
    println!("simulating ...");
    let out = simulate(SimConfig::tiny(42));
    let stats = out.stats();
    println!(
        "dataset: {} accounts, {} requests, {} edges ({} sybil edges)",
        out.accounts.len(),
        stats.requests,
        stats.edges,
        stats.sybil_edges
    );

    io::export_dataset(&out, &dir).expect("export failed");
    println!("exported to {dir}/ (edges.csv, accounts.csv, requests.csv)");

    let back = io::import_dataset(&dir, SimConfig::tiny(42)).expect("import failed");
    let back_stats = back.stats();
    assert_eq!(stats.requests, back_stats.requests);
    assert_eq!(stats.edges, back_stats.edges);
    assert_eq!(stats.sybil_edges, back_stats.sybil_edges);
    assert_eq!(
        out.sybil_connectivity_fraction(),
        back.sybil_connectivity_fraction()
    );
    println!(
        "reloaded and verified: sybil-edge incidence {:.1}% matches exactly",
        100.0 * back.sybil_connectivity_fraction()
    );

    // The reloaded dataset drives the pipeline like a fresh run.
    use renren_sybils::features::FeatureExtractor;
    let fx = FeatureExtractor::new(&back);
    let sybil = back.sybil_ids()[0];
    let f = fx.features_for(sybil);
    println!(
        "spot check — sybil {}: freq_1h {:.1}, out-ratio {:.2}, cc {:.4}",
        sybil.0, f.inv_freq_1h, f.outgoing_accept_ratio, f.clustering_coefficient
    );
}
