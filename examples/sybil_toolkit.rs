//! Tool forensics (§3.4 / Table 3): simulate attackers running each of the
//! three commercial Sybil tools and compare the topology each produces —
//! the snowball-sampling bias is what creates accidental Sybil edges.
//!
//! ```sh
//! cargo run --release --example sybil_toolkit
//! ```

use renren_sybils::graph::metrics;
use renren_sybils::graph::{components, NodeId};
use renren_sybils::sim::{simulate, SimConfig, ToolKind};

fn main() {
    println!("tool catalog (paper Table 3):");
    for spec in ToolKind::catalog() {
        println!(
            "  {:34} {:8} {:15} {:>4.0} req/h, snowball bias β={:.1}, \
             popular pool ≥ p{:.0}",
            spec.name,
            spec.platform,
            spec.cost,
            spec.requests_per_hour,
            spec.degree_bias,
            100.0 * spec.popular_percentile
        );
    }

    println!("\nsimulating an attack campaign ...");
    let out = simulate(SimConfig::small(31337));

    for spec in ToolKind::catalog() {
        let accounts: Vec<NodeId> = out
            .sybil_ids()
            .into_iter()
            .filter(|&s| out.accounts[s.index()].tool() == Some(spec.kind))
            .collect();
        if accounts.is_empty() {
            continue;
        }
        let mut sent = 0usize;
        let mut accepted = 0usize;
        for r in out.log.records() {
            if out.accounts[r.from.index()].tool() == Some(spec.kind) {
                sent += 1;
                accepted += r.outcome.is_accepted() as usize;
            }
        }
        let degrees: Vec<usize> = accounts.iter().map(|&a| out.graph.degree(a)).collect();
        let mean_deg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        let with_sybil_edge = accounts
            .iter()
            .filter(|&&a| out.graph.neighbors(a).iter().any(|nb| out.is_sybil(nb.node)))
            .count();
        // Friend-set popularity: the mean degree of friended targets — the
        // snowball bias signature.
        let mut friend_deg_sum = 0usize;
        let mut friend_n = 0usize;
        for &a in &accounts {
            for nb in out.graph.neighbors(a) {
                friend_deg_sum += out.graph.degree(nb.node);
                friend_n += 1;
            }
        }
        println!("\n=== {}", spec.name);
        println!(
            "  accounts {:4}  requests {:6}  accepted {:4.1}%  mean degree {:5.1}",
            accounts.len(),
            sent,
            100.0 * accepted as f64 / sent.max(1) as f64,
            mean_deg
        );
        println!(
            "  mean friend degree {:.0} (population mean ≈ {:.0}) — popularity bias at work",
            friend_deg_sum as f64 / friend_n.max(1) as f64,
            2.0 * out.graph.num_edges() as f64 / out.graph.num_nodes() as f64
        );
        println!(
            "  accounts with ≥1 accidental Sybil edge: {}/{} ({:.0}%)",
            with_sybil_edge,
            accounts.len(),
            100.0 * with_sybil_edge as f64 / accounts.len() as f64
        );
    }

    // The aggregate §3.3 picture.
    let comps = components::components_of_subset(&out.graph, |n| out.is_sybil(n));
    let nontrivial: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
    println!(
        "\nacross all tools: {} Sybil components (size ≥ 2); largest: {} members",
        nontrivial.len(),
        nontrivial.first().map_or(0, |c| c.len())
    );
    if let Some(giant) = nontrivial.first() {
        let cut = metrics::cut_stats(&out.graph, &giant.nodes);
        println!(
            "largest component: {} Sybil edges vs {} attack edges — \
             {}x more attack edges (the anti-community of Fig. 7)",
            cut.internal_edges,
            cut.crossing_edges,
            cut.crossing_edges / cut.internal_edges.max(1)
        );
    }
}
