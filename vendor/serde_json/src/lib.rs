//! Offline-compatible subset of `serde_json`.
//!
//! Serializes any [`serde::Serialize`] type to JSON text (compact or
//! pretty) via the vendored serde [`Value`] tree, and parses JSON text
//! back into a [`Value`] (or any [`serde::Deserialize`] type).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Error from serialization or parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Integral floats print like serde_json ("1.0"), not like Rust's
        // Display ("1").
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Map(entries) => write_block(out, indent, '{', '}', entries.len(), |out, i, ind| {
            write_escaped(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, ind);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated utf8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid utf8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| Error::new("unexpected end"))? {
            b'n' => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected ',' or '}'")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

/// Build a [`Value`] with JSON-like syntax.
///
/// Values may be `null`, booleans, numbers (including negative literals),
/// strings, arbitrary expressions implementing `Serialize`, nested arrays,
/// and nested objects — in any combination, exactly like the upstream
/// macro. Implemented as a token-tree muncher ([`json_internal!`]).
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Recursive worker for [`json!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- array muncher: @array [built elements] remaining tokens -----
    // Done (with or without trailing comma).
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    // Next element is a keyword / nested structure.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma, or the last one.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object muncher: @object $map (key tokens) (remaining) (copy) -----
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by a comma, then continue.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.extend([(($($key)+).to_string(), $value)]);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.extend([(($($key)+).to_string(), $value)]);
    };
    // Value is a keyword / nested structure.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is an expression followed by a comma, or the last one.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- primary entry points -----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Seq(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Seq($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Map(vec![]) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Map({
            let mut object: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::__private::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "renren",
            "count": 3,
            "neg": -4,
            "pi": 3.5,
            "flag": true,
            "nothing": null,
            "seq": [1, 2, 3]
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["count"], 3);
        assert_eq!(back["name"], "renren");
        assert_eq!(back["seq"][1], 2);
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn compact_formatting() {
        let v = json!({"a": [1, 2], "b": "x"});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2],"b":"x"}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("line\n\"quoted\"\ttab \\ 中".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
