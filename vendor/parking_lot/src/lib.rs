//! Offline-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `lock()`
//! returns the guard directly. A poisoned std lock (a panic while held)
//! just hands back the inner data, matching parking_lot's behavior of not
//! tracking poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with the parking_lot API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Poison-free reader-writer lock with the parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
