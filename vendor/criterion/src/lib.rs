//! Offline-compatible subset of `criterion`.
//!
//! Implements just enough of the criterion API for this workspace's
//! benches to compile and produce wall-clock timings: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. There is no statistical analysis; each
//! `bench_function` runs a fixed number of timed batches and reports the
//! fastest mean iteration time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure-driven benchmark and print the result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let best = bencher
            .samples
            .iter()
            .min()
            .copied()
            .unwrap_or(Duration::ZERO);
        println!("bench {id:<40} {:>12.3?}/iter ({} samples)", best, bencher.samples.len());
        self
    }
}

/// Passed to the benchmark closure; drives timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording mean per-iteration time per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then calibrate a batch size targeting ~20ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_batch);
        }
    }
}

/// Group benchmark functions under a config, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn shorthand_group_compiles() {
        criterion_group!(quick, sample_bench);
        quick();
    }
}
