//! Offline-compatible subset of `proptest`.
//!
//! Provides the [`proptest!`] macro, range/tuple/collection strategies, and
//! the `prop_assert*` family. Inputs are drawn from a deterministic RNG
//! seeded from the test's module path and case index, so every run sees the
//! same cases (full shrinking is intentionally not implemented; failures
//! report the offending case seed instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Test-runner configuration and error plumbing used by the macros.
pub mod test_runner {
    /// The deterministic RNG behind every strategy.
    pub type TestRng = rand::rngs::StdRng;

    /// Build the RNG for one test case, seeded from the test path and case
    /// index so runs are reproducible.
    pub fn new_rng(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::SeedableRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }

    /// Subset of proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo >= self.size.hi {
                self.size.lo
            } else {
                rand::Rng::random_range(rng, self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy returned by [`any`].
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Fair-coin strategy for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::random_bool(rng, 0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Full-range strategy for integer types.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyInt<T>(::std::marker::PhantomData<T>);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;

                fn arbitrary() -> AnyInt<$t> {
                    AnyInt(::std::marker::PhantomData)
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The glue names (`prop::collection`, `Strategy`, config, macros) that
/// tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define deterministic random-input tests.
///
/// Supports the subset of proptest syntax used in this workspace: an
/// optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::new_rng(__path, __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= 4 * __config.cases,
                            "{}: too many prop_assume! rejections",
                            __path
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed at case {}: {}", __path, __case, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in 0.25f64..0.75, c in 1u64..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_sizes(
            exact in prop::collection::vec(any::<bool>(), 7),
            ranged in prop::collection::vec(0u32..10, 2..5)
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_applies(x in small_even(), pair in (0u8..4, 0u8..4)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            if x > 1000 { return Ok(()); }
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_rng_per_case() {
        let mut a = crate::test_runner::new_rng("path::t", 5);
        let mut b = crate::test_runner::new_rng("path::t", 5);
        assert_eq!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut b));
        let mut c = crate::test_runner::new_rng("path::t", 6);
        assert_ne!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut c));
    }
}
