//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! crate parses the derive input token stream by hand. Supported shapes —
//! which cover every derived type in the workspace — are:
//!
//! * named-field structs (with `#[serde(skip)]` / `#[serde(default)]`),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple, or struct variants.
//!
//! Generic types are rejected with a compile error rather than silently
//! miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (or tuple index), and serde flags.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// The shape of one enum variant's payload.
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed derive input.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Scan a `#[...]` attribute group for `serde(<flags>)` markers.
fn scan_attr(group: &proc_macro::Group, skip: &mut bool, default: &mut bool) {
    let mut tokens = group.stream().into_iter();
    let Some(TokenTree::Ident(head)) = tokens.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return;
    };
    for tok in args.stream() {
        if let TokenTree::Ident(flag) = tok {
            match flag.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => *skip = true,
                "default" => *default = true,
                _ => {}
            }
        }
    }
}

/// Parse the fields of a named-field struct body.
fn parse_named_fields(body: proc_macro::Group) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        let mut skip = false;
        let mut default = false;
        // Attributes (doc comments included).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        scan_attr(&g, &mut skip, &mut default);
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        // Field name.
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected ':' after field `{name}`")),
        }
        // Skip the type up to a top-level comma (tracking angle depth;
        // parens/brackets/braces arrive as single grouped tokens).
        let mut angle = 0i32;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Count the fields of a tuple-struct/tuple-variant parenthesized body.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    let mut arity = 0usize;
    let mut angle = 0i32;
    let mut saw_token = false;
    for tok in body.stream() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1;
    }
    arity
}

/// Parse the variants of an enum body.
fn parse_variants(body: proc_macro::Group) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // Attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    kind = VariantKind::Tuple(tuple_arity(g));
                    tokens.next();
                }
                Delimiter::Brace => {
                    kind = VariantKind::Struct(parse_named_fields(g.clone())?);
                    tokens.next();
                }
                _ => {}
            }
        }
        // Skip an optional discriminant and the trailing comma.
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Parse a derive input item (struct or enum definition).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
            }
            _ => break,
        }
    }
    // Visibility.
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored serde derive"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: tuple_arity(&g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Value::Map(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{0} => ::serde::Value::Str(\"{0}\".to_string())",
                        v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{0}(x0) => ::serde::Value::Map(vec![(\"{0}\".to_string(), \
                         ::serde::Serialize::to_value(x0))])",
                        v.name
                    ),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{0}({1}) => ::serde::Value::Map(vec![(\"{0}\".to_string(), \
                             ::serde::Value::Seq(vec![{2}]))])",
                            v.name,
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let vals: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{0} {{ {1} .. }} => ::serde::Value::Map(vec![\
                             (\"{0}\".to_string(), ::serde::Value::Map(vec![{2}]))])",
                            v.name,
                            binds.iter().map(|b| format!("{b}, ")).collect::<String>(),
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Generate the `name: <expr>` initializer that rebuilds one named field
/// from the map value bound to `v`, honoring `skip` / `default` flags.
fn named_field_init(f: &Field) -> String {
    if f.skip {
        format!("{}: ::core::default::Default::default()", f.name)
    } else if f.default {
        format!(
            "{0}: match v.get(\"{0}\") {{ \
             Some(x) => ::serde::Deserialize::from_value(x)?, \
             None => ::core::default::Default::default() }}",
            f.name
        )
    } else {
        format!(
            "{0}: ::serde::Deserialize::from_value(v.get(\"{0}\")\
             .ok_or_else(|| ::serde::Error::custom(\"missing field {0}\"))?)?",
            f.name
        )
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(named_field_init).collect();
            (name, format!("Ok({name} {{ {} }})", inits.join(", ")))
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "match v {{ ::serde::Value::Seq(items) => Ok({name}({})), \
                     _ => Err(::serde::Error::custom(\"expected sequence\")) }}",
                    gets.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_value(payload)?))",
                        v.name
                    )),
                    VariantKind::Tuple(k) => {
                        let gets: Vec<String> = (0..*k)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({i})\
                                     .ok_or_else(|| ::serde::Error::custom(\"variant tuple too \
                                     short\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{0}\" => match payload {{ ::serde::Value::Seq(items) => \
                             Ok({name}::{0}({1})), _ => Err(::serde::Error::custom(\"expected \
                             variant sequence\")) }}",
                            v.name,
                            gets.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields.iter().map(named_field_init).collect();
                        Some(format!(
                            "\"{0}\" => {{ let v = payload; Ok({name}::{0} {{ {1} }}) }}",
                            v.name,
                            inits.join(", ")
                        ))
                    }
                    VariantKind::Unit => None,
                })
                .collect();
            let body = format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{ {units}, _ => \
                 Err(::serde::Error::custom(\"unknown variant\")) }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{ {maps}, _ => \
                 Err(::serde::Error::custom(\"unknown variant\")) }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected enum value\"))\n\
                 }}",
                units = if unit_arms.is_empty() {
                    "_ if false => unreachable!()".to_string()
                } else {
                    unit_arms.join(", ")
                },
                maps = if map_arms.is_empty() {
                    "_ if false => unreachable!()".to_string()
                } else {
                    map_arms.join(", ")
                },
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
