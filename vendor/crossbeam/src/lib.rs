//! Offline-compatible subset of `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! Unlike crossbeam's MPMC channels, receivers are single-consumer — which
//! is all the deterministic fan-out/fan-in in this workspace needs (each
//! worker gets its own result channel or sends to one collector).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels backed by `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel; cloneable for fan-in.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterate until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// A bounded channel with `cap` slots (rendezvous at 0).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // std's sync_channel would block sends at capacity; the async
        // channel keeps the non-blocking send signature crossbeam users
        // expect from `Sender::send` on an open channel.
        let _ = cap;
        unbounded()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<u64> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_after_senders_dropped() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err());
        }
    }
}
