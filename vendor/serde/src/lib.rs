//! Offline-compatible subset of `serde`.
//!
//! The real serde's visitor-based data model exists to avoid intermediate
//! allocations; this vendored replacement trades that for simplicity and
//! serializes through an explicit [`Value`] tree (the miniserde approach).
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stub, which understands plain structs, tuple structs,
//! and enums with unit/tuple variants, plus the `#[serde(skip)]` and
//! `#[serde(default)]` field attributes used in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used only for negative values).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_u64() {
                    Some(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom("integer out of range")),
                    None => type_err("unsigned integer", v),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_i64() {
                    Some(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom("integer out of range")),
                    None => type_err("integer", v),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_f64() {
                    Some(f) => Ok(f as $t),
                    None => type_err("number", v),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // There is no input buffer to borrow from, so static-str fields
        // (tool catalog metadata) leak one small allocation per decode.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_err("string", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => type_err("fixed-length sequence", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?
                            )?,
                        )+))
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-5i64).to_value()), Ok(-5));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null),
            Ok(None::<u32>)
        );
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()), Ok(vec![1, 2]));
        assert_eq!(<[f64; 2]>::from_value(&[0.5f64, 1.5].to_value()), Ok([0.5, 1.5]));
        assert_eq!(
            <(u32, bool)>::from_value(&(7u32, true).to_value()),
            Ok((7, true))
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("k".into(), Value::UInt(1))]);
        assert_eq!(v.get("k"), Some(&Value::UInt(1)));
        assert_eq!(v.get("missing"), None);
    }
}
