//! Offline-compatible subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`StdRng`] (a deterministic xoshiro256++ generator seeded through
//! SplitMix64), the [`Rng`]/[`RngExt`]/[`SeedableRng`] traits with ranged
//! sampling over the integer and float primitives, and slice shuffling via
//! [`seq::SliceRandom`].
//!
//! Everything is fully deterministic given a seed; there is deliberately
//! no entropy source. The stream differs from upstream `rand`'s ChaCha12
//! `StdRng`, which only matters to tests that hard-code expectations about
//! a specific seed's output — repository tests assert seed-stability and
//! statistical behavior instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float primitives).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods split out of [`Rng`] by upstream `rand` 0.10; the
/// vendored subset keeps the trait (code bounds on `Rng + RngExt`) and
/// forwards everything to [`Rng`].
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64
    /// expansion, as recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;

    /// Derive a fresh generator from another generator's output.
    fn from_rng<R: RngCore + ?Sized>(source: &mut R) -> Self {
        Self::seed_from_u64(source.next_u64())
    }
}

/// Map a `u64` to a uniform `f64` in `[0, 1)` using the high 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that ranged sampling ([`Rng::random_range`]) can produce.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform sample from `[lo, hi)` — or `[lo, hi]` when `inclusive` —
    /// derived from one random word.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, word: u64) -> Self;
}

/// Ranges that can be sampled for output type `T`.
///
/// The impls are generic over `T` (like upstream rand's) so that a range
/// literal such as `0.7..1.3` pins the output type for inference.
pub trait SampleRange<T> {
    /// Draw one sample from `word`, a fresh uniform random word.
    fn sample_from(self, word: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from(self, word: u64) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_uniform(self.start, self.end, false, word)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, word: u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive range in random_range");
        T::sample_uniform(lo, hi, true, word)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, word: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (word as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, word: u64) -> Self {
                let v = lo + (unit_f64(word) as $t) * (hi - lo);
                // Floating rounding may land exactly on `hi`; pull a
                // half-open sample back inside.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast, passes BigCrush, and — unlike upstream's ChaCha12 —
/// trivially auditable offline. Seeded through SplitMix64 so that similar
/// `u64` seeds still yield decorrelated streams.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let g: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let n: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| rng.random_range(0.0..1.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn from_rng_derives_new_stream() {
        let mut base = StdRng::seed_from_u64(5);
        let mut derived = StdRng::from_rng(&mut base);
        assert_ne!(derived.next_u64(), base.next_u64());
    }
}
