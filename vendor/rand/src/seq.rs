//! Sequence-related random operations (`rand::seq`).

use crate::Rng;

/// In-place slice shuffling.
pub trait SliceRandom {
    /// Shuffle the slice with a Fisher–Yates pass.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Random element selection from slices.
pub trait IndexedRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }

    #[test]
    fn shuffle_of_len_one_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = vec![3];
        v.shuffle(&mut rng);
        assert_eq!(v, vec![3]);
    }
}
