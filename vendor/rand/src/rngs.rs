//! Named generator types (`rand::rngs`).

pub use crate::StdRng;

/// Alias of [`StdRng`]: in this vendored subset the "small" generator and
/// the standard one are the same xoshiro256++ core.
pub type SmallRng = StdRng;
