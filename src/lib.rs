//! # renren-sybils — umbrella crate
//!
//! Reproduction of *“Uncovering Social Network Sybils in the Wild”*
//! (Yang et al., IMC 2011). This crate re-exports the whole workspace so
//! examples and downstream users can depend on a single package:
//!
//! * [`graph`] — temporal social-graph substrate (`osn-graph`)
//! * [`sim`] — discrete-event Renren-like OSN simulator (`osn-sim`)
//! * [`features`] — behavioral feature extraction (`sybil-features`)
//! * [`detect`] — the paper's detectors: threshold, adaptive, SVM
//!   (`sybil-core`)
//! * [`serve`] — sharded streaming detection engine with epoch snapshots
//!   and deterministic merge (`sybil-serve`)
//! * [`defense`] — graph-based baselines: SybilGuard, SybilLimit,
//!   SybilInfer, SumUp (`sybil-defense`)
//! * [`stats`] — CDFs, histograms, ASCII plots, exports (`sybil-stats`)
//! * [`repro`] — the per-figure/table experiment harness (`sybil-repro`)
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index mapping every paper figure and table to a module and bench.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use osn_graph as graph;
pub use osn_sim as sim;
pub use sybil_core as detect;
pub use sybil_defense as defense;
pub use sybil_features as features;
pub use sybil_repro as repro;
pub use sybil_serve as serve;
pub use sybil_stats as stats;
