#!/usr/bin/env bash
# Repo verification: the tier-1 gate from ROADMAP.md plus a zero-warning
# clippy pass, the sybil-lint semantic audit (with its <5s runtime
# budget, --fix-allowlist byte-identity, and SARIF-catalog snapshot
# gates), the thread-count
# bit-identity smoke test (the sanitizer stand-in — see DESIGN.md), the
# parallel-substrate bench-regression guard, the serving-engine
# serve-vs-replay equivalence smoke, the metrics bit-identity guard
# (logical section of metrics.json across threads × shards), the
# observability overhead gate (<5% on the serving critical path), and
# the persistence gates (kill + warm-restart byte-identity drill,
# checkpoint overhead <5%, warm restart beating cold replay).
# Run from the workspace root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
root="$(pwd)"

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint: sybil-lint determinism & invariant audit (D + S series) =="
# Release binary (built by the tier-1 step) so the <5s budget measures
# the analysis — token rules, call-graph resolution, whole-workspace
# effect inference (S109–S112), and the loop-context cost analysis
# (S113–S117) — not rustc.
lint_bin="$root/target/release/sybil-lint"
python3 - "$lint_bin" <<'PY'
import subprocess, sys, time
t0 = time.monotonic()
rc = subprocess.call([sys.argv[1], "--workspace"])
dt = time.monotonic() - t0
print(f"lint budget: {dt:.2f}s (<5s required)")
sys.exit(rc if rc else (0 if dt < 5.0 else 1))
PY

echo "== lint: zero stale allowlist entries (--fix-allowlist is a no-op) =="
# Every lint.toml entry must match a live finding; a clean tree means
# --fix-allowlist rewrites the file byte-identically.
lint_orig="$(mktemp)"
cp lint.toml "$lint_orig"
"$lint_bin" --workspace --fix-allowlist >/dev/null
if ! cmp -s lint.toml "$lint_orig"; then
    cp "$lint_orig" lint.toml
    rm -f "$lint_orig"
    echo "lint.toml has stale allowlist entries (--fix-allowlist changed it)"
    exit 1
fi
rm -f "$lint_orig"

echo "== lint: SARIF output validates against the committed catalog =="
# `--format sarif` must stay parseable SARIF 2.1.0 whose rule catalog
# (ids, summaries, --explain-sourced fullDescriptions, helpUris) is
# byte-stable; the findings themselves churn with line numbers, so the
# snapshot pins the catalog only. Regen:
#   sybil-lint --workspace --format sarif | python3 -c 'import json,sys; \
#     json.dump(json.load(sys.stdin)["runs"][0]["tool"]["driver"]["rules"], \
#     open("crates/sybil-lint/tests/fixtures/sarif_catalog.json","w"), indent=2)'
"$lint_bin" --workspace --format sarif > "$root/target/verify_ws.sarif"
python3 - "$root/target/verify_ws.sarif" \
    "$root/crates/sybil-lint/tests/fixtures/sarif_catalog.json" <<'PY'
import json, sys
sarif = json.load(open(sys.argv[1]))
assert sarif["version"] == "2.1.0", sarif["version"]
assert "sarif-2.1.0" in sarif["$schema"], sarif["$schema"]
run = sarif["runs"][0]
driver = run["tool"]["driver"]
assert driver["name"] == "sybil-lint", driver["name"]
rules = driver["rules"]
for r in rules:
    missing = [k for k in ("id", "shortDescription", "fullDescription", "helpUri") if k not in r]
    assert not missing, f"rule {r.get('id')} missing {missing}"
snapshot = json.load(open(sys.argv[2]))
if json.dumps(rules, sort_keys=True) != json.dumps(snapshot, sort_keys=True):
    print("SARIF rule catalog drifted from the committed snapshot "
          "(crates/sybil-lint/tests/fixtures/sarif_catalog.json); regen per "
          "the comment in verify.sh if the change is intentional")
    sys.exit(1)
n_sup = sum(1 for res in run.get("results", []) if res.get("suppressions"))
print(f"sarif smoke: {len(rules)} rules in catalog, "
      f"{len(run.get('results', []))} results ({n_sup} suppressed), catalog matches snapshot")
PY

echo "== sanitizer stand-in: RENREN_THREADS=1 vs 8 bit-identity =="
# Miri cannot execute the scoped-thread par:: layer, so race detection
# leans on end-to-end thread-count invariance instead.
cargo run -q --release -p sybil-bench --bin thread_identity

echo "== bench-regression guard: perf_snapshot =="
# Run in a temp dir so BENCH_parallel.json never dirties the checkout;
# re-check the acceptance floor from the JSON the bench emits.
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin perf_snapshot \
    --manifest-path "$root/Cargo.toml" >/dev/null)
python3 - "$bench_tmp/BENCH_parallel.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
cc = report["clustering_sweep"]["speedup_vs_serial"]
feat = report["feature_extraction"]["speedup_vs_serial"]
ok = report["bit_identical"] and cc >= 2.0 and feat >= 2.0
print(f"bench guard: clustering {cc:.2f}x, features {feat:.2f}x, "
      f"bit_identical={report['bit_identical']}")
sys.exit(0 if ok else 1)
PY

echo "== serving engine: serve-vs-replay equivalence at 1 and 8 shards =="
# The sharded engine must reproduce the sequential replay byte-for-byte
# regardless of shard count; `repro serve` embeds both byte-comparisons
# (static and adaptive) in its JSON, so assert them at two thread counts.
for threads in 1 8; do
    out_dir="$bench_tmp/serve_t$threads"
    RENREN_THREADS=$threads cargo run -q --release -p sybil-repro --bin repro -- \
        --scale tiny --out "$out_dir" serve >/dev/null
    python3 - "$out_dir/tiny-seed1/serve.json" "$threads" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
ok = r["matches_replay_static"] and r["matches_replay_adaptive"]
print(f"serve guard (RENREN_THREADS={sys.argv[2]}, shards={r['shards']}): "
      f"static≡replay={r['matches_replay_static']}, "
      f"adaptive≡replay={r['matches_replay_adaptive']}")
sys.exit(0 if ok else 1)
PY
done

echo "== observability: logical metrics bit-identity across threads × shards =="
# `repro --metrics` writes metrics.json; its `logical` section is the
# determinism contract — byte-identical across RENREN_THREADS and shard
# counts (`sharded` and `wall` sections are config- and time-dependent).
for threads in 1 8; do
    for shards in 1 8; do
        m_dir="$bench_tmp/metrics_t${threads}_s${shards}"
        RENREN_THREADS=$threads cargo run -q --release -p sybil-repro --bin repro -- \
            --scale tiny --out "$m_dir" --shards "$shards" --metrics "$m_dir" \
            serve >/dev/null
    done
done
python3 - "$bench_tmp" <<'PY'
import json, sys, os
base = sys.argv[1]
configs = [(t, s) for t in (1, 8) for s in (1, 8)]
logical = {}
for t, s in configs:
    path = os.path.join(base, f"metrics_t{t}_s{s}", "metrics.json")
    logical[(t, s)] = json.dumps(json.load(open(path))["logical"], sort_keys=True)
ref = logical[(1, 1)]
ok = all(v == ref for v in logical.values())
n = len(json.loads(ref))
print(f"metrics guard: {n} logical metrics, "
      f"identical across threads×shards {configs}: {ok}")
sys.exit(0 if ok else 1)
PY

echo "== scale: scale_sweep smoke (20k + 200k accounts) =="
# The CI-sized slice of the million-account sweep: serve must stay
# byte-identical to replay and inside the RSS budget at both smoke
# sizes. The full sweep's output is the committed BENCH_scale.json.
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin scale_sweep \
    --manifest-path "$root/Cargo.toml" -- --smoke >/dev/null)
python3 - "$bench_tmp/BENCH_scale.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
rows = r["rows"]
ok = r["bit_identical"] and all(row["under_budget"] for row in rows)
print(f"scale smoke: {len(rows)} rows, bit_identical={r['bit_identical']}, "
      f"under_budget={all(row['under_budget'] for row in rows)}")
sys.exit(0 if ok else 1)
PY

echo "== scale: committed BENCH_scale.json 5M-account floor =="
# Regression guard on the committed full-sweep record: the 5M row must
# exist, be bit-identical, stay under its RSS budget, and sustain the
# 10M event-scans/sec aggregate floor at 8 shards.
python3 - "$root/BENCH_scale.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
row = next((x for x in r["rows"] if x["accounts"] == 5_000_000), None)
if row is None:
    print("scale guard: committed BENCH_scale.json has no 5M-account row")
    sys.exit(1)
scan8 = row["scan_events_per_sec_8shards"]
ok = row["bit_identical"] and row["under_budget"] and scan8 >= 10_000_000
print(f"scale guard: 5M row scan8={scan8/1e6:.1f}M/s (>=10M required), "
      f"bit_identical={row['bit_identical']}, under_budget={row['under_budget']}")
sys.exit(0 if ok else 1)
PY

echo "== observability: instrumentation overhead gate =="
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin obs_overhead \
    --manifest-path "$root/Cargo.toml" >/dev/null)
python3 - "$bench_tmp/BENCH_obs.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
ok = r["report_identical"] and r["overhead_pct"] < 5.0
print(f"obs guard: overhead {r['overhead_pct']:.2f}% (<5% required), "
      f"report_identical={r['report_identical']}")
sys.exit(0 if ok else 1)
PY

echo "== chaos: fault-injection invariant proptests (release) =="
# The headline invariant — any fault schedule yields output
# byte-identical to the fault-free run OR a typed ChaosError, never
# silent divergence — plus the journal round-trip at 1/2/8 shards.
cargo test -q --release -p sybil-chaos --test chaos_props

echo "== chaos: crash-recovery smoke + journal overhead gate =="
# Seeded mid-stream shard crash must recover from the write-ahead
# journal byte-identical to the fault-free replay, and journaling every
# epoch must cost <5% of the fault-free critical path.
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin chaos_bench \
    --manifest-path "$root/Cargo.toml" >/dev/null)
python3 - "$bench_tmp/BENCH_chaos.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
ok = (r["report_identical"] and r["crash_recovered_identical"]
      and r["journal_overhead_pct"] < 5.0)
print(f"chaos guard: journal overhead {r['journal_overhead_pct']:.2f}% "
      f"(<5% required), journaled≡plain={r['report_identical']}, "
      f"crash@epoch{r['crash_epoch']}/shard{r['crash_shard']} replayed "
      f"{r['crash_epochs_replayed']} epochs, "
      f"recovered_identical={r['crash_recovered_identical']}")
sys.exit(0 if ok else 1)
PY

echo "== persistence: kill + warm-restart drill (repro restart) =="
# A seed-derived mid-stream kill must warm-restart from the snapshot
# store + journal tail to a report byte-identical to the uninterrupted
# run — the sybil-store proptest's invariant, on the real repro stream.
r_dir="$bench_tmp/restart_drill"
cargo run -q --release -p sybil-repro --bin repro -- \
    --scale tiny --out "$r_dir" --store "$r_dir/store" restart >/dev/null
python3 - "$r_dir/tiny-seed1/restart.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
ok = r["matches_oracle"] and r["resumed_from"] is not None and r["checkpoints"]
print(f"restart drill: killed at epoch {r['kill_epoch']}, resumed from "
      f"checkpoint {r['resumed_from']} (+{r['tail_replayed']} journal epochs), "
      f"report≡oracle={r['matches_oracle']}")
sys.exit(0 if ok else 1)
PY

echo "== persistence: checkpoint overhead + restart-latency gates =="
# Checkpoint writes (paired against a journal-only plane, so the delta
# is the snapshot cost alone) must stay under 5% of the fault-free
# critical path, persisted runs must report byte-identically to plain,
# and a near-end warm restart must beat the cold replay it replaces.
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin restart_bench \
    --manifest-path "$root/Cargo.toml" >/dev/null)
python3 - "$bench_tmp/BENCH_restart.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
ok = (r["report_identical"] and r["restart_identical"]
      and r["checkpoint_overhead_pct"] < 5.0
      and r["restart_to_first_verdict_ms"] < r["cold_replay_ms"])
print(f"restart guard: ckpt overhead {r['checkpoint_overhead_pct']:.2f}% "
      f"(<5% required), persisted≡plain={r['report_identical']}, "
      f"kill@epoch{r['kill_epoch']} resumed from {r['restart_resumed_from']} "
      f"(+{r['restart_tail_replayed']} epochs), restart "
      f"{r['restart_to_first_verdict_ms']:.0f}ms vs cold {r['cold_replay_ms']:.0f}ms, "
      f"restart_identical={r['restart_identical']}")
sys.exit(0 if ok else 1)
PY

echo "verify: OK"
