#!/usr/bin/env bash
# Repo verification: the tier-1 gate from ROADMAP.md plus a zero-warning
# clippy pass. Run from the workspace root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint: sybil-lint determinism & invariant audit =="
cargo run -q -p sybil-lint -- --workspace

echo "verify: OK"
