#!/usr/bin/env bash
# Repo verification: the tier-1 gate from ROADMAP.md plus a zero-warning
# clippy pass, the sybil-lint semantic audit, the thread-count
# bit-identity smoke test (the sanitizer stand-in — see DESIGN.md), and
# the parallel-substrate bench-regression guard.
# Run from the workspace root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
root="$(pwd)"

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint: sybil-lint determinism & invariant audit (D + S series) =="
cargo run -q -p sybil-lint -- --workspace

echo "== sanitizer stand-in: RENREN_THREADS=1 vs 8 bit-identity =="
# Miri cannot execute the scoped-thread par:: layer, so race detection
# leans on end-to-end thread-count invariance instead.
cargo run -q --release -p sybil-bench --bin thread_identity

echo "== bench-regression guard: perf_snapshot =="
# Run in a temp dir so BENCH_parallel.json never dirties the checkout;
# re-check the acceptance floor from the JSON the bench emits.
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
(cd "$bench_tmp" && cargo run -q --release -p sybil-bench --bin perf_snapshot \
    --manifest-path "$root/Cargo.toml" >/dev/null)
python3 - "$bench_tmp/BENCH_parallel.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
cc = report["clustering_sweep"]["speedup_vs_serial"]
feat = report["feature_extraction"]["speedup_vs_serial"]
ok = report["bit_identical"] and cc >= 2.0 and feat >= 2.0
print(f"bench guard: clustering {cc:.2f}x, features {feat:.2f}x, "
      f"bit_identical={report['bit_identical']}")
sys.exit(0 if ok else 1)
PY

echo "verify: OK"
