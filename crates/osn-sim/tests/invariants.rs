//! Simulation invariants that must hold for *any* configuration: the
//! request log, graph, and account table always tell one consistent story.

use osn_sim::{simulate, RequestOutcome, SimConfig};
use proptest::prelude::*;

/// A small randomized configuration space (kept tiny so each case runs in
/// milliseconds).
fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        0u64..1000,          // seed
        300u64..900,         // hours
        60usize..300,        // normals
        4usize..40,          // sybils
        0.2f64..0.7,         // arrival_frac
    )
        .prop_map(|(seed, hours, n_normal, n_sybil, arrival_frac)| {
            let mut cfg = SimConfig::tiny(seed);
            cfg.hours = hours;
            cfg.n_normal = n_normal;
            cfg.n_sybil = n_sybil;
            cfg.arrival_frac = arrival_frac;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn log_graph_accounts_consistent(cfg in arb_config()) {
        let end = osn_graph::Timestamp::from_hours(cfg.hours);
        let out = simulate(cfg);

        // 1. Log is in send order; nothing happens after the horizon.
        let mut prev = osn_graph::Timestamp::ZERO;
        for r in out.log.records() {
            prop_assert!(r.sent_at >= prev);
            prop_assert!(r.sent_at <= end);
            prev = r.sent_at;
            if let Some(d) = r.outcome.decided_at() {
                prop_assert!(d >= r.sent_at);
                prop_assert!(d <= end);
            }
            // Nobody sends before their account exists.
            prop_assert!(out.accounts[r.from.index()].created_at <= r.sent_at);
            // No self-requests.
            prop_assert!(r.from != r.to);
        }

        // 2. Edges <-> accepted requests, bijectively on unordered pairs.
        let mut accepted = std::collections::HashSet::new();
        for r in out.log.records() {
            if let RequestOutcome::Accepted(at) = r.outcome {
                accepted.insert((r.from.0.min(r.to.0), r.from.0.max(r.to.0)));
                prop_assert!(out.graph.has_edge(r.from, r.to));
                prop_assert!(at <= end);
            }
        }
        prop_assert_eq!(accepted.len(), out.graph.num_edges());

        // 3. No duplicate requests per unordered pair... except one crossing
        //    pair direction each; the engine enforces at most one record per
        //    ordered pair and at most one per unordered pair.
        let mut pairs = std::collections::HashSet::new();
        for r in out.log.records() {
            prop_assert!(
                pairs.insert((r.from.0.min(r.to.0), r.from.0.max(r.to.0))),
                "duplicate request between {:?} and {:?}", r.from, r.to
            );
        }

        // 4. Sybils never reject; only sybils are banned.
        for r in out.log.records() {
            if out.is_sybil(r.to) {
                prop_assert!(!matches!(r.outcome, RequestOutcome::Rejected(_)));
            }
        }
        for a in &out.accounts {
            if a.banned_at.is_some() {
                prop_assert!(a.is_sybil());
            }
        }

        // 5. Stats are self-consistent.
        let s = out.stats();
        prop_assert_eq!(s.requests, out.log.len());
        prop_assert_eq!(s.accepted, out.graph.num_edges());
        prop_assert_eq!(s.edges, s.sybil_edges + s.attack_edges + s.normal_edges);
        prop_assert!(s.sybil_requests <= s.requests);
    }

    #[test]
    fn adjacency_is_chronological(cfg in arb_config()) {
        let out = simulate(cfg);
        for n in out.graph.nodes() {
            for w in out.graph.neighbors(n).windows(2) {
                prop_assert!(w[0].time <= w[1].time);
            }
        }
    }

    /// Every event pulled with detail carries its record's endpoints, and
    /// the acceptance flag is false on sends and the record's outcome on
    /// decisions — for any configuration.
    #[test]
    fn pull_stream_details_match_records(cfg in arb_config()) {
        let out = simulate(cfg);
        let mut stream = osn_sim::PullStream::new(&out.log);
        let mut pulled = 0usize;
        while let Some((ev, d)) = stream.next_with_detail() {
            let i = match ev.kind {
                osn_sim::StreamEventKind::Sent(i)
                | osn_sim::StreamEventKind::Decided(i) => i as usize,
            };
            let r = &out.log.records()[i];
            prop_assert_eq!(d.from, r.from.0);
            prop_assert_eq!(d.to, r.to.0);
            match ev.kind {
                osn_sim::StreamEventKind::Sent(_) => prop_assert!(!d.accepted),
                osn_sim::StreamEventKind::Decided(_) => {
                    prop_assert_eq!(d.accepted, r.outcome.is_accepted())
                }
            }
            pulled += 1;
        }
        prop_assert_eq!(pulled, osn_sim::PullStream::new(&out.log).total_events());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CSV dataset export/import is lossless for everything the analyses
    /// read, for arbitrary configurations.
    #[test]
    fn dataset_roundtrip(cfg in arb_config()) {
        let out = simulate(cfg.clone());
        let dir = std::env::temp_dir().join(format!(
            "osn_sim_roundtrip_{}_{}",
            std::process::id(),
            cfg.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        osn_sim::io::export_dataset(&out, &dir).expect("export");
        let back = osn_sim::io::import_dataset(&dir, cfg).expect("import");
        prop_assert_eq!(back.accounts.len(), out.accounts.len());
        prop_assert_eq!(back.log.len(), out.log.len());
        prop_assert_eq!(back.graph.num_edges(), out.graph.num_edges());
        for (a, b) in out.log.records().iter().zip(back.log.records()) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in out.accounts.iter().zip(&back.accounts) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.banned_at, b.banned_at);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exporting the same simulation twice must produce byte-identical files:
/// the dataset emitters iterate in a total order (lint rule D001 guards
/// the code paths), so dataset bytes are a pure function of the config.
#[test]
fn dataset_export_is_byte_identical() {
    let out = simulate(SimConfig::tiny(42));
    let base = std::env::temp_dir().join(format!("osn_sim_det_{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    let _ = std::fs::remove_dir_all(&base);
    osn_sim::io::export_dataset(&out, &a).expect("export a");
    osn_sim::io::export_dataset(&out, &b).expect("export b");

    let mut names: Vec<String> = std::fs::read_dir(&a)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "export produced no files");
    for name in &names {
        let bytes_a = std::fs::read(a.join(name)).expect("read a");
        let bytes_b = std::fs::read(b.join(name)).expect("read b");
        assert_eq!(bytes_a, bytes_b, "{name} differs between identical exports");
    }
    let _ = std::fs::remove_dir_all(&base);
}
