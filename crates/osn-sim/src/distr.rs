//! Small sampling helpers (exponential, log-normal, geometric, beta).
//!
//! The workspace's sanctioned dependency set includes `rand` but not
//! `rand_distr`, so the handful of distributions the simulator needs are
//! implemented here with standard transforms and tested for their moments.

use rand::prelude::*;

/// Exponential with the given mean (`mean = 1/λ`). Returns 0 for mean ≤ 0.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal with parameters µ and σ of the underlying normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Geometric-like count with the given mean (number of successes before
/// failure with success probability `mean / (1 + mean)`; support {0, 1, …}).
pub fn geometric_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = mean / (1.0 + mean); // continue probability
    let mut k = 0usize;
    while rng.random_range(0.0..1.0) < p && k < 10_000 {
        k += 1;
    }
    k
}

/// Beta(α, β) via two Gamma draws (Marsaglia–Tsang for shape ≥ 1, boosted
/// for shape < 1).
pub fn beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, b: f64) -> f64 {
    let x = gamma(rng, alpha);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Gamma(shape, 1) via Marsaglia–Tsang.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of<F: FnMut(&mut StdRng) -> f64>(seed: u64, n: usize, mut f: F) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let m = mean_of(1, 50_000, |r| exponential(r, 24.0));
        assert!((m - 24.0).abs() < 0.6, "mean {m}");
        assert_eq!(exponential(&mut StdRng::seed_from_u64(0), 0.0), 0.0);
    }

    #[test]
    fn normal_moments() {
        let m = mean_of(2, 50_000, standard_normal);
        assert!(m.abs() < 0.03, "mean {m}");
        let var = mean_of(3, 50_000, |r| standard_normal(r).powi(2));
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        // Median of LogNormal(mu, sigma) is e^mu.
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<f64> = (0..20_001).map(|_| log_normal(&mut rng, 3.0, 0.7)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[10_000];
        assert!((median - 3.0f64.exp()).abs() < 1.5, "median {median}");
    }

    #[test]
    fn geometric_mean_and_support() {
        let m = mean_of(5, 50_000, |r| geometric_count(r, 1.6) as f64);
        assert!((m - 1.6).abs() < 0.1, "mean {m}");
        assert_eq!(geometric_count(&mut StdRng::seed_from_u64(0), 0.0), 0);
    }

    #[test]
    fn beta_mean_and_range() {
        let m = mean_of(6, 30_000, |r| beta(r, 4.0, 1.6));
        let expect = 4.0 / 5.6;
        assert!((m - expect).abs() < 0.02, "mean {m} vs {expect}");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = beta(&mut rng, 0.5, 0.5);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        for &shape in &[0.5, 1.0, 3.0, 9.0] {
            let m = mean_of(8, 40_000, |r| gamma(r, shape));
            assert!((m - shape).abs() < 0.12 * shape.max(1.0), "shape {shape} mean {m}");
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive() {
        let mut rng = StdRng::seed_from_u64(9);
        gamma(&mut rng, 0.0);
    }
}
