//! The append-only friend-request log and its per-account indices.

use crate::request::{RequestOutcome, RequestRecord};
use osn_graph::{NodeId, Timestamp};
use serde::{Deserialize, Serialize};

/// Append-only log of every friend request in a simulation, in send order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no requests were logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record, returning its index. Records must be appended in
    /// nondecreasing `sent_at` order (the discrete-event engine guarantees
    /// this); violations are caught in debug builds.
    pub fn push(&mut self, r: RequestRecord) -> usize {
        debug_assert!(
            self.records.last().is_none_or(|p| p.sent_at <= r.sent_at),
            "log must be appended in send order"
        );
        self.records.push(r);
        self.records.len() - 1
    }

    /// Record the outcome of request `idx`.
    pub fn resolve(&mut self, idx: usize, outcome: RequestOutcome) {
        debug_assert!(matches!(self.records[idx].outcome, RequestOutcome::Pending));
        self.records[idx].outcome = outcome;
    }

    /// All records, in send order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// One record.
    pub fn get(&self, idx: usize) -> &RequestRecord {
        &self.records[idx]
    }

    /// Per-account index of *sent* requests: `index.of(a)` lists record
    /// positions sent by account `a`, in time order. `n` is the number of
    /// accounts. Two flat arrays total, not one `Vec` per account.
    pub fn sender_index(&self, n: usize) -> LogIndex {
        LogIndex::build(n, self.records.iter().map(|r| r.from.index()))
    }

    /// Per-account index of *received* requests, in time order.
    pub fn receiver_index(&self, n: usize) -> LogIndex {
        LogIndex::build(n, self.records.iter().map(|r| r.to.index()))
    }

    /// Iterator over the timestamps of requests sent by `who` (requires the
    /// full scan; use [`Self::sender_index`] for bulk work).
    pub fn sent_times(&self, who: NodeId) -> impl Iterator<Item = Timestamp> + '_ {
        self.records
            .iter()
            .filter(move |r| r.from == who)
            .map(|r| r.sent_at)
    }
}

/// Flat CSR-style per-account index over log record positions: one
/// offsets array plus one ids array, replacing the seed's `Vec<Vec<u32>>`
/// (which cost ~2·V small allocations per build and scattered rows across
/// the heap). Built by counting sort, so per-account rows stay in record
/// (time) order.
#[derive(Clone, Debug)]
pub struct LogIndex {
    /// Row boundaries: account `a`'s records occupy
    /// `ids[offsets[a]..offsets[a + 1]]`. Length `n + 1`.
    offsets: Vec<u32>,
    /// Record positions, grouped by account.
    ids: Vec<u32>,
}

impl LogIndex {
    fn build(n: usize, keys: impl Iterator<Item = usize> + Clone) -> Self {
        let mut offsets = vec![0u32; n + 1];
        for k in keys.clone() {
            offsets[k + 1] += 1;
        }
        for a in 0..n {
            offsets[a + 1] += offsets[a];
        }
        let mut ids = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (i, k) in keys.enumerate() {
            ids[cursor[k] as usize] = i as u32;
            cursor[k] += 1;
        }
        LogIndex { offsets, ids }
    }

    /// Record positions attributed to account `a`, in time order.
    #[inline]
    pub fn of(&self, a: usize) -> &[u32] {
        &self.ids[self.offsets[a] as usize..self.offsets[a + 1] as usize]
    }

    /// Number of accounts indexed.
    pub fn num_accounts(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(from: u32, to: u32, h: u64) -> RequestRecord {
        RequestRecord {
            from: NodeId(from),
            to: NodeId(to),
            sent_at: Timestamp::from_hours(h),
            outcome: RequestOutcome::Pending,
        }
    }

    #[test]
    fn push_and_resolve() {
        let mut log = RequestLog::new();
        assert!(log.is_empty());
        let i = log.push(rec(0, 1, 1));
        let j = log.push(rec(1, 2, 2));
        assert_eq!(log.len(), 2);
        log.resolve(i, RequestOutcome::Accepted(Timestamp::from_hours(3)));
        log.resolve(j, RequestOutcome::Rejected(Timestamp::from_hours(4)));
        assert!(log.get(i).outcome.is_accepted());
        assert!(!log.get(j).outcome.is_accepted());
        assert!(log.get(j).outcome.is_resolved());
    }

    #[test]
    fn indices_group_by_account() {
        let mut log = RequestLog::new();
        log.push(rec(0, 1, 1));
        log.push(rec(0, 2, 2));
        log.push(rec(2, 0, 3));
        let send = log.sender_index(3);
        assert_eq!(send.num_accounts(), 3);
        assert_eq!(send.of(0), &[0, 1]);
        assert_eq!(send.of(1), &[] as &[u32]);
        assert_eq!(send.of(2), &[2]);
        let recv = log.receiver_index(3);
        assert_eq!(recv.of(0), &[2]);
        assert_eq!(recv.of(1), &[0]);
        assert_eq!(recv.of(2), &[1]);
    }

    #[test]
    fn sent_times_filters_sender() {
        let mut log = RequestLog::new();
        log.push(rec(0, 1, 1));
        log.push(rec(1, 0, 2));
        log.push(rec(0, 2, 5));
        let times: Vec<u64> = log.sent_times(NodeId(0)).map(|t| t.as_secs()).collect();
        assert_eq!(times, vec![3600, 18000]);
    }
}
