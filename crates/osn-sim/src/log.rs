//! The append-only friend-request log and its per-account indices.

use crate::request::{RequestOutcome, RequestRecord};
use osn_graph::{NodeId, Timestamp};
use serde::{Deserialize, Serialize};

/// Append-only log of every friend request in a simulation, in send order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no requests were logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record, returning its index. Records must be appended in
    /// nondecreasing `sent_at` order (the discrete-event engine guarantees
    /// this); violations are caught in debug builds.
    pub fn push(&mut self, r: RequestRecord) -> usize {
        debug_assert!(
            self.records.last().is_none_or(|p| p.sent_at <= r.sent_at),
            "log must be appended in send order"
        );
        self.records.push(r);
        self.records.len() - 1
    }

    /// Record the outcome of request `idx`.
    pub fn resolve(&mut self, idx: usize, outcome: RequestOutcome) {
        debug_assert!(matches!(self.records[idx].outcome, RequestOutcome::Pending));
        self.records[idx].outcome = outcome;
    }

    /// All records, in send order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// One record.
    pub fn get(&self, idx: usize) -> &RequestRecord {
        &self.records[idx]
    }

    /// Per-account index of *sent* requests: `index[a]` lists record
    /// positions sent by account `a`, in time order. `n` is the number of
    /// accounts.
    pub fn sender_index(&self, n: usize) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); n];
        for (i, r) in self.records.iter().enumerate() {
            idx[r.from.index()].push(i as u32);
        }
        idx
    }

    /// Per-account index of *received* requests, in time order.
    pub fn receiver_index(&self, n: usize) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); n];
        for (i, r) in self.records.iter().enumerate() {
            idx[r.to.index()].push(i as u32);
        }
        idx
    }

    /// Iterator over the timestamps of requests sent by `who` (requires the
    /// full scan; use [`Self::sender_index`] for bulk work).
    pub fn sent_times(&self, who: NodeId) -> impl Iterator<Item = Timestamp> + '_ {
        self.records
            .iter()
            .filter(move |r| r.from == who)
            .map(|r| r.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(from: u32, to: u32, h: u64) -> RequestRecord {
        RequestRecord {
            from: NodeId(from),
            to: NodeId(to),
            sent_at: Timestamp::from_hours(h),
            outcome: RequestOutcome::Pending,
        }
    }

    #[test]
    fn push_and_resolve() {
        let mut log = RequestLog::new();
        assert!(log.is_empty());
        let i = log.push(rec(0, 1, 1));
        let j = log.push(rec(1, 2, 2));
        assert_eq!(log.len(), 2);
        log.resolve(i, RequestOutcome::Accepted(Timestamp::from_hours(3)));
        log.resolve(j, RequestOutcome::Rejected(Timestamp::from_hours(4)));
        assert!(log.get(i).outcome.is_accepted());
        assert!(!log.get(j).outcome.is_accepted());
        assert!(log.get(j).outcome.is_resolved());
    }

    #[test]
    fn indices_group_by_account() {
        let mut log = RequestLog::new();
        log.push(rec(0, 1, 1));
        log.push(rec(0, 2, 2));
        log.push(rec(2, 0, 3));
        let send = log.sender_index(3);
        assert_eq!(send[0], vec![0, 1]);
        assert_eq!(send[1], Vec::<u32>::new());
        assert_eq!(send[2], vec![2]);
        let recv = log.receiver_index(3);
        assert_eq!(recv[0], vec![2]);
        assert_eq!(recv[1], vec![0]);
        assert_eq!(recv[2], vec![1]);
    }

    #[test]
    fn sent_times_filters_sender() {
        let mut log = RequestLog::new();
        log.push(rec(0, 1, 1));
        log.push(rec(1, 0, 2));
        log.push(rec(0, 2, 5));
        let times: Vec<u64> = log.sent_times(NodeId(0)).map(|t| t.as_secs()).collect();
        assert_eq!(times, vec![3600, 18000]);
    }
}
