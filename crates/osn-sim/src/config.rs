//! Simulation configuration: every behavioral constant in one place, with
//! presets at three scales.
//!
//! The default constants were calibrated so the emergent data matches the
//! paper's reported shapes (see `EXPERIMENTS.md`): normal outgoing-accept
//! ≈ 0.79, Sybil ≈ 0.26; normal first-50 clustering ≈ 0.04, Sybil ≈ 0.001;
//! ≤ ~30% of Sybils with any Sybil edge, one dominant loose component.

use serde::{Deserialize, Serialize};

/// Behavioral parameters of normal users.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NormalParams {
    /// Mean hours between activity sessions (exponential).
    pub activity_gap_mean_h: f64,
    /// Mean friend requests sent per activity session (geometric).
    pub reqs_per_activity_mean: f64,
    /// Probability a request targets a friend-of-friend (triadic closure).
    pub p_fof: f64,
    /// Probability a request targets a degree-weighted stranger
    /// (preferential attachment — produces the heavy-tailed degree
    /// distribution OSNs show).
    pub p_pref: f64,
    /// Probability an activity session also sends one request to an
    /// *attractive* stranger found via people-browsing (the channel through
    /// which Sybils receive requests from normal users).
    pub p_attractive_browse: f64,
    /// Acceptance probability when requester shares ≥ 1 mutual friend.
    pub accept_mutual: f64,
    /// Base stranger-acceptance probability.
    pub accept_stranger_base: f64,
    /// Stranger acceptance grows with the *recipient's* popularity
    /// ("popular users … more likely to be open or careless", §2.2):
    /// `p = base + coef * ln(1 + degree)`, capped below.
    pub accept_stranger_deg_coef: f64,
    /// Cap on stranger acceptance.
    pub accept_stranger_cap: f64,
    /// Multiplier applied when the requester presents as the opposite
    /// gender with an attractive profile (§2.2).
    pub opposite_gender_boost: f64,
    /// Mean hours before a recipient answers a request (exponential).
    pub response_delay_mean_h: f64,
    /// Probability a recipient simply never answers.
    pub p_ignore: f64,
    /// Beta-distribution shape parameters for each user's personal
    /// acceptance tendency (Fig. 3's spread). `tendency ~ Beta(a, b)`.
    pub tendency_alpha: f64,
    /// See [`Self::tendency_alpha`].
    pub tendency_beta: f64,
    /// Fraction of normal users that present as female (paper: 46.5%).
    pub female_frac: f64,
    /// σ of the per-user log-normal *sociability* multiplier on activity
    /// rate. A heavy tail here produces the celebrity degree tail that
    /// keeps genuinely-popular users far above Sybils in the "popular"
    /// pool tools crawl for.
    pub sociability_sigma: f64,
}

impl Default for NormalParams {
    fn default() -> Self {
        NormalParams {
            activity_gap_mean_h: 120.0,
            reqs_per_activity_mean: 1.3,
            p_fof: 0.68,
            p_pref: 0.14,
            p_attractive_browse: 0.02,
            accept_mutual: 0.96,
            accept_stranger_base: 0.36,
            accept_stranger_deg_coef: 0.035,
            accept_stranger_cap: 0.60,
            opposite_gender_boost: 1.25,
            response_delay_mean_h: 30.0,
            p_ignore: 0.06,
            tendency_alpha: 4.0,
            tendency_beta: 1.6,
            female_frac: 0.465,
            sociability_sigma: 1.0,
        }
    }
}

/// Behavioral parameters of Sybil accounts (beyond the per-tool specs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SybilParams {
    /// Log-normal µ of a Sybil's total request budget.
    pub budget_lognorm_mu: f64,
    /// Log-normal σ of a Sybil's total request budget.
    pub budget_lognorm_sigma: f64,
    /// Hard cap on an ordinary Sybil's request budget.
    pub budget_cap: u32,
    /// Fraction of Sybils that *evade* detection for much longer and run
    /// much larger budgets. These become the popular "hub" Sybils that
    /// absorb most accidental Sybil edges (the Fig. 9 degree tail).
    pub evader_frac: f64,
    /// Request-budget range of evader Sybils (uniform).
    pub evader_budget: (u32, u32),
    /// Multiplier on the ban delay for evaders.
    pub evader_ban_mult: f64,
    /// Rate multiplier for evaders: they run their tool in aggressive mode
    /// (shorter burst gaps, faster requests), reaching hub popularity
    /// quickly and then sitting in the "popular" pool for a long time.
    pub evader_rate_mult: f64,
    /// Mean hours before the tool confirms an incoming request (tools poll
    /// periodically; small but nonzero, which is what lets bans strand
    /// pending requests — Fig. 3).
    pub response_delay_mean_h: f64,
    /// Mean additional hours a Sybil survives after becoming active before
    /// Renren's prior techniques ban it (exponential).
    pub ban_delay_mean_h: f64,
    /// Minimum requests sent before the ban clock starts (fresh accounts
    /// haven't drawn attention yet).
    pub ban_min_requests: usize,
    /// Fraction of Sybils presenting as female (paper: 77.3%).
    pub female_frac: f64,
    /// Minimum attractiveness; Sybil attractiveness ~ U(min, 1.0).
    pub attract_min: f64,
    /// How strongly the *recipient's* popularity drives accepting a Sybil:
    /// `p = base + coef * ln(1 + deg)` before the attractiveness/gender
    /// factors; calibrated to the paper's 26% average.
    pub accept_base: f64,
    /// See [`Self::accept_base`].
    pub accept_deg_coef: f64,
    /// Cap on per-request Sybil acceptance probability.
    pub accept_cap: f64,
    /// Stealth multiplier on every tool's request rate and burst size
    /// (default 1.0). A defense-aware attacker sets this below 1 to duck
    /// under rate-based detection — the counter-adaptation the paper's
    /// conclusion anticipates. Used by the `stealth_attacker` example.
    pub stealth_rate_mult: f64,
}

impl Default for SybilParams {
    fn default() -> Self {
        SybilParams {
            budget_lognorm_mu: 4.9, // median ≈ 134 requests
            budget_lognorm_sigma: 0.6,
            budget_cap: 250,
            evader_frac: 0.015,
            evader_budget: (1200, 2200),
            evader_ban_mult: 2.5,
            evader_rate_mult: 1.0,
            response_delay_mean_h: 8.0,
            ban_delay_mean_h: 120.0,
            ban_min_requests: 30,
            female_frac: 0.773,
            attract_min: 0.6,
            accept_base: 0.16,
            accept_deg_coef: 0.02,
            accept_cap: 0.50,
            stealth_rate_mult: 1.0,
        }
    }
}

/// Attacker-level parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackerParams {
    /// Mean Sybils per attacker (geometric-ish; actual draw is
    /// `1 + LogNormal`-shaped, clipped to the remaining population).
    pub sybils_per_attacker_mean: f64,
    /// Mix of tools across attackers: (MarketingAssistant,
    /// SuperNodeCollector, AlmightyAssistant) weights, normalized at use.
    pub tool_mix: [f64; 3],
    /// Fraction of attackers that deliberately interlink their own Sybils
    /// before friending normal users (requires a tool with
    /// `supports_interlink`; the paper observes only "a handful" of such
    /// accounts in Fig. 8).
    pub intentional_frac: f64,
    /// Targets fetched per snowball refill of an attacker's shared queue.
    pub refill_targets: usize,
    /// Snowball fan-out per expanded node.
    pub snowball_fanout: usize,
    /// Random accounts sampled when estimating the current "popular"
    /// degree threshold at each refill.
    pub popularity_probe: usize,
    /// Minimum account age (hours) for bulk-mode friending. Tools skip
    /// fresh, empty-looking profiles, which is also why they essentially
    /// never bulk-friend other (young, short-lived) Sybils.
    pub min_target_age_h: f64,
    /// Ablation override for every tool's snowball popularity bias β
    /// (`None` = use each tool's own value). Setting 0.0 disables the
    /// popularity bias entirely — the knob behind the `ablation_snowball`
    /// bench.
    pub degree_bias_override: Option<f64>,
}

impl Default for AttackerParams {
    fn default() -> Self {
        AttackerParams {
            sybils_per_attacker_mean: 12.0,
            tool_mix: [0.45, 0.35, 0.20],
            intentional_frac: 0.012,
            refill_targets: 250,
            snowball_fanout: 15,
            popularity_probe: 400,
            min_target_age_h: 600.0,
            degree_bias_override: None,
        }
    }
}

/// Top-level simulation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal configs with equal seeds replay identically.
    pub seed: u64,
    /// Simulated duration in hours.
    pub hours: u64,
    /// Number of normal users.
    pub n_normal: usize,
    /// Number of Sybil accounts (across all attackers).
    pub n_sybil: usize,
    /// Normal users arrive uniformly over the first `arrival_frac` of the
    /// run (the network must exist before attackers crawl it).
    pub arrival_frac: f64,
    /// Attackers start after this fraction of the run.
    pub attacker_start_frac: f64,
    /// Attackers keep starting until this fraction of the run.
    pub attacker_end_frac: f64,
    /// Normal-user behavior.
    pub normal: NormalParams,
    /// Sybil behavior.
    pub sybil: SybilParams,
    /// Attacker behavior.
    pub attacker: AttackerParams,
}

impl SimConfig {
    /// Tiny scale for unit tests: seconds to run, shapes only roughly hold.
    pub fn tiny(seed: u64) -> Self {
        let mut cfg = SimConfig {
            seed,
            hours: 1200,
            n_normal: 900,
            n_sybil: 60,
            ..Self::paper(seed)
        };
        // Compressed timeline: "established account" means less wall-clock.
        cfg.attacker.min_target_age_h = 150.0;
        // Small scales keep the uncompensated evader parameters (pool
        // exhaustion does the concentrating there — see `paper()`).
        cfg.sybil = SybilParams::default();
        cfg
    }

    /// Small scale for integration tests and examples (~1–2 s release).
    pub fn small(seed: u64) -> Self {
        let mut cfg = SimConfig {
            seed,
            hours: 2500,
            n_normal: 8_000,
            n_sybil: 250,
            ..Self::paper(seed)
        };
        cfg.attacker.min_target_age_h = 400.0;
        cfg.sybil = SybilParams::default();
        cfg
    }

    /// The calibrated reproduction scale used by the `repro` harness
    /// (~100k accounts; a scaled-down Renren).
    ///
    /// The evader (hub-Sybil) parameters are scale-compensated upward: at
    /// small scales the popular pool is small enough that attackers
    /// exhaust it, which over-weights freshly-popular hub Sybils in crawl
    /// results; at 100k accounts that exhaustion vanishes, so the hub
    /// population itself must be larger/longer-lived to yield the paper's
    /// ≈20% Sybil-edge incidence (see EXPERIMENTS.md).
    pub fn paper(seed: u64) -> Self {
        let sybil = SybilParams {
            evader_frac: 0.05,
            evader_ban_mult: 4.0,
            ..SybilParams::default()
        };
        SimConfig {
            seed,
            hours: 4000,
            n_normal: 100_000,
            n_sybil: 3_000,
            arrival_frac: 0.6,
            attacker_start_frac: 0.25,
            attacker_end_frac: 0.9,
            normal: NormalParams::default(),
            sybil,
            attacker: AttackerParams::default(),
        }
    }

    /// Validate invariants; panics with a description on misuse.
    pub fn validate(&self) {
        assert!(self.hours > 0, "simulation must last at least an hour");
        assert!(self.n_normal >= 10, "need at least 10 normal users");
        assert!(
            (0.0..=1.0).contains(&self.arrival_frac)
                && (0.0..=1.0).contains(&self.attacker_start_frac)
                && (0.0..=1.0).contains(&self.attacker_end_frac),
            "fractions must lie in [0,1]"
        );
        assert!(
            self.attacker_start_frac <= self.attacker_end_frac,
            "attacker window is inverted"
        );
        let p = &self.normal;
        assert!(p.p_fof + p.p_pref <= 1.0, "target mix exceeds 1");
        assert!(self.attacker.tool_mix.iter().all(|&w| w >= 0.0));
        assert!(
            self.attacker.tool_mix.iter().sum::<f64>() > 0.0,
            "tool mix must have positive mass"
        );
    }

    /// Total accounts (normal + Sybil).
    pub fn total_accounts(&self) -> usize {
        self.n_normal + self.n_sybil
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::tiny(1).validate();
        SimConfig::small(1).validate();
        SimConfig::paper(1).validate();
    }

    #[test]
    fn scales_are_ordered() {
        let (t, s, p) = (SimConfig::tiny(0), SimConfig::small(0), SimConfig::paper(0));
        assert!(t.n_normal < s.n_normal && s.n_normal < p.n_normal);
        assert!(t.total_accounts() == t.n_normal + t.n_sybil);
    }

    #[test]
    #[should_panic(expected = "target mix exceeds 1")]
    fn bad_target_mix_panics() {
        let mut c = SimConfig::tiny(0);
        c.normal.p_fof = 0.8;
        c.normal.p_pref = 0.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "attacker window is inverted")]
    fn inverted_attacker_window_panics() {
        let mut c = SimConfig::tiny(0);
        c.attacker_start_frac = 0.9;
        c.attacker_end_frac = 0.2;
        c.validate();
    }

    #[test]
    fn paper_gender_mix_matches_paper() {
        let c = SimConfig::paper(0);
        assert!((c.normal.female_frac - 0.465).abs() < 1e-9);
        assert!((c.sybil.female_frac - 0.773).abs() < 1e-9);
    }
}
