//! The discrete-event simulation engine.
//!
//! One event loop drives four actor types — normal users, Sybils, their
//! attackers' tools, and Renren's ban process — over a shared
//! [`TemporalGraph`] and [`RequestLog`]. Events are processed in strict
//! time order (ties broken by scheduling order), so a run is a pure
//! function of its [`SimConfig`].
//!
//! The causal chain that produces the paper's topology findings:
//!
//! 1. tools snowball-crawl the live graph for *popular* targets
//!    (`Simulator::refill_attacker`);
//! 2. successful Sybils become popular, so crawls occasionally return other
//!    attackers' Sybils;
//! 3. Sybils auto-accept everything (`Simulator::handle_response`);
//! 4. ⇒ accidental Sybil edges, scattered uniformly over each Sybil's
//!    lifetime (Fig. 8), forming one loose giant component (Figs. 6, 9).

use crate::account::{Account, AccountKind};
use crate::config::SimConfig;
use crate::distr;
use crate::events::{Event, EventQueue};
use crate::log::RequestLog;
use crate::output::{EngineStats, SimOutput};
use crate::profile::{Gender, Profile};
use crate::request::{RequestOutcome, RequestRecord};
use crate::tools::ToolKind;
use osn_graph::sampling::{self, SnowballConfig};
use osn_graph::{NodeId, TemporalGraph, Timestamp};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{HashSet, VecDeque};
use sybil_obs::{CounterId, HistId, Registry, Snapshot};

/// Seconds per histogram bucket of `requests_by_week`.
const WEEK_SECS: u64 = 7 * 24 * 3600;

/// Handles into the engine's always-on metric registry. The counters are
/// *logical* quantities (what happened, not when in wall time), so their
/// snapshot is a pure function of the [`SimConfig`], like every other
/// simulator output.
struct SimMetrics {
    /// Friend requests issued (all actor types).
    requests_sent: CounterId,
    /// Requests resolved accepted (including crossed-request confirms).
    requests_accepted: CounterId,
    /// Requests resolved rejected.
    requests_rejected: CounterId,
    /// Sybil tool batch refills (one per burst-size draw).
    tool_batches: CounterId,
    /// Normal-user targets chosen through the friend-of-friend path.
    triadic_closures: CounterId,
    /// Histogram of request send times, one bucket per simulated week.
    requests_by_week: HistId,
}

impl SimMetrics {
    fn new(reg: &mut Registry, end: Timestamp) -> Self {
        let weeks = (end.as_secs() / WEEK_SECS + 1) as usize;
        SimMetrics {
            requests_sent: reg.counter("requests_sent"),
            requests_accepted: reg.counter("requests_accepted"),
            requests_rejected: reg.counter("requests_rejected"),
            tool_batches: reg.counter("tool_batches"),
            triadic_closures: reg.counter("triadic_closures"),
            requests_by_week: reg.histogram("requests_by_week", WEEK_SECS, weeks),
        }
    }
}

/// Per-attacker runtime state.
#[derive(Debug)]
struct AttackerState {
    tool: ToolKind,
    sybils: Vec<u32>,
    targets: VecDeque<NodeId>,
    intentional: bool,
    start: Timestamp,
    interlinked: bool,
}

/// Per-Sybil runtime state (indexed by `account_id - n_normal`).
#[derive(Debug, Clone, Copy)]
struct SybilState {
    budget_left: u32,
    burst_left: u32,
    sent: u32,
    ban_scheduled: bool,
    evader: bool,
}

/// The discrete-event simulator. Construct with [`Simulator::new`], run to
/// completion with [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    rng: StdRng,
    graph: TemporalGraph,
    accounts: Vec<Account>,
    log: RequestLog,
    queue: EventQueue,
    /// Unordered account pairs that have ever exchanged a request; prevents
    /// duplicate invitations (Renren disallows re-inviting).
    requested: HashSet<u64>,
    /// Account ids sorted by creation time; the prefix `..active_len` is
    /// the currently-registered population.
    arrival_order: Vec<u32>,
    active_len: usize,
    attackers: Vec<AttackerState>,
    sybils: Vec<SybilState>,
    end: Timestamp,
    estats: EngineStats,
    obs: Registry,
    metrics: SimMetrics,
}

#[inline]
fn pack(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

impl Simulator {
    /// Build a simulator: creates all accounts and attackers and schedules
    /// the initial events. Panics if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let end = Timestamp::from_hours(cfg.hours);
        let total = cfg.total_accounts();
        let mut accounts: Vec<Account> = Vec::with_capacity(total);

        // --- Normal users -------------------------------------------------
        let arrival_span = cfg.arrival_frac * cfg.hours as f64;
        for _ in 0..cfg.n_normal {
            let created = Timestamp::from_hours_f64(rng.random_range(0.0..arrival_span.max(1e-9)));
            let gender = if rng.random_bool(cfg.normal.female_frac) {
                Gender::Female
            } else {
                Gender::Male
            };
            accounts.push(Account {
                kind: AccountKind::Normal,
                profile: Profile::new(gender, distr::beta(&mut rng, 2.0, 3.5)),
                created_at: created,
                banned_at: None,
                accept_tendency: distr::beta(
                    &mut rng,
                    cfg.normal.tendency_alpha,
                    cfg.normal.tendency_beta,
                ),
                sociability: distr::log_normal(&mut rng, 0.0, cfg.normal.sociability_sigma)
                    .clamp(0.1, 10.0),
            });
        }

        // --- Attackers and their Sybils -----------------------------------
        let mut attackers: Vec<AttackerState> = Vec::new();
        let mut sybil_states: Vec<SybilState> = Vec::with_capacity(cfg.n_sybil);
        let mut remaining = cfg.n_sybil;
        let win_lo = cfg.attacker_start_frac * cfg.hours as f64;
        let win_hi = (cfg.attacker_end_frac * cfg.hours as f64).max(win_lo + 1e-9);
        while remaining > 0 {
            let size = (1 + distr::geometric_count(
                &mut rng,
                (cfg.attacker.sybils_per_attacker_mean - 1.0).max(0.0),
            ))
            .min(remaining);
            // Deterministic share: attacker i is an intentional interlinker
            // when the cumulative count ⌊(i+1)·frac⌋ advances. This keeps
            // the configured share exact even for small attacker counts
            // (a Bernoulli draw frequently yields zero interlinkers, which
            // erases Fig. 8's "handful" of circled accounts).
            let idx = attackers.len() as f64;
            let frac = cfg.attacker.intentional_frac;
            let intentional = ((idx + 1.0) * frac).floor() > (idx * frac).floor();
            let tool = if intentional {
                ToolKind::AlmightyAssistant
            } else {
                weighted_tool(&mut rng, &cfg.attacker.tool_mix)
            };
            let start = Timestamp::from_hours_f64(rng.random_range(win_lo..win_hi));
            let attacker_idx = attackers.len() as u32;
            let mut ids = Vec::with_capacity(size);
            for _ in 0..size {
                let id = accounts.len() as u32;
                ids.push(id);
                let gender = if rng.random_bool(cfg.sybil.female_frac) {
                    Gender::Female
                } else {
                    Gender::Male
                };
                accounts.push(Account {
                    kind: AccountKind::Sybil {
                        attacker: attacker_idx,
                        tool,
                    },
                    profile: Profile::new(
                        gender,
                        rng.random_range(cfg.sybil.attract_min..=1.0),
                    ),
                    created_at: start,
                    banned_at: None,
                    accept_tendency: 1.0,
                    sociability: 1.0,
                });
                // A small fraction of Sybils evade detection far longer and
                // run far larger budgets; they become the hub Sybils that
                // absorb most accidental Sybil edges (Fig. 9's tail).
                let evader = rng.random_range(0.0..1.0) < cfg.sybil.evader_frac;
                let budget = if evader {
                    rng.random_range(cfg.sybil.evader_budget.0..=cfg.sybil.evader_budget.1)
                } else {
                    distr::log_normal(
                        &mut rng,
                        cfg.sybil.budget_lognorm_mu,
                        cfg.sybil.budget_lognorm_sigma,
                    )
                    .round()
                    .clamp(20.0, cfg.sybil.budget_cap as f64) as u32
                };
                sybil_states.push(SybilState {
                    budget_left: budget,
                    burst_left: 0,
                    sent: 0,
                    ban_scheduled: false,
                    evader,
                });
            }
            attackers.push(AttackerState {
                tool,
                sybils: ids,
                targets: VecDeque::new(),
                intentional,
                start,
                interlinked: false,
            });
            remaining -= size;
        }

        // --- Arrival order and graph nodes --------------------------------
        let mut arrival_order: Vec<u32> = (0..total as u32).collect();
        arrival_order.sort_by_key(|&i| (accounts[i as usize].created_at, i));
        let graph = TemporalGraph::with_nodes(total);

        // --- Initial events ------------------------------------------------
        let mut queue = EventQueue::new();
        for i in 0..cfg.n_normal as u32 {
            queue.schedule(accounts[i as usize].created_at, Event::NormalActivity { user: i });
        }
        for (a, st) in attackers.iter().enumerate() {
            queue.schedule(st.start, Event::AttackerRefill { attacker: a as u32 });
            for &s in &st.sybils {
                let jitter = rng.random_range(600..7200); // 10 min – 2 h
                queue.schedule(st.start.plus_secs(jitter), Event::SybilBurst { sybil: s });
            }
        }

        let mut obs = Registry::new();
        let metrics = SimMetrics::new(&mut obs, end);
        Simulator {
            cfg,
            rng,
            graph,
            accounts,
            log: RequestLog::new(),
            queue,
            requested: HashSet::new(),
            arrival_order,
            active_len: 0,
            attackers,
            sybils: sybil_states,
            end,
            estats: EngineStats::default(),
            obs,
            metrics,
        }
    }

    /// Run the event loop to completion and return the collected output.
    pub fn run(self) -> SimOutput {
        self.run_observed().0
    }

    /// Run to completion and also return the engine's metric snapshot
    /// (requests sent/accepted/rejected, tool batches, triadic closures,
    /// per-week request histogram). All metrics are logical, so the
    /// snapshot is as deterministic as the output itself.
    pub fn run_observed(mut self) -> (SimOutput, Snapshot) {
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.end {
                break; // events pop in time order; the rest are later still
            }
            self.advance_active(t);
            match ev {
                Event::NormalActivity { user } => self.handle_normal_activity(user, t),
                Event::SybilBurst { sybil } => self.handle_sybil_burst(sybil, t),
                Event::Response { request } => self.handle_response(request as usize, t),
                Event::AttackerRefill { attacker } => self.handle_refill(attacker as usize, t),
                Event::Ban { sybil } => self.handle_ban(sybil, t),
            }
        }
        let snapshot = self.obs.snapshot();
        (
            SimOutput {
                config: self.cfg,
                graph: self.graph,
                accounts: self.accounts,
                log: self.log,
                engine_stats: self.estats,
            },
            snapshot,
        )
    }

    // ---------------------------------------------------------------------
    // population bookkeeping

    fn advance_active(&mut self, now: Timestamp) {
        while self.active_len < self.arrival_order.len() {
            let id = self.arrival_order[self.active_len] as usize;
            if self.accounts[id].created_at <= now {
                self.active_len += 1;
            } else {
                break;
            }
        }
    }

    fn random_active(&mut self) -> Option<NodeId> {
        if self.active_len == 0 {
            return None;
        }
        let i = self.rng.random_range(0..self.active_len);
        Some(NodeId(self.arrival_order[i]))
    }

    fn acct(&self, n: NodeId) -> &Account {
        &self.accounts[n.index()]
    }

    fn valid_target(&self, from: NodeId, to: NodeId, now: Timestamp) -> bool {
        from != to
            && !self.acct(to).banned_by(now)
            && !self.graph.has_edge(from, to)
            && !self.requested.contains(&pack(from, to))
    }

    // ---------------------------------------------------------------------
    // normal users

    fn handle_normal_activity(&mut self, user: u32, now: Timestamp) {
        let u = NodeId(user);
        if self.acct(u).banned_by(now) {
            return;
        }
        let k = distr::geometric_count(&mut self.rng, self.cfg.normal.reqs_per_activity_mean);
        for _ in 0..k {
            if let Some(v) = self.pick_normal_target(u, now) {
                self.send_request(u, v, now);
            }
        }
        if self.rng.random_range(0.0..1.0) < self.cfg.normal.p_attractive_browse {
            if let Some(v) = self.pick_attractive_target(u, now) {
                self.send_request(u, v, now);
            }
        }
        let gap_h = self.cfg.normal.activity_gap_mean_h / self.acct(u).sociability;
        let next = now.plus_secs((distr::exponential(&mut self.rng, gap_h) * 3600.0) as u64);
        if next <= self.end {
            self.queue.schedule(next, Event::NormalActivity { user });
        }
    }

    /// Target selection mix: friend-of-friend (triadic closure), degree-
    /// weighted stranger (preferential attachment), uniform stranger.
    fn pick_normal_target(&mut self, u: NodeId, now: Timestamp) -> Option<NodeId> {
        let roll: f64 = self.rng.random_range(0.0..1.0);
        let p = &self.cfg.normal;
        if roll < p.p_fof && self.graph.degree(u) > 0 {
            for _ in 0..4 {
                let nb = self.graph.neighbors(u);
                let f = nb[self.rng.random_range(0..nb.len())].node;
                let fnb = self.graph.neighbors(f);
                if fnb.is_empty() {
                    continue;
                }
                let v = fnb[self.rng.random_range(0..fnb.len())].node;
                if self.valid_target(u, v, now) {
                    self.obs.incr(self.metrics.triadic_closures);
                    return Some(v);
                }
            }
            return None;
        }
        if roll < p.p_fof + p.p_pref && self.graph.num_edges() > 0 {
            for _ in 0..4 {
                if let Some(v) = sampling::degree_weighted_sample(&self.graph, &mut self.rng) {
                    if self.valid_target(u, v, now) {
                        return Some(v);
                    }
                }
            }
            return None;
        }
        for _ in 0..4 {
            if let Some(v) = self.random_active() {
                if self.valid_target(u, v, now) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// People-browsing: sample a handful of profiles, approach the most
    /// attractive stranger. This is how Sybils *receive* requests.
    fn pick_attractive_target(&mut self, u: NodeId, now: Timestamp) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for _ in 0..8 {
            if let Some(v) = self.random_active() {
                if self.valid_target(u, v, now) {
                    let a = self.acct(v).profile.attractiveness;
                    if best.is_none_or(|(ba, _)| a > ba) {
                        best = Some((a, v));
                    }
                }
            }
        }
        best.map(|(_, v)| v)
    }

    // ---------------------------------------------------------------------
    // request lifecycle

    fn send_request(&mut self, from: NodeId, to: NodeId, now: Timestamp) {
        debug_assert!(self.valid_target(from, to, now));
        self.requested.insert(pack(from, to));
        self.obs.incr(self.metrics.requests_sent);
        self.obs
            .observe(self.metrics.requests_by_week, now.as_secs());
        let idx = self.log.push(RequestRecord {
            from,
            to,
            sent_at: now,
            outcome: RequestOutcome::Pending,
        });
        let delay_h = if self.acct(to).is_sybil() {
            distr::exponential(&mut self.rng, self.cfg.sybil.response_delay_mean_h)
        } else {
            if self.rng.random_range(0.0..1.0) < self.cfg.normal.p_ignore {
                return; // recipient never answers
            }
            distr::exponential(&mut self.rng, self.cfg.normal.response_delay_mean_h)
        };
        let at = now.plus_secs((delay_h * 3600.0) as u64);
        if at <= self.end {
            self.queue
                .schedule(at, Event::Response { request: idx as u32 });
        }
    }

    fn handle_response(&mut self, idx: usize, now: Timestamp) {
        let r = *self.log.get(idx);
        // A banned endpoint can no longer act; the request stays pending —
        // this is the <100% incoming-accept tail of Fig. 3.
        if self.acct(r.from).banned_by(now) || self.acct(r.to).banned_by(now) {
            return;
        }
        if self.graph.has_edge(r.from, r.to) {
            // Already friends (reverse request crossed); treat as confirmed.
            self.log.resolve(idx, RequestOutcome::Accepted(now));
            self.obs.incr(self.metrics.requests_accepted);
            return;
        }
        let accept = if self.acct(r.to).is_sybil() {
            true // Sybils accept every incoming request (§2.2, Fig. 3)
        } else {
            let p = self.acceptance_probability(r.from, r.to);
            self.rng.random_range(0.0..1.0) < p
        };
        if accept {
            self.log.resolve(idx, RequestOutcome::Accepted(now));
            self.obs.incr(self.metrics.requests_accepted);
            self.graph
                .add_edge(r.from, r.to, now)
                .expect("has_edge checked above");
        } else {
            self.log.resolve(idx, RequestOutcome::Rejected(now));
            self.obs.incr(self.metrics.requests_rejected);
        }
    }

    /// Probability that normal user `to` confirms a request from `from`.
    fn acceptance_probability(&self, from: NodeId, to: NodeId) -> f64 {
        let p = &self.cfg.normal;
        let recv = self.acct(to);
        let send = self.acct(from);
        let tendency_factor = (0.35 + 0.9 * recv.accept_tendency).min(1.2);
        let gender_factor = if send.profile.gender != recv.profile.gender {
            p.opposite_gender_boost
        } else {
            1.0
        };
        let deg_recv = self.graph.degree(to) as f64;
        if send.is_sybil() {
            let sp = &self.cfg.sybil;
            let base = (sp.accept_base + sp.accept_deg_coef * (1.0 + deg_recv).ln())
                .min(sp.accept_cap);
            let attract = 0.45 + 0.7 * send.profile.attractiveness;
            (base * attract * gender_factor * tendency_factor).clamp(0.0, 0.95)
        } else if self.graph.mutual_friends(from, to) >= 1 {
            (p.accept_mutual * tendency_factor).clamp(0.0, 0.98)
        } else {
            let base = (p.accept_stranger_base + p.accept_stranger_deg_coef * (1.0 + deg_recv).ln())
                .min(p.accept_stranger_cap);
            let attract = 0.8 + 0.4 * send.profile.attractiveness;
            (base * attract * gender_factor * tendency_factor).clamp(0.0, 0.95)
        }
    }

    // ---------------------------------------------------------------------
    // Sybils and attackers

    fn handle_sybil_burst(&mut self, sybil: u32, now: Timestamp) {
        let s = NodeId(sybil);
        let si = sybil as usize - self.cfg.n_normal;
        if self.acct(s).banned_by(now) || self.sybils[si].budget_left == 0 {
            return;
        }
        let attacker = self.acct(s).attacker().expect("sybil has attacker") as usize;
        let spec = *self.attackers[attacker].tool.spec();
        if self.sybils[si].burst_left == 0 {
            // Tools send configured batch sizes with modest jitter (a
            // geometric draw would make most bursts tiny, diluting the
            // invitation-frequency signature of Fig. 1). Stealthy attackers
            // scale batches down along with the rate.
            let stealth = self.cfg.sybil.stealth_rate_mult.clamp(0.01, 10.0);
            self.sybils[si].burst_left = (spec.burst_size_mean * stealth
                * self.rng.random_range(0.7..1.3))
            .round()
            .max(1.0) as u32;
            self.obs.incr(self.metrics.tool_batches);
        }
        // Tools mix "super node" friending (crawled popular targets) with
        // bulk friending of ordinary browsed users. They never request the
        // attacker's own accounts — the tool manages that farm itself.
        let own = |eng: &Self, v: NodeId| {
            eng.accounts[v.index()].attacker() == Some(attacker as u32)
        };
        let want_popular = self.rng.random_range(0.0..1.0) < spec.popular_mix;
        let mut target: Option<NodeId> = None;
        let mut target_popular = false;
        // Try the chosen mode first, then the other; a tool only stalls
        // when neither the crawl queue nor browsing yields a target.
        for mode_popular in [want_popular, !want_popular] {
            if target.is_some() {
                break;
            }
            if mode_popular {
                // Pop crawled targets until one is still valid, refilling
                // the shared queue as needed.
                let mut refilled = false;
                loop {
                    match self.attackers[attacker].targets.pop_front() {
                        Some(v) if self.valid_target(s, v, now) && !own(self, v) => {
                            target = Some(v);
                            target_popular = true;
                            break;
                        }
                        Some(_) => continue, // stale (banned/duplicate/own)
                        None if !refilled => {
                            self.refill_attacker(attacker, now);
                            refilled = true;
                        }
                        None => break,
                    }
                }
            } else {
                // Bulk mode: browse *established* ordinary users (tools
                // skip fresh, empty-looking profiles).
                let min_age = (self.cfg.attacker.min_target_age_h * 3600.0) as u64;
                for _ in 0..8 {
                    if let Some(v) = self.random_active() {
                        let old_enough = self.acct(v).created_at.plus_secs(min_age) <= now;
                        if old_enough && self.valid_target(s, v, now) && !own(self, v) {
                            target = Some(v);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(v) = target {
            let target_is_sybil = self.acct(v).is_sybil();
            if target_popular {
                self.estats.popular_requests += 1;
                self.estats.popular_sybil_targets += target_is_sybil as usize;
            } else {
                self.estats.bulk_requests += 1;
                self.estats.bulk_sybil_targets += target_is_sybil as usize;
            }
            self.send_request(s, v, now);
            let st = &mut self.sybils[si];
            st.sent += 1;
            st.budget_left -= 1;
            st.burst_left -= 1;
            if !st.ban_scheduled && st.sent as usize >= self.cfg.sybil.ban_min_requests {
                st.ban_scheduled = true;
                let mean = self.cfg.sybil.ban_delay_mean_h
                    * if st.evader {
                        self.cfg.sybil.evader_ban_mult
                    } else {
                        1.0
                    };
                let ban_at =
                    now.plus_secs((distr::exponential(&mut self.rng, mean) * 3600.0) as u64);
                if ban_at <= self.end {
                    self.queue.schedule(ban_at, Event::Ban { sybil });
                }
            }
        }
        // Schedule the next request of this burst, or the next burst.
        let st = self.sybils[si];
        if st.budget_left == 0 {
            return;
        }
        let rate_mult = self.cfg.sybil.stealth_rate_mult.clamp(0.01, 10.0)
            * if st.evader {
                self.cfg.sybil.evader_rate_mult
            } else {
                1.0
            };
        let next = if st.burst_left > 0 && target.is_some() {
            now.plus_secs((3600.0 / (spec.requests_per_hour * rate_mult)).max(1.0) as u64)
        } else {
            now.plus_secs(
                (distr::exponential(&mut self.rng, spec.burst_gap_mean_h / rate_mult) * 3600.0)
                    as u64,
            )
        };
        if next <= self.end {
            self.queue.schedule(next, Event::SybilBurst { sybil });
        }
    }

    fn handle_refill(&mut self, attacker: usize, now: Timestamp) {
        if self.attackers[attacker].intentional && !self.attackers[attacker].interlinked {
            self.attackers[attacker].interlinked = true;
            self.interlink(attacker, now);
        }
        self.refill_attacker(attacker, now);
    }

    /// Deliberately link the attacker's own Sybils ("mutual promotion") —
    /// the rare intentional Sybil edges that show as vertical lines at the
    /// start of the Fig. 8 columns.
    fn interlink(&mut self, attacker: usize, now: Timestamp) {
        // Tools interlink a small promotion group, not the whole farm.
        let mut ids = self.attackers[attacker].sybils.clone();
        ids.truncate(8);
        let k = ids.len();
        if k < 2 {
            return;
        }
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        if k <= 6 {
            for i in 0..k {
                for j in (i + 1)..k {
                    pairs.push((ids[i], ids[j]));
                }
            }
        } else {
            // Ring plus chords: each Sybil links to the next 3 in the
            // promotion group, so deliberate interlinking is visible as a
            // solid prefix run in Fig. 8.
            for i in 0..k {
                for d in 1..=3 {
                    let j = (i + d) % k;
                    let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                    pairs.push((a, b));
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
        }
        let accept_at = now.plus_secs(60);
        for (a, b) in pairs {
            let (na, nb) = (NodeId(a), NodeId(b));
            if !self.valid_target(na, nb, now) {
                continue;
            }
            self.requested.insert(pack(na, nb));
            let idx = self.log.push(RequestRecord {
                from: na,
                to: nb,
                sent_at: now,
                outcome: RequestOutcome::Pending,
            });
            self.log.resolve(idx, RequestOutcome::Accepted(accept_at));
            self.graph
                .add_edge(na, nb, accept_at)
                .expect("valid_target checked");
        }
    }

    /// Snowball-crawl the live graph for popular targets and refill the
    /// attacker's shared queue (§3.4: tools are biased toward popular
    /// users, which is what makes them rediscover successful Sybils).
    fn refill_attacker(&mut self, attacker: usize, now: Timestamp) {
        self.estats.refills += 1;
        let spec = *self.attackers[attacker].tool.spec();
        // Estimate the current "popular" degree threshold by probing.
        let probes = self.cfg.attacker.popularity_probe;
        let mut degs: Vec<usize> = Vec::with_capacity(probes);
        for _ in 0..probes {
            if let Some(v) = self.random_active() {
                degs.push(self.graph.degree(v));
            }
        }
        degs.sort_unstable();
        let min_degree = if degs.is_empty() {
            1
        } else {
            let idx = ((degs.len() as f64 - 1.0) * spec.popular_percentile) as usize;
            degs[idx].max(1)
        };
        // Seeds: many scattered live profiles (tools seed crawls from
        // recently-active-user listings across the whole site). Scattered
        // seeds keep one refill from being a single tight neighborhood,
        // which would give Sybils' friend sets unrealistic mutual
        // connectivity.
        let mut seeds = Vec::with_capacity(24);
        for _ in 0..24 {
            if let Some(v) = self.random_active() {
                seeds.push(v);
            }
        }
        if seeds.is_empty() {
            return;
        }
        let bias = self
            .cfg
            .attacker
            .degree_bias_override
            .unwrap_or(spec.degree_bias);
        let cfg = SnowballConfig {
            targets: self.cfg.attacker.refill_targets,
            fanout: self.cfg.attacker.snowball_fanout,
            degree_bias: bias,
            min_degree: if self.cfg.attacker.degree_bias_override == Some(0.0) {
                // Unbiased ablation: no popularity floor either.
                1
            } else {
                min_degree
            },
            saturation_degree: Some(min_degree.saturating_mul(3)),
        };
        let mut found = sampling::snowball_sample(&self.graph, &seeds, &cfg, &mut self.rng);
        // Crawls on a young graph come back short; tools fall back to the
        // site's people-browser, approximated by degree-tournament picks.
        let floor = self.cfg.attacker.refill_targets / 4;
        let mut attempts = 0;
        while found.len() < floor && attempts < 60 {
            attempts += 1;
            let mut best: Option<(usize, NodeId)> = None;
            for _ in 0..8 {
                if let Some(v) = self.random_active() {
                    let d = self.graph.degree(v);
                    if best.is_none_or(|(bd, _)| d > bd) {
                        best = Some((d, v));
                    }
                }
            }
            // Tournament winners still have to look popular.
            if let Some((d, v)) = best {
                if d >= min_degree {
                    found.push(v);
                }
            }
        }
        // Drop already-banned targets eagerly; freshness re-checked at pop.
        let accounts = &self.accounts;
        found.retain(|v| !accounts[v.index()].banned_by(now));
        // Shuffle so consecutive requests do not walk one neighborhood.
        found.shuffle(&mut self.rng);
        self.attackers[attacker].targets.extend(found);
    }

    fn handle_ban(&mut self, sybil: u32, now: Timestamp) {
        let a = &mut self.accounts[sybil as usize];
        if a.banned_at.is_none() {
            a.banned_at = Some(now);
        }
    }
}

fn weighted_tool<R: Rng + ?Sized>(rng: &mut R, mix: &[f64; 3]) -> ToolKind {
    let total: f64 = mix.iter().sum();
    let mut roll = rng.random_range(0.0..total);
    for (i, &w) in mix.iter().enumerate() {
        if roll < w {
            return ToolKind::ALL[i];
        }
        roll -= w;
    }
    ToolKind::ALL[2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    fn tiny_run() -> SimOutput {
        simulate(SimConfig::tiny(42))
    }

    #[test]
    fn runs_to_completion_and_produces_data() {
        let out = tiny_run();
        assert_eq!(out.accounts.len(), out.config.total_accounts());
        assert!(out.graph.num_edges() > 500, "edges: {}", out.graph.num_edges());
        assert!(out.log.len() > 1000, "requests: {}", out.log.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(SimConfig::tiny(7));
        let b = simulate(SimConfig::tiny(7));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.graph.edges(), b.graph.edges());
        let c = simulate(SimConfig::tiny(8));
        assert_ne!(a.log.len(), c.log.len(), "different seeds should diverge");
    }

    #[test]
    fn edge_timestamps_are_nondecreasing_per_node() {
        let out = tiny_run();
        for n in out.graph.nodes() {
            let nb = out.graph.neighbors(n);
            for w in nb.windows(2) {
                assert!(w[0].time <= w[1].time, "adjacency must be chronological");
            }
        }
    }

    #[test]
    fn every_edge_has_an_accepted_request() {
        let out = tiny_run();
        let mut accepted: HashSet<u64> = HashSet::new();
        for r in out.log.records() {
            if r.outcome.is_accepted() {
                accepted.insert(pack(r.from, r.to));
            }
        }
        for e in out.graph.edges() {
            assert!(
                accepted.contains(&pack(e.a, e.b)),
                "edge {:?}-{:?} lacks a log record",
                e.a,
                e.b
            );
        }
    }

    #[test]
    fn sybils_accept_all_answered_incoming() {
        let out = tiny_run();
        for r in out.log.records() {
            if out.is_sybil(r.to) && r.outcome.is_resolved() {
                assert!(
                    r.outcome.is_accepted(),
                    "sybil rejected a request: {r:?}"
                );
            }
        }
    }

    #[test]
    fn acceptance_ratios_separate_populations() {
        let out = simulate(SimConfig {
            n_normal: 2000,
            n_sybil: 150,
            hours: 1500,
            ..SimConfig::tiny(11)
        });
        let stats = out.stats();
        let sybil_ratio = stats.sybil_accepted as f64 / stats.sybil_requests.max(1) as f64;
        let normal_req = stats.requests - stats.sybil_requests;
        let normal_acc = stats.accepted - stats.sybil_accepted;
        let normal_ratio = normal_acc as f64 / normal_req.max(1) as f64;
        assert!(
            sybil_ratio < 0.45,
            "sybil outgoing accept ratio too high: {sybil_ratio}"
        );
        assert!(
            normal_ratio > 0.55,
            "normal outgoing accept ratio too low: {normal_ratio}"
        );
        assert!(normal_ratio > sybil_ratio + 0.2);
    }

    #[test]
    fn bans_happen_and_stop_activity() {
        let out = tiny_run();
        let stats = out.stats();
        assert!(stats.banned > 0, "some sybils should get banned");
        // No request is *sent* by a banned account after its ban time.
        for r in out.log.records() {
            if let Some(b) = out.accounts[r.from.index()].banned_at {
                assert!(r.sent_at <= b, "banned account kept sending");
            }
        }
        // Only sybils are banned.
        for a in &out.accounts {
            if a.banned_at.is_some() {
                assert!(a.is_sybil());
            }
        }
    }

    #[test]
    fn sybil_edges_exist_but_most_sybils_are_isolated_from_sybils() {
        // The central §3.2 shape at test scale: well under half of Sybils
        // have any Sybil edge.
        let out = simulate(SimConfig::small(5));
        let frac = out.sybil_connectivity_fraction();
        assert!(frac < 0.6, "sybil connectivity too high: {frac}");
        let stats = out.stats();
        assert!(
            stats.attack_edges > stats.sybil_edges,
            "attack edges must dominate: {} vs {}",
            stats.attack_edges,
            stats.sybil_edges
        );
    }

    #[test]
    fn request_log_is_time_ordered() {
        let out = tiny_run();
        for w in out.log.records().windows(2) {
            assert!(w[0].sent_at <= w[1].sent_at);
        }
    }

    #[test]
    fn gender_mix_matches_config() {
        let out = tiny_run();
        let frac = |ids: &[NodeId]| {
            ids.iter()
                .filter(|&&n| out.accounts[n.index()].profile.gender == Gender::Female)
                .count() as f64
                / ids.len().max(1) as f64
        };
        let fs = frac(&out.sybil_ids());
        let fn_ = frac(&out.normal_ids());
        assert!((fs - 0.773).abs() < 0.12, "sybil female fraction {fs}");
        assert!((fn_ - 0.465).abs() < 0.08, "normal female fraction {fn_}");
    }
}

#[cfg(test)]
mod mechanism_tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn acceptance_probabilities_are_valid() {
        // Probe the (private) acceptance model across many account pairs
        // before any events run.
        let sim = Simulator::new(SimConfig::tiny(3));
        let n = sim.accounts.len();
        let mut checked = 0;
        for i in (0..n).step_by(7) {
            for j in (1..n).step_by(13) {
                if i == j || sim.accounts[j].is_sybil() {
                    continue;
                }
                let p = sim.acceptance_probability(NodeId(i as u32), NodeId(j as u32));
                assert!((0.0..=1.0).contains(&p), "p = {p} for ({i},{j})");
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn stealth_throttling_reduces_burst_rates() {
        let fast = simulate(SimConfig::tiny(9));
        let mut cfg = SimConfig::tiny(9);
        cfg.sybil.stealth_rate_mult = 0.2;
        let slow = simulate(cfg);
        // Mean 1h invitation count of sybils must drop substantially.
        let peak_rate = |out: &SimOutput| {
            let idx = out.log.sender_index(out.accounts.len());
            let mut sum = 0.0;
            let mut n = 0;
            for s in out.sybil_ids() {
                let times: Vec<Timestamp> = idx
                    .of(s.index())
                    .iter()
                    .map(|&i| out.log.get(i as usize).sent_at)
                    .collect();
                if times.is_empty() {
                    continue;
                }
                sum += sybil_features_shim::mean_per_active_window(&times, 1);
                n += 1;
            }
            sum / n.max(1) as f64
        };
        let (f, sl) = (peak_rate(&fast), peak_rate(&slow));
        assert!(
            sl < f * 0.5,
            "stealth must at least halve the hourly rate: {f} -> {sl}"
        );
        // And the attacker pays in total throughput.
        assert!(slow.stats().sybil_requests < fast.stats().sybil_requests);
    }

    // A minimal copy of the windowed-rate feature to avoid a dev-dependency
    // cycle on sybil-features.
    mod sybil_features_shim {
        use osn_graph::Timestamp;
        use std::collections::HashMap;

        pub fn mean_per_active_window(sent: &[Timestamp], window_h: u64) -> f64 {
            if sent.is_empty() {
                return 0.0;
            }
            let w = window_h * 3600;
            let t0 = sent.iter().min().unwrap().as_secs();
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for t in sent {
                *counts.entry((t.as_secs() - t0) / w).or_insert(0) += 1;
            }
            let total: u64 = counts.values().map(|&c| c as u64).sum();
            total as f64 / counts.len() as f64
        }
    }

    #[test]
    fn interlink_groups_are_small_and_deliberate() {
        let mut cfg = SimConfig::tiny(4);
        cfg.attacker.intentional_frac = 1.0; // every attacker interlinks
        let out = simulate(cfg);
        let mut interlink_degree: std::collections::HashMap<NodeId, usize> = Default::default();
        for r in out.log.records() {
            if r.outcome.is_accepted()
                && out.is_sybil(r.from)
                && out.is_sybil(r.to)
                && out.accounts[r.from.index()].attacker()
                    == out.accounts[r.to.index()].attacker()
            {
                *interlink_degree.entry(r.from).or_default() += 1;
                *interlink_degree.entry(r.to).or_default() += 1;
            }
        }
        assert!(!interlink_degree.is_empty(), "interlinking must occur");
        for (&n, &d) in &interlink_degree {
            assert!(d <= 7, "sybil {n:?} has {d} interlink edges (group cap is 8)");
        }
    }

    #[test]
    fn unbiased_crawl_ablation_lowers_target_popularity() {
        let biased = simulate(SimConfig::tiny(12));
        let mut cfg = SimConfig::tiny(12);
        cfg.attacker.degree_bias_override = Some(0.0);
        let unbiased = simulate(cfg);
        let mean_target_degree = |out: &SimOutput| {
            let mut sum = 0usize;
            let mut n = 0usize;
            for r in out.log.records() {
                if out.is_sybil(r.from) {
                    sum += out.graph.degree(r.to);
                    n += 1;
                }
            }
            sum as f64 / n.max(1) as f64
        };
        assert!(
            mean_target_degree(&unbiased) < mean_target_degree(&biased),
            "bias off must lower target popularity: {} vs {}",
            mean_target_degree(&unbiased),
            mean_target_degree(&biased)
        );
    }

    #[test]
    fn evaders_outlive_and_outspend_ordinary_sybils() {
        // Evaders exist at the configured share and have the large budgets.
        let cfg = SimConfig::small(6);
        let sim = Simulator::new(cfg.clone());
        let evaders = sim.sybils.iter().filter(|s| s.evader).count();
        let expected = (cfg.n_sybil as f64 * cfg.sybil.evader_frac).ceil() as usize;
        // Bernoulli draw: allow generous binomial noise around np.
        assert!(
            evaders >= 1 && evaders <= 5 * expected,
            "evaders {evaders} vs expected ≈{expected}"
        );
        let max_ordinary = sim
            .sybils
            .iter()
            .filter(|s| !s.evader)
            .map(|s| s.budget_left)
            .max()
            .unwrap_or(0);
        let min_evader = sim
            .sybils
            .iter()
            .filter(|s| s.evader)
            .map(|s| s.budget_left)
            .min()
            .unwrap_or(u32::MAX);
        assert!(
            min_evader > max_ordinary,
            "evader budgets ({min_evader}) must exceed ordinary cap ({max_ordinary})"
        );
    }
}

#[cfg(test)]
mod calibration {
    //! Manual calibration probe: `cargo test -p osn-sim --release calibration -- --ignored --nocapture`
    use super::*;
    use crate::simulate;
    use osn_graph::components;

    #[test]
    #[ignore = "manual calibration probe; prints a summary"]
    fn print_small_scale_summary() {
        let seed: u64 = std::env::var("SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
        let out = simulate(SimConfig::small(seed));
        let stats = out.stats();
        println!("--- sim stats (small): {stats:?}");
        let sybils = out.sybil_ids();
        let normals = out.normal_ids();
        let mean_deg = |ids: &[NodeId]| {
            ids.iter().map(|&n| out.graph.degree(n)).sum::<usize>() as f64 / ids.len() as f64
        };
        let mut ndeg: Vec<usize> = normals.iter().map(|&n| out.graph.degree(n)).collect();
        ndeg.sort_unstable();
        println!(
            "normal deg: mean {:.1} p50 {} p90 {} p97 {} p99 {} max {}",
            mean_deg(&normals),
            ndeg[ndeg.len() / 2],
            ndeg[ndeg.len() * 90 / 100],
            ndeg[ndeg.len() * 97 / 100],
            ndeg[ndeg.len() * 99 / 100],
            ndeg[ndeg.len() - 1]
        );
        let mut sdeg: Vec<usize> = sybils.iter().map(|&n| out.graph.degree(n)).collect();
        sdeg.sort_unstable();
        println!(
            "sybil deg: mean {:.1} p50 {} p90 {} max {}",
            mean_deg(&sybils),
            sdeg[sdeg.len() / 2],
            sdeg[sdeg.len() * 90 / 100],
            sdeg[sdeg.len() - 1]
        );
        println!(
            "sybil connectivity fraction: {:.3}",
            out.sybil_connectivity_fraction()
        );
        let ratio = stats.sybil_accepted as f64 / stats.sybil_requests.max(1) as f64;
        let nreq = stats.requests - stats.sybil_requests;
        let nacc = stats.accepted - stats.sybil_accepted;
        println!(
            "outgoing accept: sybil {:.3} normal {:.3}",
            ratio,
            nacc as f64 / nreq.max(1) as f64
        );
        // Sybil components (among sybils with >= 1 sybil edge)
        let is_sybil = |n: NodeId| out.is_sybil(n);
        let comps = components::components_of_subset(&out.graph, is_sybil);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).filter(|&s| s > 1).collect();
        println!(
            "sybil components >1: count {} sizes(top10) {:?}",
            sizes.len(),
            &sizes[..sizes.len().min(10)]
        );
        let connected: usize = sizes.iter().sum();
        if let Some(&giant) = sizes.first() {
            println!(
                "giant holds {:.2} of connected sybils ({} of {})",
                giant as f64 / connected.max(1) as f64,
                giant,
                connected
            );
        }
        // sybil edge origins
        let mut same_attacker = 0usize;
        let mut to_evaderish = 0usize; // receiver with high final degree
        let mut total_se = 0usize;
        for r in out.log.records() {
            if r.outcome.is_accepted() && out.is_sybil(r.from) && out.is_sybil(r.to) {
                total_se += 1;
                if out.accounts[r.from.index()].attacker() == out.accounts[r.to.index()].attacker()
                {
                    same_attacker += 1;
                }
                if out.graph.degree(r.to) >= 120 {
                    to_evaderish += 1;
                }
            }
        }
        println!(
            "sybil edges: {total_se} (same-attacker {same_attacker}, to deg>=120 receiver {to_evaderish})"
        );
        println!("engine: {:?}", out.engine_stats);
        // clustering coefficients
        use osn_graph::clustering::first_k_clustering;
        let mean_cc = |ids: &[NodeId]| {
            ids.iter()
                .map(|&n| first_k_clustering(&out.graph, n, 50))
                .sum::<f64>()
                / ids.len() as f64
        };
        println!(
            "first-50 cc: normal {:.4} sybil {:.4}",
            mean_cc(&normals),
            mean_cc(&sybils)
        );
        // cc distribution for sybils + a dissection of the highest-cc sybil
        let mut ccs: Vec<(f64, NodeId)> = sybils
            .iter()
            .map(|&n| (first_k_clustering(&out.graph, n, 50), n))
            .collect();
        ccs.sort_by(|a, b| a.0.total_cmp(&b.0));
        println!(
            "sybil cc quantiles: p10 {:.4} p50 {:.4} p90 {:.4} max {:.4}",
            ccs[ccs.len() / 10].0,
            ccs[ccs.len() / 2].0,
            ccs[ccs.len() * 9 / 10].0,
            ccs[ccs.len() - 1].0
        );
        let (_, worst) = ccs[ccs.len() - 1];
        let friends: Vec<NodeId> = out
            .graph
            .first_k_friends(worst, 50)
            .iter()
            .map(|nb| nb.node)
            .collect();
        let fdegs: Vec<usize> = friends.iter().map(|&f| out.graph.degree(f)).collect();
        let n_sybil_friends = friends.iter().filter(|&&f| out.is_sybil(f)).count();
        println!(
            "worst sybil: deg {} friends(50) sybil-friends {} friend-degrees p50 {} max {}",
            out.graph.degree(worst),
            n_sybil_friends,
            {
                let mut d = fdegs.clone();
                d.sort_unstable();
                d[d.len() / 2]
            },
            fdegs.iter().max().unwrap()
        );
        // median-cc sybil dissection
        let (_, med) = ccs[ccs.len() / 2];
        let mfriends: Vec<NodeId> = out
            .graph
            .first_k_friends(med, 50)
            .iter()
            .map(|nb| nb.node)
            .collect();
        let mut links = 0;
        for i in 0..mfriends.len() {
            for j in (i + 1)..mfriends.len() {
                if out.graph.has_edge(mfriends[i], mfriends[j]) {
                    links += 1;
                }
            }
        }
        let mdegs: Vec<usize> = mfriends.iter().map(|&f| out.graph.degree(f)).collect();
        println!(
            "median sybil: deg {} k {} links {} friend-deg p50 {} p90 {}",
            out.graph.degree(med),
            mfriends.len(),
            links,
            {
                let mut d = mdegs.clone();
                d.sort_unstable();
                d[d.len() / 2]
            },
            {
                let mut d = mdegs.clone();
                d.sort_unstable();
                d[d.len() * 9 / 10]
            }
        );
    }
}
