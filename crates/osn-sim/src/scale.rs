//! Deterministic synthetic workload generator for million-account scale.
//!
//! The full behavioral simulator ([`crate::simulate`]) models targeting
//! channels, profiles, and ban dynamics — faithful, but far too slow to
//! exercise the serving substrate at the paper's production scale
//! (hundreds of millions of accounts on Renren; millions here). Scale
//! benchmarking needs a workload that is *shaped* like a simulator run —
//! send-ordered request log, well-formed decisions, over-sending Sybils
//! with low acceptance, a connected normal population — but generated in
//! O(requests) time with O(1) state per request, so a 5M-account /
//! 20M-request log materializes in seconds.
//!
//! Everything is derived from a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-style
//! hash of `(seed, counter)`, so generation is bit-reproducible, and
//! epoch-by-epoch in send order: the generator never holds more than the
//! one record it is emitting (the [`RequestLog`] it fills is the
//! product, not working state).

use crate::account::{Account, AccountKind};
use crate::config::SimConfig;
use crate::log::RequestLog;
use crate::output::{EngineStats, SimOutput};
use crate::profile::{Gender, Profile};
use crate::request::{RequestOutcome, RequestRecord};
use crate::tools::ToolKind;
use osn_graph::{NodeId, TemporalGraph, Timestamp};

/// Parameters of a synthetic scale workload.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Total accounts (normal + Sybil).
    pub accounts: usize,
    /// One in `sybil_every` accounts is a Sybil (≥ 2).
    pub sybil_every: usize,
    /// Mean friend requests per account.
    pub requests_per_account: f64,
    /// Simulated span in hours; sends spread uniformly over it.
    pub hours: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// Default shape at a given account count: 2% Sybils, 4 requests per
    /// account, a 4000 h window (the paper-scale simulation's span).
    pub fn at(accounts: usize, seed: u64) -> Self {
        ScaleConfig {
            accounts,
            sybil_every: 50,
            requests_per_account: 4.0,
            hours: 4000,
            seed,
        }
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `x`. Public
/// because every seeded derivation in the workspace funnels through it —
/// scale generation here, fault-schedule generation in `sybil-chaos` —
/// so "same seed, same run" holds across subsystems by construction.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `i`-th draw for this config, uniform in `[0, m)`.
#[inline]
fn draw(seed: u64, i: u64, m: u64) -> u64 {
    splitmix64(seed ^ splitmix64(i)) % m
}

/// Whether account `a` is a Sybil under `cfg`.
#[inline]
fn is_sybil(cfg: &ScaleConfig, a: usize) -> bool {
    a % cfg.sybil_every == cfg.sybil_every - 1
}

/// Generate a synthetic [`SimOutput`] whose log drives the serving and
/// replay engines exactly like a simulator run (send-ordered records,
/// decisions at or after sends, no self-requests).
///
/// Workload shape: Sybils send ~8× their per-account share and target
/// uniformly (low accept odds ⇒ low outgoing-accept ratio, near-zero
/// clustering); normal users target a locality window around their own id
/// (repeat pairs and triangles ⇒ non-trivial clustering), accept readily,
/// and answer within three days. The `graph` field carries the accepted
/// edges only if `accounts` is small; above
/// [`GRAPH_MATERIALIZE_LIMIT`] it stays edge-free (the serving engines
/// never read it — they rebuild edge state from the log).
pub fn generate(cfg: &ScaleConfig) -> SimOutput {
    let n = cfg.accounts;
    assert!(n >= 4, "scale workload needs at least 4 accounts");
    assert!(cfg.sybil_every >= 2, "sybil_every must be ≥ 2");
    let seed = splitmix64(cfg.seed ^ 0xC0FF_EE00_5CA1_E000);
    let span_s = cfg.hours.max(1) * 3600;
    let arrival_s = span_s * 3 / 5; // accounts appear in the first 60%

    let mut accounts = Vec::with_capacity(n);
    for a in 0..n {
        let kind = if is_sybil(cfg, a) {
            AccountKind::Sybil {
                attacker: (a % 17) as u32,
                tool: ToolKind::MarketingAssistant,
            }
        } else {
            AccountKind::Normal
        };
        let h = splitmix64(seed ^ 0xACC0 ^ a as u64);
        accounts.push(Account {
            kind,
            profile: Profile::new(
                if h & 1 == 0 { Gender::Female } else { Gender::Male },
                (h >> 8 & 0xFF) as f64 / 255.0,
            ),
            created_at: Timestamp((h >> 16) % arrival_s),
            banned_at: None,
            accept_tendency: if kind.is_sybil() {
                1.0
            } else {
                0.5 + ((h >> 24 & 0xFF) as f64 / 512.0)
            },
            sociability: 1.0,
        });
    }

    let total = (n as f64 * cfg.requests_per_account) as u64;
    let mut log = RequestLog::new();
    let mut resolutions: Vec<(u32, RequestOutcome)> = Vec::new();
    for i in 0..total {
        // Sends spread uniformly: the log is emitted already time-sorted.
        let sent_at = Timestamp(arrival_s / 4 + (i * (span_s - arrival_s / 4)) / total.max(1));
        // Sybils are ~2% of accounts but send ~16% of requests.
        let from = if draw(seed ^ 0x5E9D, i, 100) < 16 {
            let k = draw(seed ^ 0x5B11, i, (n / cfg.sybil_every) as u64) as usize;
            k * cfg.sybil_every + cfg.sybil_every - 1
        } else {
            let a = draw(seed ^ 0x90F1, i, n as u64) as usize;
            if is_sybil(cfg, a) {
                (a + 1) % n
            } else {
                a
            }
        };
        let sender_sybil = is_sybil(cfg, from);
        // Normal users befriend a window around their own id — repeat
        // pairs across users close triangles; Sybils spray uniformly.
        let to = if sender_sybil {
            let t = draw(seed ^ 0x7A40, i, n as u64 - 1) as usize;
            if t >= from {
                t + 1
            } else {
                t
            }
        } else {
            let w = 1 + draw(seed ^ 0x10CA1, i, 24) as usize;
            let t = (from + w) % n;
            if t == from {
                (t + 1) % n
            } else {
                t
            }
        };
        let idx = log.push(RequestRecord {
            from: NodeId(from as u32),
            to: NodeId(to as u32),
            sent_at,
            outcome: RequestOutcome::Pending,
        });
        // Decide later (resolve() must not see time running backwards, so
        // collect and apply after all sends are logged — the outcomes are
        // a pure function of (seed, i) either way).
        let roll = draw(seed ^ 0xDEC1DE, i, 100);
        // (accept, reject) percentages; the rest stay pending forever.
        // Sybil requests mostly bounce (paper §2.2: ~26% accepted vs ~79%
        // for normal users).
        let (accept, reject) = if sender_sybil { (12, 58) } else { (72, 18) };
        let outcome = if roll < accept {
            Some(true)
        } else if roll < accept + reject {
            Some(false)
        } else {
            None // ignored forever
        };
        if let Some(accepted) = outcome {
            let delay = 60 + draw(seed ^ 0xDE1A4, i, 72 * 3600);
            let at = Timestamp(sent_at.as_secs() + delay);
            resolutions.push((
                idx as u32,
                if accepted {
                    RequestOutcome::Accepted(at)
                } else {
                    RequestOutcome::Rejected(at)
                },
            ));
        }
    }
    for (idx, outcome) in resolutions {
        log.resolve(idx as usize, outcome);
    }

    let mut graph = TemporalGraph::with_nodes(n);
    if n <= GRAPH_MATERIALIZE_LIMIT {
        // Small runs (tests) get the real accepted-edge graph; edges are
        // added in acceptance-time order like the simulator does.
        let mut accepts: Vec<(Timestamp, u32)> = log
            .records()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.outcome.decided_at().map(|t| (t, i as u32)))
            .filter(|&(_, i)| log.get(i as usize).outcome.is_accepted())
            .collect();
        accepts.sort_unstable();
        for (t, i) in accepts {
            let r = log.get(i as usize);
            let _ = graph.add_edge(r.from, r.to, t);
        }
    }

    SimOutput {
        config: SimConfig {
            seed: cfg.seed,
            hours: cfg.hours,
            n_normal: n - n / cfg.sybil_every,
            n_sybil: n / cfg.sybil_every,
            ..SimConfig::tiny(cfg.seed)
        },
        graph,
        accounts,
        log,
        engine_stats: EngineStats::default(),
    }
}

/// Above this account count [`generate`] leaves `SimOutput::graph`
/// edge-free: the serving/replay engines rebuild edge state from the log,
/// and a multi-million-node mutable adjacency would only burn memory.
pub const GRAPH_MATERIALIZE_LIMIT: usize = 100_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{EventStream, PullStream};

    #[test]
    fn workload_is_deterministic_and_well_formed() {
        let cfg = ScaleConfig::at(2_000, 7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.log.records(), b.log.records());
        assert_eq!(a.accounts.len(), 2_000);
        for (i, r) in a.log.records().iter().enumerate() {
            assert_ne!(r.from, r.to, "no self requests (record {i})");
            if let Some(d) = r.outcome.decided_at() {
                assert!(r.sent_at <= d, "decision before send (record {i})");
            }
        }
        // Send order is the log order (push() debug-asserts it too).
        for w in a.log.records().windows(2) {
            assert!(w[0].sent_at <= w[1].sent_at);
        }
    }

    #[test]
    fn sybils_oversend_and_underperform() {
        let cfg = ScaleConfig::at(5_000, 11);
        let out = generate(&cfg);
        let n_sybil = (0..cfg.accounts).filter(|&a| is_sybil(&cfg, a)).count();
        assert_eq!(n_sybil, 100);
        let mut sybil_sends = 0usize;
        let (mut s_acc, mut s_dec, mut n_acc, mut n_dec) = (0usize, 0usize, 0usize, 0usize);
        for r in out.log.records() {
            let sybil = out.accounts[r.from.index()].is_sybil();
            sybil_sends += usize::from(sybil);
            if r.outcome.is_resolved() {
                if sybil {
                    s_dec += 1;
                    s_acc += usize::from(r.outcome.is_accepted());
                } else {
                    n_dec += 1;
                    n_acc += usize::from(r.outcome.is_accepted());
                }
            }
        }
        let share = sybil_sends as f64 / out.log.len() as f64;
        assert!(share > 0.10 && share < 0.25, "sybil send share {share}");
        let s_ratio = s_acc as f64 / s_dec as f64;
        let n_ratio = n_acc as f64 / n_dec as f64;
        assert!(
            s_ratio + 0.3 < n_ratio,
            "accept separation: sybil {s_ratio} normal {n_ratio}"
        );
    }

    #[test]
    fn generated_stream_is_mergeable_both_ways() {
        let out = generate(&ScaleConfig::at(1_500, 3));
        let eager: Vec<_> = EventStream::new(&out.log).collect();
        let pulled: Vec<_> = PullStream::new(&out.log).collect();
        assert_eq!(eager, pulled);
    }

    #[test]
    fn small_runs_materialize_the_accept_graph() {
        let out = generate(&ScaleConfig::at(1_000, 5));
        let accepted = out
            .log
            .records()
            .iter()
            .filter(|r| r.outcome.is_accepted())
            .count();
        assert!(accepted > 0);
        // Repeat pairs collapse into one edge, so edges ≤ accepted.
        assert!(out.graph.num_edges() > 0);
        assert!(out.graph.num_edges() <= accepted);
    }
}
