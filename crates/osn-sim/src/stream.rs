//! Pull-based merged event stream over a [`RequestLog`].
//!
//! The streaming detector (and the sharded serving engine built on it)
//! consumes the simulation's friend-request history as one chronological
//! stream of *send* and *decision* events. The seed implementation
//! materialized that merge as a `Vec` twice the log's length before the
//! first event could be processed; [`EventStream`] instead merges lazily,
//! so a consumer that batches by epoch only ever buffers one epoch of
//! events.
//!
//! Ordering contract (load-bearing for detector determinism):
//!
//! 1. events are ordered by timestamp;
//! 2. at equal timestamps, sends come before decisions (a request cannot
//!    be answered before it exists);
//! 3. ties within a kind break by log-record index.
//!
//! This is exactly the order the seed's stable `sort_by_key((t, kind))`
//! produced, so replaying through the stream is bit-identical.

use crate::log::RequestLog;
use osn_graph::Timestamp;

/// What happened at one point of the merged stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEventKind {
    /// Request `record` (index into the log) was sent.
    Sent(u32),
    /// Request `record` was decided (accepted or rejected).
    Decided(u32),
}

/// One event of the merged send/decision stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Global position in the merged stream (0-based, gap-free). Two
    /// engines iterating the same log agree on every event's `seq`, which
    /// is what makes cross-shard merges deterministic.
    pub seq: u64,
    /// When the event happened.
    pub at: Timestamp,
    /// What happened.
    pub kind: StreamEventKind,
}

/// Lazy merge iterator over a log's sends and decisions.
///
/// Construction sorts only the *decision index* array (`u32` per resolved
/// request); the event structs themselves are produced on demand.
pub struct EventStream<'a> {
    log: &'a RequestLog,
    /// Next unsent record (records are already in `sent_at` order).
    send_cursor: usize,
    /// Resolved record indices ordered by `(decided_at, index)`.
    decided: Vec<u32>,
    decide_cursor: usize,
    next_seq: u64,
}

impl<'a> EventStream<'a> {
    /// Build the stream for `log`.
    pub fn new(log: &'a RequestLog) -> Self {
        let mut decided: Vec<u32> = Vec::new();
        for (i, r) in log.records().iter().enumerate() {
            if r.outcome.is_resolved() {
                decided.push(i as u32);
            }
        }
        decided.sort_by_key(|&i| (decide_time(log, i), i));
        EventStream {
            log,
            send_cursor: 0,
            decided,
            decide_cursor: 0,
            next_seq: 0,
        }
    }

    /// Total number of events this stream will yield (sends + decisions).
    pub fn total_events(&self) -> usize {
        self.log.len() + self.decided.len()
    }
}

/// Decision time of resolved record `i` (caller guarantees resolution).
fn decide_time(log: &RequestLog, i: u32) -> Timestamp {
    log.get(i as usize)
        .outcome
        .decided_at()
        .unwrap_or(Timestamp::ZERO)
}

impl Iterator for EventStream<'_> {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        let send_at = (self.send_cursor < self.log.len())
            .then(|| self.log.get(self.send_cursor).sent_at);
        let decide_at = self
            .decided
            .get(self.decide_cursor)
            .map(|&i| decide_time(self.log, i));
        let take_send = match (send_at, decide_at) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Sends win ties: a request exists before it is answered.
            (Some(s), Some(d)) => s <= d,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(if take_send {
            let i = self.send_cursor;
            self.send_cursor += 1;
            StreamEvent {
                seq,
                at: self.log.get(i).sent_at,
                kind: StreamEventKind::Sent(i as u32),
            }
        } else {
            let i = self.decided[self.decide_cursor];
            self.decide_cursor += 1;
            StreamEvent {
                seq,
                at: decide_time(self.log, i),
                kind: StreamEventKind::Decided(i),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestOutcome, RequestRecord};
    use osn_graph::NodeId;

    /// `(from, to, sent_h, Some((decided_h, accepted)))` rows.
    type Row = (u32, u32, u64, Option<(u64, bool)>);

    fn log_with(rows: &[Row]) -> RequestLog {
        let mut log = RequestLog::new();
        for &(from, to, sent_h, decision) in rows {
            let idx = log.push(RequestRecord {
                from: NodeId(from),
                to: NodeId(to),
                sent_at: Timestamp::from_hours(sent_h),
                outcome: RequestOutcome::Pending,
            });
            if let Some((at_h, accepted)) = decision {
                let t = Timestamp::from_hours(at_h);
                log.resolve(
                    idx,
                    if accepted {
                        RequestOutcome::Accepted(t)
                    } else {
                        RequestOutcome::Rejected(t)
                    },
                );
            }
        }
        log
    }

    /// The stream must equal the seed's eager merge: push (t, 0, send) and
    /// (t, 1, decide) tuples, stable-sort by (t, kind).
    fn eager_merge(log: &RequestLog) -> Vec<(Timestamp, u8, u32)> {
        let mut events: Vec<(Timestamp, u8, u32)> = Vec::new();
        for (i, r) in log.records().iter().enumerate() {
            events.push((r.sent_at, 0, i as u32));
            if let Some(t) = r.outcome.decided_at() {
                events.push((t, 1, i as u32));
            }
        }
        events.sort_by_key(|&(t, k, _)| (t, k));
        events
    }

    #[test]
    fn matches_eager_merge_order() {
        let log = log_with(&[
            (0, 1, 1, Some((5, true))),
            (0, 2, 2, Some((2, false))), // decided at same hour as a send
            (1, 3, 2, None),             // pending forever
            (2, 4, 3, Some((3, true))),  // decided the hour it was sent
            (3, 5, 9, Some((4, true))),  // decided "before" sent_at cannot
                                         // happen in real logs; skip
        ]);
        let got: Vec<(Timestamp, u8, u32)> = EventStream::new(&log)
            .map(|e| match e.kind {
                StreamEventKind::Sent(i) => (e.at, 0, i),
                StreamEventKind::Decided(i) => (e.at, 1, i),
            })
            .collect();
        // Record 4's decision time (hour 4) precedes its send (hour 9); the
        // eager merge sorts purely by time, so both agree on that order too.
        assert_eq!(got, eager_merge(&log));
    }

    #[test]
    fn seq_is_dense_and_total_matches() {
        let log = log_with(&[
            (0, 1, 1, Some((2, true))),
            (1, 2, 3, None),
            (2, 3, 4, Some((8, false))),
        ]);
        let stream = EventStream::new(&log);
        assert_eq!(stream.total_events(), 5);
        let events: Vec<StreamEvent> = stream.collect();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = RequestLog::new();
        assert_eq!(EventStream::new(&log).count(), 0);
    }
}
