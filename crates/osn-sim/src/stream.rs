//! Pull-based merged event stream over a [`RequestLog`].
//!
//! The streaming detector (and the sharded serving engine built on it)
//! consumes the simulation's friend-request history as one chronological
//! stream of *send* and *decision* events. The seed implementation
//! materialized that merge as a `Vec` twice the log's length before the
//! first event could be processed; [`EventStream`] instead merges lazily,
//! so a consumer that batches by epoch only ever buffers one epoch of
//! events.
//!
//! Ordering contract (load-bearing for detector determinism):
//!
//! 1. events are ordered by timestamp;
//! 2. at equal timestamps, sends come before decisions (a request cannot
//!    be answered before it exists);
//! 3. ties within a kind break by log-record index.
//!
//! This is exactly the order the seed's stable `sort_by_key((t, kind))`
//! produced, so replaying through the stream is bit-identical.
//!
//! Two generations of laziness live here. [`EventStream`] (the sequential
//! replay's path) still sorts one `u32` per resolved request up front and
//! honors even pathological logs whose decisions precede their sends.
//! [`PullStream`] goes further for the serving engine: decisions enter a
//! min-heap as their sends are emitted, so nothing proportional to the
//! log length is materialized and the working set is the in-flight
//! decision window — with [`EpochBatches`] layering absolute-grid epoch
//! slicing (one reused buffer) on top. Both yield the identical event
//! sequence on well-formed logs, so replay and serve stay bit-identical.

use crate::log::RequestLog;
use osn_graph::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happened at one point of the merged stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEventKind {
    /// Request `record` (index into the log) was sent.
    Sent(u32),
    /// Request `record` was decided (accepted or rejected).
    Decided(u32),
}

/// One event of the merged send/decision stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Global position in the merged stream (0-based, gap-free). Two
    /// engines iterating the same log agree on every event's `seq`, which
    /// is what makes cross-shard merges deterministic.
    pub seq: u64,
    /// When the event happened.
    pub at: Timestamp,
    /// What happened.
    pub kind: StreamEventKind,
}

/// Lazy merge iterator over a log's sends and decisions.
///
/// Construction sorts only the *decision index* array (`u32` per resolved
/// request); the event structs themselves are produced on demand.
pub struct EventStream<'a> {
    log: &'a RequestLog,
    /// Next unsent record (records are already in `sent_at` order).
    send_cursor: usize,
    /// Resolved record indices ordered by `(decided_at, index)`.
    decided: Vec<u32>,
    decide_cursor: usize,
    next_seq: u64,
}

impl<'a> EventStream<'a> {
    /// Build the stream for `log`.
    pub fn new(log: &'a RequestLog) -> Self {
        let mut decided: Vec<u32> = Vec::new();
        for (i, r) in log.records().iter().enumerate() {
            if r.outcome.is_resolved() {
                decided.push(i as u32);
            }
        }
        decided.sort_by_key(|&i| (decide_time(log, i), i));
        EventStream {
            log,
            send_cursor: 0,
            decided,
            decide_cursor: 0,
            next_seq: 0,
        }
    }

    /// Total number of events this stream will yield (sends + decisions).
    pub fn total_events(&self) -> usize {
        self.log.len() + self.decided.len()
    }
}

/// Decision time of resolved record `i` (caller guarantees resolution).
fn decide_time(log: &RequestLog, i: u32) -> Timestamp {
    log.get(i as usize)
        .outcome
        .decided_at()
        .unwrap_or(Timestamp::ZERO)
}

impl Iterator for EventStream<'_> {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        let send_at = (self.send_cursor < self.log.len())
            .then(|| self.log.get(self.send_cursor).sent_at);
        let decide_at = self
            .decided
            .get(self.decide_cursor)
            .map(|&i| decide_time(self.log, i));
        let take_send = match (send_at, decide_at) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Sends win ties: a request exists before it is answered.
            (Some(s), Some(d)) => s <= d,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(if take_send {
            let i = self.send_cursor;
            self.send_cursor += 1;
            StreamEvent {
                seq,
                at: self.log.get(i).sent_at,
                kind: StreamEventKind::Sent(i as u32),
            }
        } else {
            let i = self.decided[self.decide_cursor];
            self.decide_cursor += 1;
            StreamEvent {
                seq,
                at: decide_time(self.log, i),
                kind: StreamEventKind::Decided(i),
            }
        })
    }
}

/// Fully pull-based merge for **well-formed** logs (every decision at or
/// after its send — the discrete-event engine's invariant, debug-asserted
/// here).
///
/// [`EventStream`] still materializes one `u32` per resolved request up
/// front to sort decisions globally — 4 bytes/event, the last O(total)
/// side array on the serving path. `PullStream` drops that too: a
/// record's decision key enters a min-heap only when its *send* is
/// emitted, so the working set is the decisions in flight (sent, not yet
/// decided at the stream position) — bounded by the feedback/decision
/// delay window, not the log length.
///
/// Why the order still matches [`EventStream`] exactly: sends win ties,
/// so every send at time `t` is emitted before any decision at `t` is
/// popped; by well-formedness any decision with time ≤ `t` belongs to an
/// already-emitted send and is therefore in the heap; and the heap pops
/// by `(time, record index)` — precisely `EventStream`'s decision order.
/// (For pathological logs with decisions before sends, only
/// `EventStream` reproduces the seed's pure time-sort; the sequential
/// replay keeps using it for that reason.)
pub struct PullStream<'a> {
    log: &'a RequestLog,
    /// Next unsent record (records are already in `sent_at` order).
    send_cursor: usize,
    /// Decisions in flight, ordered by `(decided_at, record index)`; the
    /// payload carries the record's endpoints and outcome so consumers
    /// never have to re-fetch the (cache-cold) record at decision time.
    pending: BinaryHeap<Reverse<(Timestamp, u32, EventDetail)>>,
    next_seq: u64,
}

/// Endpoints and outcome of the record behind a [`StreamEvent`], emitted
/// alongside it by [`PullStream::next_with_detail`]. Engines that process
/// tens of millions of events per second read these three fields from a
/// hot sequential array instead of chasing the record in the log (a
/// guaranteed cache miss for decisions, whose records were appended at
/// send time, long out of cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventDetail {
    /// Sender of the underlying request.
    pub from: u32,
    /// Recipient of the underlying request.
    pub to: u32,
    /// For `Decided` events: whether the request was accepted. Always
    /// `false` for `Sent` events.
    pub accepted: bool,
}

impl<'a> PullStream<'a> {
    /// Build the stream for `log`.
    pub fn new(log: &'a RequestLog) -> Self {
        PullStream {
            log,
            send_cursor: 0,
            pending: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Total number of events this stream will yield (sends + decisions).
    /// One counting pass, no allocation.
    pub fn total_events(&self) -> usize {
        self.log.len()
            + self
                .log
                .records()
                .iter()
                .filter(|r| r.outcome.is_resolved())
                .count()
    }

    /// The next event plus its record's endpoints/outcome. Same sequence
    /// as the `Iterator` impl (which discards the detail).
    pub fn next_with_detail(&mut self) -> Option<(StreamEvent, EventDetail)> {
        let send_at = (self.send_cursor < self.log.len())
            .then(|| self.log.get(self.send_cursor).sent_at);
        let decide_at = self.pending.peek().map(|&Reverse((t, _, _))| t);
        let take_send = match (send_at, decide_at) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Sends win ties: a request exists before it is answered.
            (Some(s), Some(d)) => s <= d,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(if take_send {
            let i = self.send_cursor;
            self.send_cursor += 1;
            let r = self.log.get(i);
            if let Some(d) = r.outcome.decided_at() {
                debug_assert!(
                    r.sent_at <= d,
                    "PullStream requires decisions at or after their send"
                );
                let detail = EventDetail {
                    from: r.from.0,
                    to: r.to.0,
                    accepted: r.outcome.is_accepted(),
                };
                self.pending.push(Reverse((d, i as u32, detail)));
            }
            (
                StreamEvent {
                    seq,
                    at: r.sent_at,
                    kind: StreamEventKind::Sent(i as u32),
                },
                EventDetail {
                    from: r.from.0,
                    to: r.to.0,
                    accepted: false,
                },
            )
        } else {
            // The peek above proved the heap non-empty, so `?` never fires.
            let Reverse((t, i, detail)) = self.pending.pop()?;
            (
                StreamEvent {
                    seq,
                    at: t,
                    kind: StreamEventKind::Decided(i),
                },
                detail,
            )
        })
    }
}

impl Iterator for PullStream<'_> {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        self.next_with_detail().map(|(ev, _)| ev)
    }
}

/// Epoch-sliced view of a [`PullStream`]: batches events on an absolute
/// time grid (`epoch_s`-second cells anchored at 0, so boundaries are
/// independent of where previous epochs happened to end), reusing one
/// pair of buffers. A consumer holds at most one epoch of events plus the
/// stream's in-flight decision heap — the serving engine's bounded
/// working set. Each event comes with its [`EventDetail`] in a parallel
/// slice, so per-event consumers read endpoints and outcomes from hot
/// sequential memory instead of the log.
pub struct EpochBatches<'a> {
    stream: PullStream<'a>,
    /// One-slot lookahead (the first event of the *next* epoch).
    peeked: Option<(StreamEvent, EventDetail)>,
    epoch_s: u64,
    buf: Vec<StreamEvent>,
    details: Vec<EventDetail>,
}

impl<'a> EpochBatches<'a> {
    /// Batch `log`'s merged events into `epoch_s`-second epochs.
    pub fn new(log: &'a RequestLog, epoch_s: u64) -> Self {
        debug_assert!(epoch_s > 0);
        EpochBatches {
            stream: PullStream::new(log),
            peeked: None,
            epoch_s,
            buf: Vec::new(),
            details: Vec::new(),
        }
    }

    fn peek(&mut self) -> Option<&(StreamEvent, EventDetail)> {
        if self.peeked.is_none() {
            self.peeked = self.stream.next_with_detail();
        }
        self.peeked.as_ref()
    }

    /// The next non-empty epoch's events and their parallel details, or
    /// `None` at end of stream. The returned slices are valid until the
    /// next call (the buffers are reused).
    #[allow(clippy::should_implement_trait)]
    pub fn next_epoch(&mut self) -> Option<(&[StreamEvent], &[EventDetail])> {
        let &(first, _) = self.peek()?;
        let epoch_end = (first.at.as_secs() / self.epoch_s + 1) * self.epoch_s;
        self.buf.clear();
        self.details.clear();
        while let Some(&(ev, detail)) = self.peek() {
            if ev.at.as_secs() < epoch_end {
                self.buf.push(ev);
                self.details.push(detail);
                self.peeked = None;
            } else {
                break;
            }
        }
        Some((&self.buf, &self.details))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestOutcome, RequestRecord};
    use osn_graph::NodeId;

    /// `(from, to, sent_h, Some((decided_h, accepted)))` rows.
    type Row = (u32, u32, u64, Option<(u64, bool)>);

    fn log_with(rows: &[Row]) -> RequestLog {
        let mut log = RequestLog::new();
        for &(from, to, sent_h, decision) in rows {
            let idx = log.push(RequestRecord {
                from: NodeId(from),
                to: NodeId(to),
                sent_at: Timestamp::from_hours(sent_h),
                outcome: RequestOutcome::Pending,
            });
            if let Some((at_h, accepted)) = decision {
                let t = Timestamp::from_hours(at_h);
                log.resolve(
                    idx,
                    if accepted {
                        RequestOutcome::Accepted(t)
                    } else {
                        RequestOutcome::Rejected(t)
                    },
                );
            }
        }
        log
    }

    /// The stream must equal the seed's eager merge: push (t, 0, send) and
    /// (t, 1, decide) tuples, stable-sort by (t, kind).
    fn eager_merge(log: &RequestLog) -> Vec<(Timestamp, u8, u32)> {
        let mut events: Vec<(Timestamp, u8, u32)> = Vec::new();
        for (i, r) in log.records().iter().enumerate() {
            events.push((r.sent_at, 0, i as u32));
            if let Some(t) = r.outcome.decided_at() {
                events.push((t, 1, i as u32));
            }
        }
        events.sort_by_key(|&(t, k, _)| (t, k));
        events
    }

    #[test]
    fn matches_eager_merge_order() {
        let log = log_with(&[
            (0, 1, 1, Some((5, true))),
            (0, 2, 2, Some((2, false))), // decided at same hour as a send
            (1, 3, 2, None),             // pending forever
            (2, 4, 3, Some((3, true))),  // decided the hour it was sent
            (3, 5, 9, Some((4, true))),  // decided "before" sent_at cannot
                                         // happen in real logs; skip
        ]);
        let got: Vec<(Timestamp, u8, u32)> = EventStream::new(&log)
            .map(|e| match e.kind {
                StreamEventKind::Sent(i) => (e.at, 0, i),
                StreamEventKind::Decided(i) => (e.at, 1, i),
            })
            .collect();
        // Record 4's decision time (hour 4) precedes its send (hour 9); the
        // eager merge sorts purely by time, so both agree on that order too.
        assert_eq!(got, eager_merge(&log));
    }

    #[test]
    fn seq_is_dense_and_total_matches() {
        let log = log_with(&[
            (0, 1, 1, Some((2, true))),
            (1, 2, 3, None),
            (2, 3, 4, Some((8, false))),
        ]);
        let stream = EventStream::new(&log);
        assert_eq!(stream.total_events(), 5);
        let events: Vec<StreamEvent> = stream.collect();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = RequestLog::new();
        assert_eq!(EventStream::new(&log).count(), 0);
        assert_eq!(PullStream::new(&log).count(), 0);
        assert!(EpochBatches::new(&log, 3600).next_epoch().is_none());
    }

    /// On well-formed logs (decisions at or after sends) the heap-based
    /// pull merge must reproduce `EventStream` event for event.
    #[test]
    fn pull_stream_matches_event_stream_on_well_formed_logs() {
        let log = log_with(&[
            (0, 1, 1, Some((5, true))),
            (0, 2, 2, Some((2, false))), // decided the hour it was sent
            (1, 3, 2, None),             // pending forever
            (2, 4, 3, Some((3, true))),
            (3, 5, 3, Some((4, true))), // same send hour, later decision
            (4, 6, 9, Some((9, false))),
        ]);
        let eager: Vec<StreamEvent> = EventStream::new(&log).collect();
        let pulled: Vec<StreamEvent> = PullStream::new(&log).collect();
        assert_eq!(pulled, eager);
        assert_eq!(PullStream::new(&log).total_events(), eager.len());
    }

    /// Randomized well-formed logs: same equivalence, denser tie pressure.
    #[test]
    fn pull_stream_matches_event_stream_randomized() {
        // Tiny deterministic LCG; no external entropy.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..50 {
            let mut rows: Vec<Row> = Vec::new();
            let mut h = 0u64;
            for _ in 0..next(40) {
                h += next(3); // nondecreasing send hours with heavy ties
                let decision = match next(4) {
                    0 => None,
                    _ => Some((h + next(6), next(2) == 0)),
                };
                rows.push((next(8) as u32, next(8) as u32, h, decision));
            }
            let log = log_with(&rows);
            let eager: Vec<StreamEvent> = EventStream::new(&log).collect();
            let pulled: Vec<StreamEvent> = PullStream::new(&log).collect();
            assert_eq!(pulled, eager);
        }
    }

    /// Epoch batches concatenate to the full stream, cells lie on the
    /// absolute grid, and no batch is empty.
    #[test]
    fn epoch_batches_tile_the_stream() {
        let log = log_with(&[
            (0, 1, 1, Some((5, true))),
            (1, 2, 2, Some((90, false))), // decision far in the future
            (2, 3, 40, None),
            (3, 4, 41, Some((41, true))),
        ]);
        let all: Vec<StreamEvent> = EventStream::new(&log).collect();
        let epoch_s = 24 * 3600;
        let mut batches = EpochBatches::new(&log, epoch_s);
        let mut cat: Vec<StreamEvent> = Vec::new();
        while let Some((events, details)) = batches.next_epoch() {
            assert!(!events.is_empty());
            assert_eq!(events.len(), details.len());
            let cell = events[0].at.as_secs() / epoch_s;
            assert!(events
                .iter()
                .all(|e| e.at.as_secs() / epoch_s == cell), "one grid cell per batch");
            for (ev, d) in events.iter().zip(details) {
                let (i, decided) = match ev.kind {
                    StreamEventKind::Sent(i) => (i, false),
                    StreamEventKind::Decided(i) => (i, true),
                };
                let r = log.get(i as usize);
                assert_eq!((d.from, d.to), (r.from.0, r.to.0));
                assert_eq!(d.accepted, decided && r.outcome.is_accepted());
            }
            cat.extend_from_slice(events);
        }
        assert_eq!(cat, all);
    }
}
