//! Friend-request records — the operational log substrate.
//!
//! Every behavioral feature of §2.2 (invitation frequency, outgoing and
//! incoming accept ratios) is computed from these records, exactly as the
//! paper computes them from Renren's internal invitation logs.

use osn_graph::{NodeId, Timestamp};
use serde::{Deserialize, Serialize};

/// Final outcome of a friend request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The recipient confirmed at the given time (an edge was created).
    Accepted(Timestamp),
    /// The recipient declined at the given time.
    Rejected(Timestamp),
    /// Never answered (ignored, or the recipient was banned first).
    Pending,
}

impl RequestOutcome {
    /// True if the request was accepted.
    #[inline]
    pub fn is_accepted(self) -> bool {
        matches!(self, RequestOutcome::Accepted(_))
    }

    /// True if the request got any answer (accept or reject).
    #[inline]
    pub fn is_resolved(self) -> bool {
        !matches!(self, RequestOutcome::Pending)
    }

    /// When the request was answered, if it was.
    pub fn decided_at(self) -> Option<Timestamp> {
        match self {
            RequestOutcome::Accepted(t) | RequestOutcome::Rejected(t) => Some(t),
            RequestOutcome::Pending => None,
        }
    }
}

/// One friend request in the operational log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// When the invitation was sent.
    pub sent_at: Timestamp,
    /// How it ended.
    pub outcome: RequestOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        let t = Timestamp::from_hours(5);
        assert!(RequestOutcome::Accepted(t).is_accepted());
        assert!(RequestOutcome::Accepted(t).is_resolved());
        assert!(!RequestOutcome::Rejected(t).is_accepted());
        assert!(RequestOutcome::Rejected(t).is_resolved());
        assert!(!RequestOutcome::Pending.is_accepted());
        assert!(!RequestOutcome::Pending.is_resolved());
    }

    #[test]
    fn decided_at() {
        let t = Timestamp::from_hours(5);
        assert_eq!(RequestOutcome::Accepted(t).decided_at(), Some(t));
        assert_eq!(RequestOutcome::Rejected(t).decided_at(), Some(t));
        assert_eq!(RequestOutcome::Pending.decided_at(), None);
    }
}
