//! Account records: ground-truth kind, profile, lifecycle.

use crate::profile::Profile;
use crate::tools::ToolKind;
use osn_graph::Timestamp;
use serde::{Deserialize, Serialize};

/// Ground-truth classification of an account.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccountKind {
    /// A real user.
    Normal,
    /// A fake identity run by attacker `attacker` using `tool`.
    Sybil {
        /// Index of the controlling attacker.
        attacker: u32,
        /// The tool driving this account.
        tool: ToolKind,
    },
}

impl AccountKind {
    /// True for Sybil accounts.
    #[inline]
    pub fn is_sybil(self) -> bool {
        matches!(self, AccountKind::Sybil { .. })
    }
}

/// One account's full simulated state, as exported after a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Account {
    /// Ground truth.
    pub kind: AccountKind,
    /// Profile attributes.
    pub profile: Profile,
    /// When the account was registered.
    pub created_at: Timestamp,
    /// When Renren banned it, if ever (only Sybils are banned in-model).
    pub banned_at: Option<Timestamp>,
    /// Personal acceptance tendency in `[0, 1]`: how readily this (normal)
    /// user confirms incoming requests. Gives Fig. 3's spread. Sybils hold
    /// 1.0 — they accept everything.
    pub accept_tendency: f64,
    /// Activity-rate multiplier (log-normal across users). The heavy tail
    /// creates genuinely-popular celebrity accounts. Sybils hold 1.0; their
    /// rate comes from the tool instead.
    pub sociability: f64,
}

impl Account {
    /// Whether this account is ground-truth Sybil.
    #[inline]
    pub fn is_sybil(&self) -> bool {
        self.kind.is_sybil()
    }

    /// Whether the account is banned at time `t`.
    #[inline]
    pub fn banned_by(&self, t: Timestamp) -> bool {
        matches!(self.banned_at, Some(b) if b <= t)
    }

    /// The controlling attacker, for Sybils.
    pub fn attacker(&self) -> Option<u32> {
        match self.kind {
            AccountKind::Sybil { attacker, .. } => Some(attacker),
            AccountKind::Normal => None,
        }
    }

    /// The driving tool, for Sybils.
    pub fn tool(&self) -> Option<ToolKind> {
        match self.kind {
            AccountKind::Sybil { tool, .. } => Some(tool),
            AccountKind::Normal => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Gender;

    fn sybil() -> Account {
        Account {
            kind: AccountKind::Sybil {
                attacker: 3,
                tool: ToolKind::MarketingAssistant,
            },
            profile: Profile::new(Gender::Female, 0.9),
            created_at: Timestamp::from_hours(10),
            banned_at: Some(Timestamp::from_hours(100)),
            accept_tendency: 1.0,
            sociability: 1.0,
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(sybil().is_sybil());
        assert!(AccountKind::Sybil {
            attacker: 0,
            tool: ToolKind::AlmightyAssistant
        }
        .is_sybil());
        assert!(!AccountKind::Normal.is_sybil());
    }

    #[test]
    fn ban_boundary() {
        let s = sybil();
        assert!(!s.banned_by(Timestamp::from_hours(99)));
        assert!(s.banned_by(Timestamp::from_hours(100)));
        assert!(s.banned_by(Timestamp::from_hours(101)));
    }

    #[test]
    fn attacker_and_tool_accessors() {
        let s = sybil();
        assert_eq!(s.attacker(), Some(3));
        assert_eq!(s.tool(), Some(ToolKind::MarketingAssistant));
        let n = Account {
            kind: AccountKind::Normal,
            ..sybil()
        };
        assert_eq!(n.attacker(), None);
        assert_eq!(n.tool(), None);
    }
}
