//! Dataset export/import.
//!
//! A simulation run is a full measurement dataset: a timestamped
//! friendship graph, a ground-truth label table, and an operational
//! friend-request log. This module serializes all three as CSV so runs
//! can be archived, inspected with external tooling, or replayed through
//! the pipeline without re-simulating — the workflow the paper's authors
//! had with Renren's dumps.
//!
//! Files (per dataset directory):
//! * `edges.csv`   — `src,dst,time_secs` (via `osn_graph::io`)
//! * `accounts.csv`— `id,kind,attacker,tool,created_secs,banned_secs,gender,attractiveness`
//! * `requests.csv`— `from,to,sent_secs,outcome,decided_secs`

use crate::account::{Account, AccountKind};
use crate::log::RequestLog;
use crate::output::{EngineStats, SimOutput};
use crate::profile::{Gender, Profile};
use crate::request::{RequestOutcome, RequestRecord};
use crate::tools::ToolKind;
use crate::SimConfig;
use osn_graph::{NodeId, Timestamp};
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write the full dataset into `dir` (created if missing).
pub fn export_dataset<P: AsRef<Path>>(out: &SimOutput, dir: P) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    // Graph.
    let f = fs::File::create(dir.join("edges.csv"))?;
    osn_graph::io::write_edge_list(&out.graph, BufWriter::new(f))?;
    // Accounts.
    let mut w = BufWriter::new(fs::File::create(dir.join("accounts.csv"))?);
    writeln!(
        w,
        "id,kind,attacker,tool,created_secs,banned_secs,gender,attractiveness"
    )?;
    for (i, a) in out.accounts.iter().enumerate() {
        let (kind, attacker, tool) = match a.kind {
            AccountKind::Normal => ("normal", String::new(), String::new()),
            AccountKind::Sybil { attacker, tool } => {
                ("sybil", attacker.to_string(), tool_code(tool).to_string())
            }
        };
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            i,
            kind,
            attacker,
            tool,
            a.created_at.as_secs(),
            a.banned_at.map(|b| b.as_secs().to_string()).unwrap_or_default(),
            match a.profile.gender {
                Gender::Female => "f",
                Gender::Male => "m",
            },
            a.profile.attractiveness,
        )?;
    }
    w.flush()?;
    // Requests.
    let mut w = BufWriter::new(fs::File::create(dir.join("requests.csv"))?);
    writeln!(w, "from,to,sent_secs,outcome,decided_secs")?;
    for r in out.log.records() {
        let (outcome, decided) = match r.outcome {
            RequestOutcome::Accepted(t) => ("accepted", t.as_secs().to_string()),
            RequestOutcome::Rejected(t) => ("rejected", t.as_secs().to_string()),
            RequestOutcome::Pending => ("pending", String::new()),
        };
        writeln!(
            w,
            "{},{},{},{},{}",
            r.from.0,
            r.to.0,
            r.sent_at.as_secs(),
            outcome,
            decided
        )?;
    }
    w.flush()
}

fn tool_code(t: ToolKind) -> &'static str {
    match t {
        ToolKind::MarketingAssistant => "marketing",
        ToolKind::SuperNodeCollector => "supernode",
        ToolKind::AlmightyAssistant => "almighty",
    }
}

fn tool_from_code(s: &str) -> Option<ToolKind> {
    match s {
        "marketing" => Some(ToolKind::MarketingAssistant),
        "supernode" => Some(ToolKind::SuperNodeCollector),
        "almighty" => Some(ToolKind::AlmightyAssistant),
        _ => None,
    }
}

fn bad(line: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {line}: {what}"),
    )
}

/// Load a dataset written by [`export_dataset`]. The returned
/// [`SimOutput`] carries the given `config` for provenance (the CSVs don't
/// embed it) and empty engine stats.
pub fn import_dataset<P: AsRef<Path>>(dir: P, config: SimConfig) -> io::Result<SimOutput> {
    let dir = dir.as_ref();
    let graph = {
        let f = fs::File::open(dir.join("edges.csv"))?;
        osn_graph::io::read_edge_list(BufReader::new(f))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    // Accounts.
    let mut accounts: Vec<Account> = Vec::new();
    let f = fs::File::open(dir.join("accounts.csv"))?;
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 8 {
            return Err(bad(lineno + 1, "expected 8 columns"));
        }
        let id: usize = cols[0].parse().map_err(|_| bad(lineno + 1, "bad id"))?;
        if id != accounts.len() {
            return Err(bad(lineno + 1, "ids must be dense and ordered"));
        }
        let kind = match cols[1] {
            "normal" => AccountKind::Normal,
            "sybil" => AccountKind::Sybil {
                attacker: cols[2].parse().map_err(|_| bad(lineno + 1, "bad attacker"))?,
                tool: tool_from_code(cols[3]).ok_or_else(|| bad(lineno + 1, "bad tool"))?,
            },
            _ => return Err(bad(lineno + 1, "bad kind")),
        };
        let created =
            Timestamp(cols[4].parse().map_err(|_| bad(lineno + 1, "bad created"))?);
        let banned = if cols[5].is_empty() {
            None
        } else {
            Some(Timestamp(
                cols[5].parse().map_err(|_| bad(lineno + 1, "bad banned"))?,
            ))
        };
        let gender = match cols[6] {
            "f" => Gender::Female,
            "m" => Gender::Male,
            _ => return Err(bad(lineno + 1, "bad gender")),
        };
        let attractiveness: f64 =
            cols[7].parse().map_err(|_| bad(lineno + 1, "bad attractiveness"))?;
        accounts.push(Account {
            kind,
            profile: Profile::new(gender, attractiveness),
            created_at: created,
            banned_at: banned,
            // Behavioral latents aren't serialized (they're inputs, not
            // observables); reloaded datasets carry neutral values.
            accept_tendency: if kind.is_sybil() { 1.0 } else { 0.5 },
            sociability: 1.0,
        });
    }
    // Requests.
    let mut log = RequestLog::new();
    let f = fs::File::open(dir.join("requests.csv"))?;
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(bad(lineno + 1, "expected 5 columns"));
        }
        let from = NodeId(cols[0].parse().map_err(|_| bad(lineno + 1, "bad from"))?);
        let to = NodeId(cols[1].parse().map_err(|_| bad(lineno + 1, "bad to"))?);
        let sent = Timestamp(cols[2].parse().map_err(|_| bad(lineno + 1, "bad sent"))?);
        let idx = log.push(RequestRecord {
            from,
            to,
            sent_at: sent,
            outcome: RequestOutcome::Pending,
        });
        match cols[3] {
            "pending" => {}
            "accepted" | "rejected" => {
                let t = Timestamp(
                    cols[4].parse().map_err(|_| bad(lineno + 1, "bad decided"))?,
                );
                let outcome = if cols[3] == "accepted" {
                    RequestOutcome::Accepted(t)
                } else {
                    RequestOutcome::Rejected(t)
                };
                log.resolve(idx, outcome);
            }
            _ => return Err(bad(lineno + 1, "bad outcome")),
        }
    }
    Ok(SimOutput {
        config,
        graph,
        accounts,
        log,
        engine_stats: EngineStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn roundtrip_preserves_dataset() {
        let out = simulate(SimConfig::tiny(33));
        let dir = std::env::temp_dir().join("osn_sim_io_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        export_dataset(&out, &dir).unwrap();
        let back = import_dataset(&dir, SimConfig::tiny(33)).unwrap();
        assert_eq!(back.accounts.len(), out.accounts.len());
        assert_eq!(back.graph.num_edges(), out.graph.num_edges());
        assert_eq!(back.log.len(), out.log.len());
        // Labels, bans, and tools survive.
        for (a, b) in out.accounts.iter().zip(&back.accounts) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.banned_at, b.banned_at);
            assert_eq!(a.created_at, b.created_at);
            assert_eq!(a.profile.gender, b.profile.gender);
        }
        // Request outcomes survive.
        for (x, y) in out.log.records().iter().zip(back.log.records()) {
            assert_eq!(x, y);
        }
        // Derived statistics are identical.
        assert_eq!(out.stats().sybil_edges, back.stats().sybil_edges);
        assert_eq!(
            out.sybil_connectivity_fraction(),
            back.sybil_connectivity_fraction()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_rejects_garbage() {
        let dir = std::env::temp_dir().join("osn_sim_io_garbage");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("edges.csv"), "src,dst,time_secs\n0,1,5\n").unwrap();
        fs::write(
            dir.join("accounts.csv"),
            "header\n0,normal,,,0,,f,0.5\n1,alien,,,0,,f,0.5\n",
        )
        .unwrap();
        fs::write(dir.join("requests.csv"), "header\n").unwrap();
        let err = import_dataset(&dir, SimConfig::tiny(0)).unwrap_err();
        assert!(err.to_string().contains("bad kind"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
