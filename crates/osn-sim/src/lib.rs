//! # osn-sim — discrete-event Renren-like OSN simulator
//!
//! The paper's raw material — Renren's full social graph, friend-request
//! logs, and ground-truth Sybil labels — is proprietary. This crate
//! substitutes a mechanistic simulation of the *processes* the paper
//! identifies, so that the emergent data has the same shape:
//!
//! * **Normal users** join over time, invite acquaintances and
//!   friends-of-friends (triadic closure → clustering), respond to requests
//!   with per-user tendencies (→ the spread of Fig. 3), and accept
//!   strangers more readily the more popular/careless they are (§2.2).
//! * **Sybil accounts** are created in batches by attackers running one of
//!   the three commercial tools of Table 3. Tools snowball-sample the live
//!   graph for *popular* targets (popularity-biased, §3.4), drive bursty
//!   high-rate friend requests (Fig. 1), and accept every incoming request
//!   (Fig. 3). A small fraction of attackers intentionally interlink their
//!   own Sybils first (the vertical lines of Fig. 8).
//! * **Renren's abuse team** bans Sybils over time, truncating their
//!   pending responses (the <100% incoming-accept tail of Fig. 3).
//!
//! Because successful Sybils become popular, snowball-sampling tools
//! occasionally select *other attackers'* Sybils as targets; the target
//! always accepts, creating an **accidental Sybil edge** — the mechanism
//! behind the paper's headline finding that Sybils do not form tight-knit
//! communities.
//!
//! The simulator is a single-threaded discrete-event loop (CPU-bound, so no
//! async runtime — see the workspace design notes), fully deterministic
//! given a seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod account;
pub mod config;
pub mod distr;
pub mod engine;
pub mod events;
pub mod io;
pub mod log;
pub mod output;
pub mod profile;
pub mod request;
pub mod scale;
pub mod stream;
pub mod tools;

pub use account::{Account, AccountKind};
pub use config::{AttackerParams, NormalParams, SimConfig, SybilParams};
pub use engine::Simulator;
pub use log::RequestLog;
pub use output::SimOutput;
pub use profile::{Gender, Profile};
pub use request::{RequestOutcome, RequestRecord};
pub use scale::{generate as generate_scale, splitmix64, ScaleConfig};
pub use stream::{EpochBatches, EventDetail, EventStream, PullStream, StreamEvent, StreamEventKind};
pub use tools::{ToolKind, ToolSpec};

/// Run a full simulation from a configuration. Convenience for
/// `Simulator::new(config).run()`.
pub fn simulate(config: SimConfig) -> SimOutput {
    Simulator::new(config).run()
}

/// Run a full simulation and also return the engine's metric snapshot
/// (see [`Simulator::run_observed`]). The snapshot holds only logical
/// quantities, so it is as deterministic as the output itself.
pub fn simulate_observed(config: SimConfig) -> (SimOutput, sybil_obs::Snapshot) {
    Simulator::new(config).run_observed()
}
