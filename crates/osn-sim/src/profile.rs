//! Account profiles.
//!
//! §2.2 reports that 77.3% of ground-truth Sybils present as women (vs.
//! 46.5% of the population) and use attractive profile photos to lure
//! targets. Profiles carry the two attributes that matter to acceptance
//! decisions: gender and an abstract attractiveness score.

use serde::{Deserialize, Serialize};

/// Profile gender.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Female-presenting profile.
    Female,
    /// Male-presenting profile.
    Male,
}

impl Gender {
    /// The opposite gender.
    pub fn opposite(self) -> Gender {
        match self {
            Gender::Female => Gender::Male,
            Gender::Male => Gender::Female,
        }
    }
}

/// The profile attributes that influence friend-request acceptance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Presented gender.
    pub gender: Gender,
    /// Abstract attractiveness in `[0, 1]`: how compelling the profile
    /// photo/background looks to a stranger. Sybils skew high (§2.1: "
    /// attractive profile photos of young women or men").
    pub attractiveness: f64,
}

impl Profile {
    /// Construct a profile, clamping attractiveness into `[0, 1]`.
    pub fn new(gender: Gender, attractiveness: f64) -> Self {
        Profile {
            gender,
            attractiveness: attractiveness.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_gender() {
        assert_eq!(Gender::Female.opposite(), Gender::Male);
        assert_eq!(Gender::Male.opposite(), Gender::Female);
    }

    #[test]
    fn attractiveness_clamped() {
        assert_eq!(Profile::new(Gender::Male, 1.5).attractiveness, 1.0);
        assert_eq!(Profile::new(Gender::Male, -0.2).attractiveness, 0.0);
        assert_eq!(Profile::new(Gender::Female, 0.6).attractiveness, 0.6);
    }
}
