//! Simulation output bundle and derived summary statistics.

use crate::account::Account;
use crate::config::SimConfig;
use crate::log::RequestLog;
use osn_graph::{NodeId, TemporalGraph};
use serde::{Deserialize, Serialize};

/// Everything a simulation produces: the social graph, the ground-truth
/// account table, and the full friend-request log.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// The configuration that produced this output.
    pub config: SimConfig,
    /// Final friendship graph; node id = account index.
    pub graph: TemporalGraph,
    /// Ground-truth account table, indexed by node id.
    pub accounts: Vec<Account>,
    /// Every friend request sent during the run.
    pub log: RequestLog,
    /// Internal engine counters (targeting-channel diagnostics).
    pub engine_stats: EngineStats,
}

/// Diagnostics on how Sybil tools selected their targets — the knobs
/// behind the accidental-Sybil-edge rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Sybil requests whose target came from the snowball ("popular") queue.
    pub popular_requests: usize,
    /// Sybil requests whose target came from bulk browsing.
    pub bulk_requests: usize,
    /// Popular-queue targets that were themselves Sybils.
    pub popular_sybil_targets: usize,
    /// Bulk targets that were themselves Sybils.
    pub bulk_sybil_targets: usize,
    /// Snowball refills performed.
    pub refills: usize,
}

/// Aggregate counters summarizing a run (computed on demand).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total friend requests sent.
    pub requests: usize,
    /// Requests sent by Sybils.
    pub sybil_requests: usize,
    /// Requests that were accepted.
    pub accepted: usize,
    /// Sybil-sent requests that were accepted.
    pub sybil_accepted: usize,
    /// Total edges in the final graph.
    pub edges: usize,
    /// Edges between two Sybils ("Sybil edges", §3.2).
    pub sybil_edges: usize,
    /// Edges between a Sybil and a normal user ("attack edges").
    pub attack_edges: usize,
    /// Edges between two normal users.
    pub normal_edges: usize,
    /// Sybils banned by the end of the run.
    pub banned: usize,
}

impl SimOutput {
    /// Is account `n` ground-truth Sybil?
    #[inline]
    pub fn is_sybil(&self, n: NodeId) -> bool {
        self.accounts[n.index()].is_sybil()
    }

    /// Node ids of all Sybil accounts.
    pub fn sybil_ids(&self) -> Vec<NodeId> {
        self.ids_where(|a| a.is_sybil())
    }

    /// Node ids of all normal accounts.
    pub fn normal_ids(&self) -> Vec<NodeId> {
        self.ids_where(|a| !a.is_sybil())
    }

    fn ids_where<F: Fn(&Account) -> bool>(&self, f: F) -> Vec<NodeId> {
        self.accounts
            .iter()
            .enumerate()
            .filter(|(_, a)| f(a))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Compute aggregate counters for this run.
    pub fn stats(&self) -> SimStats {
        let mut s = SimStats::default();
        for r in self.log.records() {
            s.requests += 1;
            let from_sybil = self.is_sybil(r.from);
            if from_sybil {
                s.sybil_requests += 1;
            }
            if r.outcome.is_accepted() {
                s.accepted += 1;
                if from_sybil {
                    s.sybil_accepted += 1;
                }
            }
        }
        for e in self.graph.edges() {
            s.edges += 1;
            match (self.is_sybil(e.a), self.is_sybil(e.b)) {
                (true, true) => s.sybil_edges += 1,
                (false, false) => s.normal_edges += 1,
                _ => s.attack_edges += 1,
            }
        }
        s.banned = self
            .accounts
            .iter()
            .filter(|a| a.banned_at.is_some())
            .count();
        s
    }

    /// Fraction of Sybils with at least one edge to another Sybil — the
    /// paper's headline §3.2 number (~20%).
    pub fn sybil_connectivity_fraction(&self) -> f64 {
        let sybils = self.sybil_ids();
        if sybils.is_empty() {
            return 0.0;
        }
        let with_edge = sybils
            .iter()
            .filter(|&&s| {
                self.graph
                    .neighbors(s)
                    .iter()
                    .any(|nb| self.is_sybil(nb.node))
            })
            .count();
        with_edge as f64 / sybils.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountKind;
    use crate::profile::{Gender, Profile};
    use crate::request::{RequestOutcome, RequestRecord};
    use crate::tools::ToolKind;
    use osn_graph::Timestamp;

    fn mk_output() -> SimOutput {
        // 3 accounts: 0 normal, 1 + 2 sybils.
        let mut graph = TemporalGraph::with_nodes(3);
        graph
            .add_edge(NodeId(0), NodeId(1), Timestamp::from_hours(1))
            .unwrap();
        graph
            .add_edge(NodeId(1), NodeId(2), Timestamp::from_hours(2))
            .unwrap();
        let acct = |kind, banned| Account {
            kind,
            profile: Profile::new(Gender::Female, 0.5),
            created_at: Timestamp::ZERO,
            banned_at: banned,
            accept_tendency: 0.7,
            sociability: 1.0,
        };
        let sy = AccountKind::Sybil {
            attacker: 0,
            tool: ToolKind::MarketingAssistant,
        };
        let mut log = RequestLog::new();
        log.push(RequestRecord {
            from: NodeId(1),
            to: NodeId(0),
            sent_at: Timestamp::ZERO,
            outcome: RequestOutcome::Accepted(Timestamp::from_hours(1)),
        });
        log.push(RequestRecord {
            from: NodeId(1),
            to: NodeId(2),
            sent_at: Timestamp::from_hours(1),
            outcome: RequestOutcome::Accepted(Timestamp::from_hours(2)),
        });
        log.push(RequestRecord {
            from: NodeId(0),
            to: NodeId(2),
            sent_at: Timestamp::from_hours(2),
            outcome: RequestOutcome::Rejected(Timestamp::from_hours(3)),
        });
        SimOutput {
            config: SimConfig::tiny(0),
            graph,
            accounts: vec![
                acct(AccountKind::Normal, None),
                acct(sy, Some(Timestamp::from_hours(50))),
                acct(sy, None),
            ],
            log,
            engine_stats: EngineStats::default(),
        }
    }

    #[test]
    fn id_partitions() {
        let o = mk_output();
        assert_eq!(o.normal_ids(), vec![NodeId(0)]);
        assert_eq!(o.sybil_ids(), vec![NodeId(1), NodeId(2)]);
        assert!(o.is_sybil(NodeId(1)));
        assert!(!o.is_sybil(NodeId(0)));
    }

    #[test]
    fn stats_counts() {
        let s = mk_output().stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.sybil_requests, 2);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.sybil_accepted, 2);
        assert_eq!(s.edges, 2);
        assert_eq!(s.sybil_edges, 1);
        assert_eq!(s.attack_edges, 1);
        assert_eq!(s.normal_edges, 0);
        assert_eq!(s.banned, 1);
    }

    #[test]
    fn connectivity_fraction() {
        let o = mk_output();
        // Both sybils share the 1-2 edge -> fraction 1.0.
        assert_eq!(o.sybil_connectivity_fraction(), 1.0);
    }
}
