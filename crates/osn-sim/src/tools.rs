//! Sybil creation/management tool models (Table 3).
//!
//! The paper surveys three commercial Windows tools that create and drive
//! Sybil accounts on Renren. All three advertise snowball sampling of the
//! social graph to locate *popular* friending targets; they differ in
//! aggressiveness. We model each as a parameter bundle the attacker
//! controller executes.

use serde::{Deserialize, Serialize};

/// Which commercial tool an attacker runs (Table 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolKind {
    /// “Renren Marketing Assistant V1.0” — $37, moderate request rate,
    /// mildly popularity-biased crawling.
    MarketingAssistant,
    /// “Renren Super Node Collector V1.0” — contact author; strongly biased
    /// toward super nodes (very high degree), higher request rate.
    SuperNodeCollector,
    /// “Renren Almighty Assistant V5.8” — contact author; most aggressive
    /// bursts, supports interlinking the attacker's own Sybils ("mutual
    /// promotion"), which is the rare *intentional* Sybil-edge source.
    AlmightyAssistant,
}

/// Catalog entry + behavioral parameters for one tool.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ToolSpec {
    /// Which tool this spec describes.
    pub kind: ToolKind,
    /// Marketed name (Table 3).
    pub name: &'static str,
    /// Distribution platform (Table 3).
    pub platform: &'static str,
    /// Advertised cost (Table 3).
    pub cost: &'static str,
    /// Friend requests sent per hour while a burst is active (Fig. 1 puts
    /// Sybil rates well above 20/interval).
    pub requests_per_hour: f64,
    /// Mean requests per burst before the tool sleeps.
    pub burst_size_mean: f64,
    /// Mean hours between bursts for one Sybil.
    pub burst_gap_mean_h: f64,
    /// Popularity-bias exponent β of the snowball crawler (§3.4).
    pub degree_bias: f64,
    /// Percentile of the live degree distribution a candidate must exceed
    /// to be kept as a target ("popular users").
    pub popular_percentile: f64,
    /// Fraction of requests aimed at crawled popular targets; the rest go
    /// to uniformly-browsed ordinary users (tools mix "super node"
    /// friending with bulk friending).
    pub popular_mix: f64,
    /// Whether the tool supports deliberately interlinking the attacker's
    /// own Sybils before friending normal users.
    pub supports_interlink: bool,
}

/// Table 3 row 1.
pub const MARKETING_ASSISTANT: ToolSpec = ToolSpec {
    kind: ToolKind::MarketingAssistant,
    name: "Renren Marketing Assistant V1.0",
    platform: "Windows",
    cost: "$37",
    requests_per_hour: 180.0,
    burst_size_mean: 75.0,
    burst_gap_mean_h: 22.0,
    degree_bias: 1.0,
    popular_percentile: 0.90,
    popular_mix: 0.20,
    supports_interlink: false,
};

/// Table 3 row 2.
pub const SUPER_NODE_COLLECTOR: ToolSpec = ToolSpec {
    kind: ToolKind::SuperNodeCollector,
    name: "Renren Super Node Collector V1.0",
    platform: "Windows",
    cost: "Contact Author",
    requests_per_hour: 180.0,
    burst_size_mean: 85.0,
    burst_gap_mean_h: 18.0,
    degree_bias: 2.0,
    popular_percentile: 0.92,
    popular_mix: 0.25,
    supports_interlink: false,
};

/// Table 3 row 3.
pub const ALMIGHTY_ASSISTANT: ToolSpec = ToolSpec {
    kind: ToolKind::AlmightyAssistant,
    name: "Renren Almighty Assistant V5.8",
    platform: "Windows",
    cost: "Contact Author",
    requests_per_hour: 300.0,
    burst_size_mean: 110.0,
    burst_gap_mean_h: 14.0,
    degree_bias: 1.5,
    popular_percentile: 0.92,
    popular_mix: 0.25,
    supports_interlink: true,
};

static CATALOG: [ToolSpec; 3] = [MARKETING_ASSISTANT, SUPER_NODE_COLLECTOR, ALMIGHTY_ASSISTANT];

impl ToolKind {
    /// All tools, in Table 3 order.
    pub const ALL: [ToolKind; 3] = [
        ToolKind::MarketingAssistant,
        ToolKind::SuperNodeCollector,
        ToolKind::AlmightyAssistant,
    ];

    /// The behavioral/catalog spec for this tool.
    pub fn spec(self) -> &'static ToolSpec {
        match self {
            ToolKind::MarketingAssistant => &CATALOG[0],
            ToolKind::SuperNodeCollector => &CATALOG[1],
            ToolKind::AlmightyAssistant => &CATALOG[2],
        }
    }

    /// The full catalog (Table 3).
    pub fn catalog() -> &'static [ToolSpec] {
        &CATALOG
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table3() {
        let cat = ToolKind::catalog();
        assert_eq!(cat.len(), 3);
        assert_eq!(cat[0].name, "Renren Marketing Assistant V1.0");
        assert_eq!(cat[0].cost, "$37");
        assert_eq!(cat[1].name, "Renren Super Node Collector V1.0");
        assert_eq!(cat[2].name, "Renren Almighty Assistant V5.8");
        assert!(cat.iter().all(|t| t.platform == "Windows"));
    }

    #[test]
    fn spec_lookup_consistent() {
        for kind in ToolKind::ALL {
            assert_eq!(kind.spec().kind, kind);
        }
    }

    #[test]
    fn only_almighty_interlinks() {
        assert!(!ToolKind::MarketingAssistant.spec().supports_interlink);
        assert!(!ToolKind::SuperNodeCollector.spec().supports_interlink);
        assert!(ToolKind::AlmightyAssistant.spec().supports_interlink);
    }

    #[test]
    fn rates_exceed_sybil_threshold() {
        // Fig. 1: Sybils send > 20 invites per interval.
        for kind in ToolKind::ALL {
            assert!(kind.spec().requests_per_hour > 20.0);
        }
    }
}
