//! The discrete-event queue.
//!
//! A binary heap keyed on `(time, sequence)`; the monotonically increasing
//! sequence number makes simultaneous events pop in scheduling order, so
//! runs are fully deterministic.

use osn_graph::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A normal user wakes up and (maybe) sends friend requests.
    NormalActivity {
        /// Account index.
        user: u32,
    },
    /// A Sybil's tool runs one burst of friend requests.
    SybilBurst {
        /// Account index.
        sybil: u32,
    },
    /// A recipient answers request `request` in the log.
    Response {
        /// Index into the request log.
        request: u32,
    },
    /// An attacker's shared target queue is refilled by snowball crawling.
    AttackerRefill {
        /// Attacker index.
        attacker: u32,
    },
    /// Renren bans a Sybil.
    Ban {
        /// Account index.
        sybil: u32,
    },
}

/// Priority queue of `(time, event)` with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Timestamp, u64, EventSlot)>>,
    seq: u64,
}

// Event wrapped to give it Ord without imposing semantic ordering: events at
// equal (time, seq) never occur because seq is unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EventSlot(Event);

impl PartialOrd for EventSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventSlot {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at `time`.
    pub fn schedule(&mut self, time: Timestamp, event: Event) {
        self.heap.push(Reverse((time, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Timestamp, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_hours(5), Event::NormalActivity { user: 5 });
        q.schedule(Timestamp::from_hours(1), Event::NormalActivity { user: 1 });
        q.schedule(Timestamp::from_hours(3), Event::NormalActivity { user: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs() / 3600)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_hours(2);
        for user in 0..5 {
            q.schedule(t, Event::NormalActivity { user });
        }
        let users: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::NormalActivity { user } => user,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(users, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Timestamp::from_hours(9), Event::Ban { sybil: 0 });
        q.schedule(Timestamp::from_hours(4), Event::Ban { sybil: 1 });
        assert_eq!(q.peek_time(), Some(Timestamp::from_hours(4)));
        assert_eq!(q.len(), 2);
    }
}
