//! Property tests for the chaos engine's two headline contracts.
//!
//! 1. **Invariant**: *any* seeded fault schedule yields a report
//!    byte-identical to the fault-free `serve()` or a typed
//!    `ChaosError { epoch, shard, fault_kind }` — never silent
//!    divergence ([`ChaosOutcome::Diverged`] is never constructed).
//! 2. **Journal round-trip**: the write-ahead journal's bytes alone
//!    rebuild every shard's `realtime::state` to the digest the live
//!    run committed, at shard counts 1, 2, and 8.

use proptest::prelude::*;
use std::sync::OnceLock;
use sybil_chaos::{
    run_chaos_in_memory, verify_journal, ChaosOutcome, FaultSchedule, FaultSpec, FaultSpecKind,
};
use sybil_core::realtime::RealtimeConfig;
use sybil_core::threshold::ThresholdClassifier;
use osn_sim::{simulate, SimConfig, SimOutput};
use sybil_serve::ServeConfig;

/// Permissive adaptive detector: detections, audits, and feedback all
/// fire on tiny logs, so the journal carries every record kind and
/// crashed shards have non-trivial state to rebuild.
fn eager_detect() -> RealtimeConfig {
    RealtimeConfig {
        warmup_requests: 4,
        check_every: 1,
        trailing_window_h: 1,
        min_decided: 2,
        min_friends: 2,
        rule: ThresholdClassifier {
            max_out_ratio: 0.8,
            min_freq: 3.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        feedback_delay_h: 12,
        audit_every: 5,
    }
}

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        epoch_hours: 12,
        detect: eager_detect(),
        rotate_floor: 64,
    }
}

/// One shared simulation for the invariant sweep (the schedule, not the
/// log, is the random input there).
fn shared_sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| simulate(SimConfig::tiny(11)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant, over random seeds, shard counts, and
    /// fault densities: byte-identical or typed — never diverged, and
    /// never an unattributed error.
    #[test]
    fn any_fault_schedule_is_identical_or_typed(
        seed in any::<u64>(),
        shards_i in 0usize..3,
        count in 1usize..8,
    ) {
        let shards = [1usize, 2, 8][shards_i];
        let out = shared_sim();
        let cfg = serve_cfg(shards);
        // Target the first 20 epochs so crash replay stays cheap; the
        // schedule generator covers all five fault kinds.
        let schedule = FaultSchedule::generate(seed, 20, shards, count);
        let run = run_chaos_in_memory(out, &cfg, schedule, None);
        match run {
            Ok(r) => prop_assert!(
                r.report.outcome.invariant_holds(),
                "silent divergence: {:?}",
                r.report
            ),
            // run_chaos attributes every fault-induced error into the
            // outcome; an Err here is a genuine engine failure.
            Err(e) => prop_assert!(false, "unattributed engine error: {e}"),
        }
    }

    /// Crash faults specifically: recovery must land byte-identical
    /// (crashes are always recoverable — the write-ahead journal has the
    /// in-flight epoch by construction).
    #[test]
    fn crashes_always_recover_identical(
        epoch in 0u64..12,
        shard in 0usize..8,
        shards_i in 0usize..3,
    ) {
        let shards = [1usize, 2, 8][shards_i];
        let out = shared_sim();
        let cfg = serve_cfg(shards);
        let schedule = FaultSchedule {
            seed: 0,
            faults: vec![FaultSpec {
                epoch,
                shard: shard % shards,
                kind: FaultSpecKind::Crash,
            }],
        };
        let run = run_chaos_in_memory(out, &cfg, schedule, None)
            .map_err(|e| TestCaseError::fail(format!("engine error: {e}")))?;
        prop_assert_eq!(&run.report.outcome, &ChaosOutcome::Identical);
        prop_assert_eq!(run.report.injected.crashes, 1);
        prop_assert_eq!(run.report.epochs_replayed, epoch + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite 2: journal round-trip over varying simulations. The
    /// journal is written by a live run, the store's raw bytes are
    /// reopened cold, and every shard's state is rebuilt by replay —
    /// digests must match the live run's run-end commits at shard
    /// counts 1, 2, and 8. The digest folds all of `realtime::state`
    /// (account states, adaptive trackers, feedback queue, audit
    /// cursor), so digest equality is byte-equality of the state that
    /// matters.
    #[test]
    fn journal_round_trip_rebuilds_state(sim_seed in 0u64..1000) {
        let out = simulate(SimConfig::tiny(sim_seed));
        for shards in [1usize, 2, 8] {
            let cfg = serve_cfg(shards);
            let run = run_chaos_in_memory(
                &out,
                &cfg,
                FaultSchedule::journal_only(sim_seed),
                None,
            )
            .map_err(|e| TestCaseError::fail(format!("engine error: {e}")))?;
            prop_assert_eq!(&run.report.outcome, &ChaosOutcome::Identical);
            // The reported journal size is the handle's own accounting:
            // total length = 8-byte header + frames appended through it.
            prop_assert_eq!(run.report.journal_bytes, run.journal.len_bytes());
            prop_assert_eq!(
                run.journal.len_bytes(),
                run.journal.bytes_appended() + 8
            );
            let bytes = run.journal.into_store();
            let v = verify_journal(bytes, &out, &cfg)
                .map_err(|e| TestCaseError::fail(format!("verify error: {e}")))?;
            prop_assert!(
                v.all_match(),
                "journal replay diverged at {} shards: {:?}",
                shards,
                v
            );
            prop_assert_eq!(v.epochs, run.report.epochs);
        }
    }
}
