//! Seeded, serializable fault schedules.
//!
//! A [`FaultSchedule`] is the declarative input to the chaos engine: a
//! seed plus a list of [`FaultSpec`]s, each naming an epoch, a shard
//! (for shard-scoped faults), and a [`FaultSpecKind`]. Schedules are
//! plain serde values, so they round-trip through JSON — `repro chaos
//! --faults FILE` loads one, and every generated schedule can be dumped
//! for replay in a bug report.
//!
//! [`FaultSchedule::generate`] derives a schedule from a seed alone,
//! through the same SplitMix64 finalizer (`osn_sim::splitmix64`) the
//! scale generator uses — same seed, same faults, on every machine. The
//! draw for fault *i* never depends on earlier draws, so schedules with
//! different fault counts share a prefix.

use osn_sim::splitmix64;
use serde::{Deserialize, Serialize};

/// One kind of injected fault. Shard-scoped kinds (everything except the
/// barrier faults) apply to the `(epoch, shard)` named by the spec;
/// barrier kinds apply to the epoch as a whole and ignore the shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSpecKind {
    /// The shard's epoch result arrives late by this many logical
    /// epochs. Absorbed at the barrier: costs latency, never bytes.
    Stall {
        /// Logical epochs of delay.
        epochs: u32,
    },
    /// Clamp the shard's staging-queue capacities to this many slots,
    /// forcing an overflow when the epoch stages more effects.
    QueueClamp {
        /// Clamped capacity in queue slots.
        capacity: usize,
    },
    /// The epoch's barrier fires late. Logical delay, absorbed (the
    /// merge is all-or-nothing regardless of when it runs).
    DelayBarrier {
        /// Logical epochs of delay.
        epochs: u32,
    },
    /// Shard results reach the barrier in a seed-derived shuffled order.
    /// Must be output-neutral: the merge is keyed by shard id.
    ReorderBarrier,
    /// The shard loses its in-memory state mid-epoch; recovery replays
    /// the write-ahead journal.
    Crash,
}

impl FaultSpecKind {
    /// Whether the kind targets a single shard (vs. the whole barrier).
    pub fn shard_scoped(self) -> bool {
        !matches!(
            self,
            FaultSpecKind::DelayBarrier { .. } | FaultSpecKind::ReorderBarrier
        )
    }

    /// Short stable name for reports and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultSpecKind::Stall { .. } => "stall",
            FaultSpecKind::QueueClamp { .. } => "queue_clamp",
            FaultSpecKind::DelayBarrier { .. } => "delay_barrier",
            FaultSpecKind::ReorderBarrier => "reorder_barrier",
            FaultSpecKind::Crash => "crash",
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Epoch (0-based barrier count) the fault fires in.
    pub epoch: u64,
    /// Target shard for shard-scoped kinds; ignored by barrier kinds.
    pub shard: usize,
    /// What happens.
    pub kind: FaultSpecKind,
}

/// A seeded fault schedule: the complete chaos input for one run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The seed the schedule was derived from (0 for hand-written
    /// schedules). Also seeds the reorder permutations at run time, so
    /// a loaded schedule replays the exact shuffles it was generated
    /// with.
    pub seed: u64,
    /// The faults, sorted by `(epoch, shard)`.
    pub faults: Vec<FaultSpec>,
}

/// Domain tag separating schedule draws from every other consumer of
/// the shared SplitMix64 stream.
const DOMAIN: u64 = 0xFA17_5EED_0000_0000;

/// The `i`-th draw of the schedule stream for `seed`, uniform in
/// `[0, m)`.
fn draw(seed: u64, i: u64, m: u64) -> u64 {
    splitmix64(seed ^ DOMAIN ^ splitmix64(i)) % m.max(1)
}

impl FaultSchedule {
    /// A schedule with no faults (journal-only runs: write-ahead records
    /// and digests still flow, nothing is injected).
    pub fn journal_only(seed: u64) -> Self {
        FaultSchedule {
            seed,
            faults: Vec::new(),
        }
    }

    /// Derive `count` faults over `epochs × shards` from `seed`.
    ///
    /// Deterministic and machine-independent: fault *i* is a pure
    /// function of `(seed, i)`. Collisions on `(epoch, shard)` keep the
    /// first draw, so the realized count can be slightly below `count`
    /// on tiny grids — the report states the realized number.
    pub fn generate(seed: u64, epochs: u64, shards: usize, count: usize) -> Self {
        let mut faults: Vec<FaultSpec> = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let epoch = draw(seed, i * 4, epochs.max(1));
            let shard = draw(seed, i * 4 + 1, shards.max(1) as u64) as usize;
            let kind = match draw(seed, i * 4 + 2, 5) {
                0 => FaultSpecKind::Stall {
                    epochs: 1 + draw(seed, i * 4 + 3, 3) as u32,
                },
                1 => FaultSpecKind::QueueClamp {
                    // Tiny clamps nearly always overflow; generous ones
                    // nearly never — both arms of the invariant get
                    // exercised.
                    capacity: 1 << draw(seed, i * 4 + 3, 12),
                },
                2 => FaultSpecKind::DelayBarrier {
                    epochs: 1 + draw(seed, i * 4 + 3, 3) as u32,
                },
                3 => FaultSpecKind::ReorderBarrier,
                _ => FaultSpecKind::Crash,
            };
            faults.push(FaultSpec { epoch, shard, kind });
        }
        let mut sched = FaultSchedule { seed, faults };
        sched.normalize();
        sched
    }

    /// Sort by `(epoch, shard, kind-name)` and drop duplicate
    /// `(epoch, shard)` pairs (first kept). Called by [`generate`] and
    /// after loading a file, so the plane's index build is unambiguous.
    ///
    /// [`generate`]: FaultSchedule::generate
    pub fn normalize(&mut self) {
        self.faults
            .sort_by(|a, b| (a.epoch, a.shard, a.kind.name()).cmp(&(b.epoch, b.shard, b.kind.name())));
        let mut seen: Vec<(u64, usize)> = Vec::with_capacity(self.faults.len());
        self.faults.retain(|f| {
            let key = (f.epoch, f.shard);
            if seen.contains(&key) {
                false
            } else {
                seen.push(key);
                true
            }
        });
    }

    /// The seed-derived barrier arrival permutation for `epoch` over
    /// `shards` results: a Fisher–Yates shuffle driven by the schedule
    /// stream, so the same `(seed, epoch)` always reorders identically.
    pub fn reorder_permutation(&self, epoch: u64, shards: usize) -> Vec<usize> {
        let mut ord: Vec<usize> = (0..shards).collect();
        for i in (1..shards).rev() {
            let j = draw(self.seed, DOMAIN ^ (epoch << 16) ^ i as u64, i as u64 + 1) as usize;
            ord.swap(i, j);
        }
        ord
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_normalized() {
        let a = FaultSchedule::generate(42, 10, 8, 12);
        let b = FaultSchedule::generate(42, 10, 8, 12);
        assert_eq!(a, b);
        for w in a.faults.windows(2) {
            assert!((w[0].epoch, w[0].shard) < (w[1].epoch, w[1].shard));
        }
        let c = FaultSchedule::generate(43, 10, 8, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn json_round_trip() {
        let a = FaultSchedule::generate(7, 6, 4, 8);
        let json = serde_json::to_string(&a).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn reorder_permutation_is_a_permutation() {
        let s = FaultSchedule::journal_only(99);
        for shards in [1usize, 2, 8] {
            for epoch in 0..4u64 {
                let mut p = s.reorder_permutation(epoch, shards);
                p.sort_unstable();
                assert_eq!(p, (0..shards).collect::<Vec<_>>());
            }
        }
        assert_ne!(
            s.reorder_permutation(0, 8),
            s.reorder_permutation(1, 8),
            "epochs should shuffle differently almost surely"
        );
    }

    #[test]
    fn shard_scoped_classification() {
        assert!(FaultSpecKind::Crash.shard_scoped());
        assert!(FaultSpecKind::Stall { epochs: 1 }.shard_scoped());
        assert!(FaultSpecKind::QueueClamp { capacity: 1 }.shard_scoped());
        assert!(!FaultSpecKind::ReorderBarrier.shard_scoped());
        assert!(!FaultSpecKind::DelayBarrier { epochs: 1 }.shard_scoped());
    }
}
