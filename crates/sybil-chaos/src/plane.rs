//! [`ChaosPlane`]: the fault-injecting, journal-writing implementation
//! of `sybil-serve`'s [`FaultPlane`] trait.
//!
//! The plane is where the declarative [`FaultSchedule`] meets the
//! coordinator's hook points: schedule entries are indexed by
//! `(epoch, shard)` at construction, every hook answers from that index
//! in O(log n), and the write-ahead [`Journal`] rides the
//! `epoch_begin` / `epoch_commit` / `run_end` barrier hooks. All
//! journal failures surface as typed [`ChaosError`]s with
//! `FaultKind::Journal` — the engine's headline invariant forbids a
//! broken journal from producing a silently different answer.
//!
//! The plane also keeps the ledger the recovery report is built from:
//! how many faults of each kind were injected (tallied at `epoch_begin`,
//! so faults in an epoch that later errors are still counted), how many
//! epochs crash recovery replayed, and the total absorbed latency in
//! logical epochs.

use crate::journal::Journal;
use crate::schedule::{FaultSchedule, FaultSpecKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Seek, Write};
use sybil_serve::fault::{
    ChaosError, EpochRecord, EpochRecordRef, FaultKind, FaultPlane, ShardFault,
};

/// How many faults of each kind a run injected. Serialized into the
/// recovery report and exported as `chaos.injected.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTally {
    /// Shard-result stalls.
    pub stalls: u64,
    /// Staging-queue capacity clamps.
    pub queue_clamps: u64,
    /// Delayed epoch barriers.
    pub barrier_delays: u64,
    /// Reordered barrier arrivals.
    pub barrier_reorders: u64,
    /// Shard crashes.
    pub crashes: u64,
}

impl FaultTally {
    /// Total faults across all kinds.
    pub fn total(&self) -> u64 {
        self.stalls + self.queue_clamps + self.barrier_delays + self.barrier_reorders + self.crashes
    }
}

/// The chaos implementation of [`FaultPlane`], generic over the journal
/// store (a file, or `Cursor<Vec<u8>>` in memory).
pub struct ChaosPlane<S> {
    schedule: FaultSchedule,
    /// `(epoch, shard) → stall epochs`.
    stalls: BTreeMap<(u64, usize), u32>,
    /// `(epoch, shard) → clamped queue capacity`.
    clamps: BTreeMap<(u64, usize), usize>,
    /// Crashed `(epoch, shard)` pairs.
    crashes: BTreeSet<(u64, usize)>,
    /// `epoch → barrier delay in epochs`.
    delays: BTreeMap<u64, u32>,
    /// Epochs with shuffled barrier arrival.
    reorders: BTreeSet<u64>,
    journal: Journal<S>,
    /// Take per-shard digests every this many epochs (0 = never; the
    /// run-end digests are always taken by the engine regardless).
    digest_every: u64,
    injected: FaultTally,
    /// Epochs re-run out of the journal by crash recovery.
    epochs_replayed: u64,
    /// Digest verifications performed during replay.
    replay_digest_checks: u64,
    /// Absorbed latency: stall + barrier-delay epochs (crash replay adds
    /// `epochs_replayed` on top; see [`ChaosPlane::recovery_latency_epochs`]).
    absorbed_latency_epochs: u64,
}

/// Default digest cadence: per-shard state digests every 4th epoch.
/// Digesting is O(total state) and lands on the barrier, so this is the
/// knob behind the <5% journal-overhead acceptance gate; the run-end
/// record always carries final digests, so sparser commits only widen
/// the window between *intermediate* divergence checks (to at most 3
/// epochs), never weaken the end-state byte-identity proof.
pub const DEFAULT_DIGEST_CADENCE: u64 = 4;

impl<S: Read + Write + Seek> ChaosPlane<S> {
    /// Build a plane from a schedule and a journal, digesting every
    /// [`DEFAULT_DIGEST_CADENCE`] epochs.
    pub fn new(schedule: FaultSchedule, journal: Journal<S>) -> Self {
        Self::with_digest_cadence(schedule, journal, DEFAULT_DIGEST_CADENCE)
    }

    /// [`new`](ChaosPlane::new) with a digest cadence: per-shard state
    /// digests are journaled every `digest_every` epochs (digesting is
    /// O(total state), so long runs may want a sparser cadence).
    pub fn with_digest_cadence(
        schedule: FaultSchedule,
        journal: Journal<S>,
        digest_every: u64,
    ) -> Self {
        let mut p = ChaosPlane {
            schedule,
            stalls: BTreeMap::new(),
            clamps: BTreeMap::new(),
            crashes: BTreeSet::new(),
            delays: BTreeMap::new(),
            reorders: BTreeSet::new(),
            journal,
            digest_every,
            injected: FaultTally::default(),
            epochs_replayed: 0,
            replay_digest_checks: 0,
            absorbed_latency_epochs: 0,
        };
        for f in &p.schedule.faults {
            match f.kind {
                FaultSpecKind::Stall { epochs } => {
                    p.stalls.insert((f.epoch, f.shard), epochs);
                }
                FaultSpecKind::QueueClamp { capacity } => {
                    p.clamps.insert((f.epoch, f.shard), capacity);
                }
                FaultSpecKind::Crash => {
                    p.crashes.insert((f.epoch, f.shard));
                }
                FaultSpecKind::DelayBarrier { epochs } => {
                    p.delays.insert(f.epoch, epochs);
                }
                FaultSpecKind::ReorderBarrier => {
                    p.reorders.insert(f.epoch);
                }
            }
        }
        p
    }

    /// The schedule this plane runs.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The journal (for byte counts and post-run reads).
    pub fn journal(&self) -> &Journal<S> {
        &self.journal
    }

    /// Consume the plane, returning the journal.
    pub fn into_journal(self) -> Journal<S> {
        self.journal
    }

    /// Faults injected so far.
    pub fn injected(&self) -> FaultTally {
        self.injected
    }

    /// Epochs crash recovery re-ran out of the journal.
    pub fn epochs_replayed(&self) -> u64 {
        self.epochs_replayed
    }

    /// Digest verifications performed during replay.
    pub fn replay_digest_checks(&self) -> u64 {
        self.replay_digest_checks
    }

    /// Total recovery latency in logical epochs: absorbed stall and
    /// barrier-delay epochs, plus one epoch per journal replay.
    pub fn recovery_latency_epochs(&self) -> u64 {
        self.absorbed_latency_epochs + self.epochs_replayed
    }

    /// Whether `(epoch, shard)` has a scheduled queue clamp — used by
    /// the runner to attribute a surfaced overflow to its injected
    /// fault.
    pub fn clamp_scheduled(&self, epoch: u64, shard: usize) -> bool {
        self.clamps.contains_key(&(epoch, shard))
    }

    fn journal_err(epoch: u64) -> ChaosError {
        ChaosError {
            epoch,
            shard: None,
            fault_kind: FaultKind::Journal,
        }
    }
}

impl<S: Read + Write + Seek> FaultPlane for ChaosPlane<S> {
    fn enabled(&self) -> bool {
        true
    }

    fn epoch_begin(&mut self, rec: EpochRecordRef<'_>) -> Result<(), ChaosError> {
        // Tally this epoch's scheduled faults up front, so an epoch that
        // errors mid-flight still reports what was injected into it.
        for f in &self.schedule.faults {
            if f.epoch != rec.epoch {
                continue;
            }
            match f.kind {
                FaultSpecKind::Stall { epochs } => {
                    self.injected.stalls += 1;
                    self.absorbed_latency_epochs += u64::from(epochs);
                }
                FaultSpecKind::QueueClamp { .. } => self.injected.queue_clamps += 1,
                FaultSpecKind::DelayBarrier { epochs } => {
                    self.injected.barrier_delays += 1;
                    self.absorbed_latency_epochs += u64::from(epochs);
                }
                FaultSpecKind::ReorderBarrier => self.injected.barrier_reorders += 1,
                FaultSpecKind::Crash => self.injected.crashes += 1,
            }
        }
        self.journal
            .append_begin(rec)
            .map_err(|_| Self::journal_err(rec.epoch))
    }

    fn queue_clamp(&self, epoch: u64, shard: usize) -> Option<usize> {
        self.clamps.get(&(epoch, shard)).copied()
    }

    fn shard_fault(&self, epoch: u64, shard: usize) -> ShardFault {
        if self.crashes.contains(&(epoch, shard)) {
            ShardFault::Crash
        } else if let Some(&n) = self.stalls.get(&(epoch, shard)) {
            ShardFault::Stall(n)
        } else {
            ShardFault::Healthy
        }
    }

    fn deliver_order(&self, epoch: u64, shards: usize) -> Option<Vec<usize>> {
        self.reorders
            .contains(&epoch)
            .then(|| self.schedule.reorder_permutation(epoch, shards))
    }

    fn wants_digests(&self, epoch: u64) -> bool {
        self.digest_every != 0 && epoch.is_multiple_of(self.digest_every)
    }

    fn epoch_commit(&mut self, epoch: u64, digests: Option<&[u64]>) -> Result<(), ChaosError> {
        self.journal
            .append_commit(epoch, digests)
            .map_err(|_| Self::journal_err(epoch))
    }

    fn replay_epoch(&mut self, epoch: u64) -> Result<Option<EpochRecord>, ChaosError> {
        let rec = self
            .journal
            .read_epoch(epoch)
            .map_err(|_| Self::journal_err(epoch))?;
        if rec.is_some() {
            self.epochs_replayed += 1;
        }
        Ok(rec)
    }

    fn committed_digest(&mut self, epoch: u64, shard: usize) -> Option<u64> {
        let d = self.journal.committed_digest(epoch, shard);
        if d.is_some() {
            self.replay_digest_checks += 1;
        }
        d
    }

    fn run_end(&mut self, epochs: u64, digests: &[u64]) -> Result<(), ChaosError> {
        self.journal
            .append_end(epochs, digests)
            .map_err(|_| Self::journal_err(epochs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultSpec;
    use std::io::Cursor;

    fn plane(faults: Vec<FaultSpec>) -> ChaosPlane<Cursor<Vec<u8>>> {
        let mut schedule = FaultSchedule { seed: 1, faults };
        schedule.normalize();
        let journal = Journal::create(Cursor::new(Vec::new())).unwrap();
        ChaosPlane::new(schedule, journal)
    }

    #[test]
    fn schedule_entries_answer_the_matching_hooks() {
        let p = plane(vec![
            FaultSpec {
                epoch: 2,
                shard: 1,
                kind: FaultSpecKind::Crash,
            },
            FaultSpec {
                epoch: 3,
                shard: 0,
                kind: FaultSpecKind::Stall { epochs: 2 },
            },
            FaultSpec {
                epoch: 4,
                shard: 2,
                kind: FaultSpecKind::QueueClamp { capacity: 1 },
            },
            FaultSpec {
                epoch: 5,
                shard: 0,
                kind: FaultSpecKind::ReorderBarrier,
            },
        ]);
        assert!(p.enabled());
        assert_eq!(p.shard_fault(2, 1), ShardFault::Crash);
        assert_eq!(p.shard_fault(2, 0), ShardFault::Healthy);
        assert_eq!(p.shard_fault(3, 0), ShardFault::Stall(2));
        assert_eq!(p.queue_clamp(4, 2), Some(1));
        assert_eq!(p.queue_clamp(4, 1), None);
        assert!(p.clamp_scheduled(4, 2));
        assert!(!p.clamp_scheduled(4, 0));
        let ord = p.deliver_order(5, 4).unwrap();
        let mut sorted = ord.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(p.deliver_order(4, 4), None);
    }

    #[test]
    fn tallies_count_at_epoch_begin() {
        let mut p = plane(vec![
            FaultSpec {
                epoch: 0,
                shard: 0,
                kind: FaultSpecKind::Stall { epochs: 3 },
            },
            FaultSpec {
                epoch: 0,
                shard: 1,
                kind: FaultSpecKind::Crash,
            },
            FaultSpec {
                epoch: 9,
                shard: 0,
                kind: FaultSpecKind::Crash,
            },
        ]);
        p.epoch_begin(EpochRecordRef {
            epoch: 0,
            events: &[],
            details: &[],
            feedback: &[],
        })
        .unwrap();
        let t = p.injected();
        assert_eq!((t.stalls, t.crashes, t.total()), (1, 1, 2));
        assert_eq!(p.recovery_latency_epochs(), 3, "stall epochs absorbed");
    }
}
