//! The write-ahead epoch journal: a length-prefixed, byte-stable on-disk
//! log of everything a crashed shard needs to reconstruct its
//! `realtime::state` byte-for-byte.
//!
//! ## Format
//!
//! The journal is a header followed by frames. All integers are
//! little-endian; floats are IEEE-754 bit patterns written as `u64`.
//! There is no compression, no varints, and no platform-dependent field
//! (`usize` never appears on disk), so the byte stream is identical
//! across machines — "byte-stable" is load-bearing for the round-trip
//! proptest, which compares replayed state digests against digests
//! committed through these exact bytes.
//!
//! ```text
//! header :=  magic b"SYBJ"  version:u32 (= 1)
//! frame  :=  len:u32  tag:u8  payload[len-1]
//!
//! tag 1 (epoch begin, the write-ahead record):
//!   epoch:u64  n_events:u32  n_feedback:u32
//!   event[n_events]    := seq:u64 at_secs:u64 kind:u8 record:u32
//!                         from:u32 to:u32 accepted:u8
//!   feedback[n_feedback] := seq:u64 intra:u8 due_secs:u64
//!                           f64bits[5]:u64 truth:u8
//! tag 2 (epoch commit): epoch:u64 has_digests:u8 [n:u32 digest[n]:u64]
//! tag 3 (run end):      epochs:u64 n:u32 digest[n]:u64
//! ```
//!
//! A begin record is appended *before* the epoch's shards run; the
//! matching commit follows the barrier merge. Recovery therefore always
//! finds the in-flight epoch's inputs, and every fully-committed epoch
//! carries the per-shard state digests replay is verified against.
//!
//! [`Journal`] is generic over any `Read + Write + Seek` store: a real
//! file for `repro chaos --journal`, an in-memory `Cursor<Vec<u8>>` for
//! tests and the default CLI path. Appending maintains an in-memory
//! offset index so mid-run crash replay seeks straight to a begin
//! record; [`Journal::open`] rebuilds the same index by scanning an
//! existing byte stream, which is what proves the bytes alone suffice.

use osn_graph::Timestamp;
use osn_sim::stream::{EventDetail, StreamEvent, StreamEventKind};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use sybil_features::FeatureVector;
use sybil_serve::fault::{EpochRecord, EpochRecordRef, FeedbackRecord};

/// Journal magic: `b"SYBJ"`.
pub const MAGIC: [u8; 4] = *b"SYBJ";
/// Current format version.
pub const VERSION: u32 = 1;

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_END: u8 = 3;

/// Why a journal operation failed. Every variant is typed and carries
/// the byte offset where decoding gave up, so corruption is attributable
/// to a position, never a silent truncation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying store failed; the kind is preserved, the offset is
    /// where the journal was reading or writing.
    Io {
        /// The IO error kind reported by the store.
        kind: std::io::ErrorKind,
        /// Byte offset of the failed operation.
        offset: u64,
    },
    /// The stream does not start with the `SYBJ` magic.
    BadMagic,
    /// The header version is not one this reader understands.
    BadVersion(u32),
    /// A frame or the header ended mid-field.
    Truncated {
        /// Byte offset where the stream ran out.
        offset: u64,
    },
    /// A frame carried an unknown tag byte.
    BadTag {
        /// The offending tag.
        tag: u8,
        /// Byte offset of the frame.
        offset: u64,
    },
    /// A field held a value outside its domain (e.g. an unknown event
    /// kind discriminant).
    BadField {
        /// Byte offset of the offending field.
        offset: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { kind, offset } => {
                write!(f, "journal io error ({kind:?}) at byte {offset}")
            }
            JournalError::BadMagic => write!(f, "journal missing SYBJ magic"),
            JournalError::BadVersion(v) => write!(f, "journal version {v} unsupported"),
            JournalError::Truncated { offset } => {
                write!(f, "journal truncated at byte {offset}")
            }
            JournalError::BadTag { tag, offset } => {
                write!(f, "journal unknown frame tag {tag} at byte {offset}")
            }
            JournalError::BadField { offset } => {
                write!(f, "journal field out of domain at byte {offset}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Little-endian field encoder onto a frame buffer.
fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Little-endian field decoder over a frame payload. Positions are
/// tracked relative to `base` (the payload's offset in the stream) so
/// errors report absolute byte offsets.
struct Fields<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Fields<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Fields { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(JournalError::Truncated {
                offset: self.offset(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Encode one event + its parallel detail.
fn put_event(buf: &mut Vec<u8>, ev: &StreamEvent, det: &EventDetail) {
    put_u64(buf, ev.seq);
    put_u64(buf, ev.at.as_secs());
    let (kind, record) = match ev.kind {
        StreamEventKind::Sent(r) => (0u8, r),
        StreamEventKind::Decided(r) => (1u8, r),
    };
    put_u8(buf, kind);
    put_u32(buf, record);
    put_u32(buf, det.from);
    put_u32(buf, det.to);
    put_u8(buf, u8::from(det.accepted));
}

fn get_event(f: &mut Fields<'_>) -> Result<(StreamEvent, EventDetail), JournalError> {
    let seq = f.u64()?;
    let at = Timestamp(f.u64()?);
    let kind_off = f.offset();
    let kind_tag = f.u8()?;
    let record = f.u32()?;
    let kind = match kind_tag {
        0 => StreamEventKind::Sent(record),
        1 => StreamEventKind::Decided(record),
        _ => return Err(JournalError::BadField { offset: kind_off }),
    };
    let from = f.u32()?;
    let to = f.u32()?;
    let accepted_off = f.offset();
    let accepted = match f.u8()? {
        0 => false,
        1 => true,
        _ => {
            return Err(JournalError::BadField {
                offset: accepted_off,
            })
        }
    };
    Ok((
        StreamEvent { seq, at, kind },
        EventDetail { from, to, accepted },
    ))
}

fn put_feedback(buf: &mut Vec<u8>, fb: &FeedbackRecord) {
    put_u64(buf, fb.seq);
    put_u8(buf, fb.intra);
    put_u64(buf, fb.due.as_secs());
    for v in fb.features.as_array() {
        put_f64(buf, v);
    }
    put_u8(buf, u8::from(fb.truth));
}

fn get_feedback(f: &mut Fields<'_>) -> Result<FeedbackRecord, JournalError> {
    let seq = f.u64()?;
    let intra = f.u8()?;
    let due = Timestamp(f.u64()?);
    let features = FeatureVector {
        inv_freq_1h: f.f64()?,
        inv_freq_400h: f.f64()?,
        outgoing_accept_ratio: f.f64()?,
        incoming_accept_ratio: f.f64()?,
        clustering_coefficient: f.f64()?,
    };
    let truth_off = f.offset();
    let truth = match f.u8()? {
        0 => false,
        1 => true,
        _ => return Err(JournalError::BadField { offset: truth_off }),
    };
    Ok(FeedbackRecord {
        seq,
        intra,
        due,
        features,
        truth,
    })
}

/// The write-ahead epoch journal over any seekable byte store.
#[derive(Debug)]
pub struct Journal<S> {
    store: S,
    /// Next append offset (== stream length for a well-formed journal).
    end: u64,
    /// Total frame bytes appended by *this* handle (excludes the header
    /// and anything already present at `open`); the overhead bench reads
    /// this.
    appended: u64,
    /// Offset of each epoch's begin frame payload, by epoch.
    begins: BTreeMap<u64, u64>,
    /// Committed per-shard digests, by epoch (`None` when the commit
    /// carried no digests).
    commits: BTreeMap<u64, Option<Vec<u64>>>,
    /// Run-end record: (epochs, final per-shard digests).
    finished: Option<(u64, Vec<u64>)>,
}

impl<S: Read + Write + Seek> Journal<S> {
    /// Start a fresh journal on `store`, writing the header.
    pub fn create(mut store: S) -> Result<Self, JournalError> {
        store
            .seek(SeekFrom::Start(0))
            .and_then(|_| store.write_all(&MAGIC))
            .and_then(|_| store.write_all(&VERSION.to_le_bytes()))
            .map_err(|e| JournalError::Io {
                kind: e.kind(),
                offset: 0,
            })?;
        Ok(Journal {
            store,
            end: (MAGIC.len() + 4) as u64,
            appended: 0,
            begins: BTreeMap::new(),
            commits: BTreeMap::new(),
            finished: None,
        })
    }

    /// Open an existing journal, validating the header and scanning every
    /// frame to rebuild the offset index. This is the path that proves
    /// the byte stream alone carries recovery: nothing from the writing
    /// process survives except the bytes.
    pub fn open(mut store: S) -> Result<Self, JournalError> {
        store
            .seek(SeekFrom::Start(0))
            .map_err(|e| JournalError::Io {
                kind: e.kind(),
                offset: 0,
            })?;
        let mut header = [0u8; 8];
        read_exact_at(&mut store, &mut header, 0)?;
        if header[..4] != MAGIC {
            return Err(JournalError::BadMagic);
        }
        let mut vb = [0u8; 4];
        vb.copy_from_slice(&header[4..8]);
        let version = u32::from_le_bytes(vb);
        if version != VERSION {
            return Err(JournalError::BadVersion(version));
        }
        let mut j = Journal {
            store,
            end: 8,
            appended: 0,
            begins: BTreeMap::new(),
            commits: BTreeMap::new(),
            finished: None,
        };
        j.scan()?;
        Ok(j)
    }

    /// Scan frames from the current `end` to the end of the stream,
    /// indexing begin offsets and absorbing commit/end records.
    fn scan(&mut self) -> Result<(), JournalError> {
        loop {
            let mut lenb = [0u8; 4];
            let off = self.end;
            self.store
                .seek(SeekFrom::Start(off))
                .map_err(|e| JournalError::Io {
                    kind: e.kind(),
                    offset: off,
                })?;
            match self.store.read_exact(&mut lenb) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    // Distinguish a clean end (no more frames) from a
                    // frame cut mid-length by probing for any byte.
                    self.store
                        .seek(SeekFrom::Start(off))
                        .map_err(|e| JournalError::Io {
                            kind: e.kind(),
                            offset: off,
                        })?;
                    let mut probe = [0u8; 1];
                    return match self.store.read_exact(&mut probe) {
                        Err(pe) if pe.kind() == std::io::ErrorKind::UnexpectedEof => Ok(()),
                        _ => Err(JournalError::Truncated { offset: off }),
                    };
                }
                Err(e) => {
                    return Err(JournalError::Io {
                        kind: e.kind(),
                        offset: off,
                    })
                }
            }
            let len = u32::from_le_bytes(lenb) as usize;
            if len == 0 {
                return Err(JournalError::BadField { offset: off });
            }
            let mut frame = vec![0u8; len];
            read_exact_at(&mut self.store, &mut frame, off + 4)?;
            self.index_frame(&frame, off + 4)?;
            self.end = off + 4 + len as u64;
        }
    }

    /// Absorb one frame (tag + payload) into the index.
    fn index_frame(&mut self, frame: &[u8], base: u64) -> Result<(), JournalError> {
        let mut f = Fields::new(frame, base);
        let tag = f.u8()?;
        match tag {
            TAG_BEGIN => {
                let epoch = f.u64()?;
                // The payload body is decoded lazily by `read_epoch`;
                // only the offset is kept here.
                self.begins.insert(epoch, base);
            }
            TAG_COMMIT => {
                let epoch = f.u64()?;
                let digests = match f.u8()? {
                    0 => None,
                    _ => {
                        let n = f.u32()? as usize;
                        let mut d = Vec::with_capacity(n);
                        for _ in 0..n {
                            d.push(f.u64()?);
                        }
                        Some(d)
                    }
                };
                self.commits.insert(epoch, digests);
            }
            TAG_END => {
                let epochs = f.u64()?;
                let n = f.u32()? as usize;
                let mut d = Vec::with_capacity(n);
                for _ in 0..n {
                    d.push(f.u64()?);
                }
                self.finished = Some((epochs, d));
            }
            other => {
                return Err(JournalError::BadTag {
                    tag: other,
                    offset: base,
                })
            }
        }
        Ok(())
    }

    /// Append one frame (tag already in `payload[0]`).
    fn append(&mut self, payload: &[u8]) -> Result<u64, JournalError> {
        let off = self.end;
        let len = payload.len() as u32;
        self.store
            .seek(SeekFrom::Start(off))
            .and_then(|_| self.store.write_all(&len.to_le_bytes()))
            .and_then(|_| self.store.write_all(payload))
            .map_err(|e| JournalError::Io {
                kind: e.kind(),
                offset: off,
            })?;
        let frame_len = 4 + payload.len() as u64;
        self.end += frame_len;
        self.appended += frame_len;
        Ok(off + 4)
    }

    /// Write the epoch-begin (write-ahead) record.
    pub fn append_begin(&mut self, rec: EpochRecordRef<'_>) -> Result<(), JournalError> {
        let mut buf = Vec::with_capacity(32 + rec.events.len() * 30 + rec.feedback.len() * 58);
        put_u8(&mut buf, TAG_BEGIN);
        put_u64(&mut buf, rec.epoch);
        put_u32(&mut buf, rec.events.len() as u32);
        put_u32(&mut buf, rec.feedback.len() as u32);
        for (ev, det) in rec.events.iter().zip(rec.details.iter()) {
            put_event(&mut buf, ev, det);
        }
        for fb in rec.feedback {
            put_feedback(&mut buf, fb);
        }
        let base = self.append(&buf)?;
        self.begins.insert(rec.epoch, base);
        Ok(())
    }

    /// Write the epoch-commit record, with per-shard digests when taken.
    pub fn append_commit(
        &mut self,
        epoch: u64,
        digests: Option<&[u64]>,
    ) -> Result<(), JournalError> {
        let mut buf = Vec::with_capacity(16 + digests.map_or(0, |d| 4 + d.len() * 8));
        put_u8(&mut buf, TAG_COMMIT);
        put_u64(&mut buf, epoch);
        match digests {
            None => put_u8(&mut buf, 0),
            Some(d) => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, d.len() as u32);
                for &x in d {
                    put_u64(&mut buf, x);
                }
            }
        }
        self.append(&buf)?;
        self.commits.insert(epoch, digests.map(<[u64]>::to_vec));
        Ok(())
    }

    /// Write the run-end record with the final per-shard state digests.
    pub fn append_end(&mut self, epochs: u64, digests: &[u64]) -> Result<(), JournalError> {
        let mut buf = Vec::with_capacity(16 + digests.len() * 8);
        put_u8(&mut buf, TAG_END);
        put_u64(&mut buf, epochs);
        put_u32(&mut buf, digests.len() as u32);
        for &x in digests {
            put_u64(&mut buf, x);
        }
        self.append(&buf)?;
        self.finished = Some((epochs, digests.to_vec()));
        Ok(())
    }

    /// Decode epoch `epoch`'s begin record, or `None` if the journal has
    /// no record for it.
    pub fn read_epoch(&mut self, epoch: u64) -> Result<Option<EpochRecord>, JournalError> {
        let Some(&base) = self.begins.get(&epoch) else {
            return Ok(None);
        };
        // Re-read the frame length from just before the payload.
        let mut lenb = [0u8; 4];
        read_exact_at(&mut self.store, &mut lenb, base - 4)?;
        let len = u32::from_le_bytes(lenb) as usize;
        let mut frame = vec![0u8; len];
        read_exact_at(&mut self.store, &mut frame, base)?;
        let mut f = Fields::new(&frame, base);
        let tag = f.u8()?;
        if tag != TAG_BEGIN {
            return Err(JournalError::BadTag { tag, offset: base });
        }
        let rec_epoch = f.u64()?;
        if rec_epoch != epoch {
            return Err(JournalError::BadField { offset: base });
        }
        let n_events = f.u32()? as usize;
        let n_feedback = f.u32()? as usize;
        let mut events = Vec::with_capacity(n_events);
        let mut details = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let (ev, det) = get_event(&mut f)?;
            events.push(ev);
            details.push(det);
        }
        let mut feedback = Vec::with_capacity(n_feedback);
        for _ in 0..n_feedback {
            feedback.push(get_feedback(&mut f)?);
        }
        Ok(Some(EpochRecord {
            epoch,
            events,
            details,
            feedback,
        }))
    }

    /// Whether `epoch` has both its begin and commit records — i.e. the
    /// barrier fully landed before any crash. Warm restart replays
    /// exactly the committed tail epochs after a checkpoint; an epoch
    /// with a begin but no commit was in flight when the process died
    /// and is re-run live from the stream instead.
    pub fn committed(&self, epoch: u64) -> bool {
        self.begins.contains_key(&epoch) && self.commits.contains_key(&epoch)
    }

    /// The digest committed for `(epoch, shard)`, when one was journaled.
    pub fn committed_digest(&self, epoch: u64, shard: usize) -> Option<u64> {
        self.commits
            .get(&epoch)
            .and_then(|d| d.as_ref())
            .and_then(|d| d.get(shard).copied())
    }

    /// The run-end record, when the run completed: `(epochs, digests)`.
    pub fn finished(&self) -> Option<(u64, &[u64])> {
        self.finished.as_ref().map(|(e, d)| (*e, d.as_slice()))
    }

    /// Epochs with a begin record.
    pub fn epochs_journaled(&self) -> u64 {
        self.begins.len() as u64
    }

    /// Frame bytes appended through this handle (header excluded).
    pub fn bytes_appended(&self) -> u64 {
        self.appended
    }

    /// Total journal length in bytes, header included.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Consume the journal, returning the underlying store.
    pub fn into_store(self) -> S {
        self.store
    }
}

/// `read_exact` at an absolute offset, mapping errors to typed variants.
fn read_exact_at<S: Read + Seek>(
    store: &mut S,
    buf: &mut [u8],
    offset: u64,
) -> Result<(), JournalError> {
    store
        .seek(SeekFrom::Start(offset))
        .map_err(|e| JournalError::Io {
            kind: e.kind(),
            offset,
        })?;
    store.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => JournalError::Truncated { offset },
        kind => JournalError::Io { kind, offset },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_epoch(epoch: u64) -> EpochRecord {
        EpochRecord {
            epoch,
            events: vec![
                StreamEvent {
                    seq: 7 + epoch,
                    at: Timestamp(3600),
                    kind: StreamEventKind::Sent(4),
                },
                StreamEvent {
                    seq: 8 + epoch,
                    at: Timestamp(4000),
                    kind: StreamEventKind::Decided(4),
                },
            ],
            details: vec![
                EventDetail {
                    from: 1,
                    to: 2,
                    accepted: false,
                },
                EventDetail {
                    from: 1,
                    to: 2,
                    accepted: true,
                },
            ],
            feedback: vec![FeedbackRecord {
                seq: 5,
                intra: 1,
                due: Timestamp(9000),
                features: FeatureVector {
                    inv_freq_1h: 1.5,
                    inv_freq_400h: 0.25,
                    outgoing_accept_ratio: 0.5,
                    incoming_accept_ratio: 1.0,
                    clustering_coefficient: -0.0,
                },
                truth: true,
            }],
        }
    }

    fn write_sample() -> Vec<u8> {
        let mut j = Journal::create(Cursor::new(Vec::new())).unwrap();
        for e in 0..3u64 {
            let rec = sample_epoch(e);
            j.append_begin(EpochRecordRef {
                epoch: e,
                events: &rec.events,
                details: &rec.details,
                feedback: &rec.feedback,
            })
            .unwrap();
            j.append_commit(e, Some(&[10 + e, 20 + e])).unwrap();
        }
        j.append_end(3, &[111, 222]).unwrap();
        j.into_store().into_inner()
    }

    #[test]
    fn round_trips_epoch_records_through_bytes() {
        let bytes = write_sample();
        let mut j = Journal::open(Cursor::new(bytes)).unwrap();
        assert_eq!(j.epochs_journaled(), 3);
        for e in 0..3u64 {
            let rec = j.read_epoch(e).unwrap().unwrap();
            let want = sample_epoch(e);
            assert_eq!(rec.events, want.events);
            assert_eq!(rec.details, want.details);
            assert_eq!(rec.feedback, want.feedback);
            assert_eq!(j.committed_digest(e, 0), Some(10 + e));
            assert_eq!(j.committed_digest(e, 1), Some(20 + e));
            assert_eq!(j.committed_digest(e, 2), None);
        }
        assert!(j.read_epoch(3).unwrap().is_none());
        assert_eq!(j.finished(), Some((3, &[111u64, 222][..])));
    }

    #[test]
    fn byte_stream_is_stable() {
        // Two identical writes produce identical bytes — the format has
        // no timestamps, no platform-dependent widths, no map ordering.
        assert_eq!(write_sample(), write_sample());
    }

    #[test]
    fn truncation_is_typed_not_silent() {
        let bytes = write_sample();
        let cut = bytes.len() - 3;
        let err = Journal::open(Cursor::new(bytes[..cut].to_vec())).unwrap_err();
        assert!(matches!(err, JournalError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(
            Journal::open(Cursor::new(b"NOPE\x01\x00\x00\x00".to_vec())).unwrap_err(),
            JournalError::BadMagic
        );
        let mut bytes = write_sample();
        bytes[4] = 9;
        assert_eq!(
            Journal::open(Cursor::new(bytes)).unwrap_err(),
            JournalError::BadVersion(9)
        );
    }
}
