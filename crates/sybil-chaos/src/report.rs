//! The deterministic recovery report a chaos run emits.
//!
//! Everything in a [`RecoveryReport`] is a pure function of
//! `(simulation, serve config, fault schedule)` — counts of faults
//! injected, epochs replayed, journal bytes, recovery latency in
//! *logical* epochs (never wall time), and the run's outcome. Two runs
//! of `repro chaos --seed N` therefore serialize to identical JSON,
//! which is what lets verify.sh diff a recovery report in CI.

use crate::plane::FaultTally;
use serde::{Deserialize, Serialize};
use sybil_serve::fault::ChaosError;

/// How a chaos run ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosOutcome {
    /// The run completed and its report was byte-identical to the
    /// fault-free run's — every injected fault was absorbed or
    /// recovered.
    Identical,
    /// The run surfaced a typed, attributed fault.
    Fault {
        /// Epoch the fault surfaced in.
        epoch: u64,
        /// Affected shard, when shard-scoped.
        shard: Option<u64>,
        /// The fault kind's stable name (`FaultKind`'s display form).
        kind: String,
    },
    /// The run completed but its bytes differ from the fault-free
    /// run's. This outcome existing in the enum is what the headline
    /// invariant forbids ever constructing — the proptest asserts it.
    Diverged,
}

impl ChaosOutcome {
    /// Build the fault outcome from an engine error.
    pub fn from_error(e: ChaosError) -> Self {
        ChaosOutcome::Fault {
            epoch: e.epoch,
            shard: e.shard.map(|s| s as u64),
            kind: e.fault_kind.to_string(),
        }
    }

    /// Whether the invariant held: identical bytes or a typed fault.
    pub fn invariant_holds(&self) -> bool {
        !matches!(self, ChaosOutcome::Diverged)
    }
}

/// The deterministic summary of one chaos run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Schedule seed.
    pub seed: u64,
    /// Shard count the run used.
    pub shards: u64,
    /// Epochs the run processed (journaled begin records).
    pub epochs: u64,
    /// Faults in the schedule (some may target epochs past the end of
    /// the stream and never fire).
    pub faults_scheduled: u64,
    /// Faults actually injected, by kind.
    pub injected: FaultTally,
    /// Epochs crash recovery re-ran out of the write-ahead journal.
    pub epochs_replayed: u64,
    /// Replayed states verified against committed digests.
    pub replay_digest_checks: u64,
    /// Total recovery latency in logical epochs: absorbed stalls and
    /// barrier delays plus one epoch per journal replay.
    pub recovery_latency_epochs: u64,
    /// Write-ahead journal size in bytes (header included).
    pub journal_bytes: u64,
    /// How the run ended.
    pub outcome: ChaosOutcome,
}

impl RecoveryReport {
    /// Export the report's counters into a metrics registry under
    /// `chaos.*` keys.
    pub fn export(&self, reg: &mut sybil_obs::Registry) {
        let pairs: [(&str, u64); 11] = [
            ("chaos.epochs", self.epochs),
            ("chaos.faults_scheduled", self.faults_scheduled),
            ("chaos.injected.stalls", self.injected.stalls),
            ("chaos.injected.queue_clamps", self.injected.queue_clamps),
            ("chaos.injected.barrier_delays", self.injected.barrier_delays),
            (
                "chaos.injected.barrier_reorders",
                self.injected.barrier_reorders,
            ),
            ("chaos.injected.crashes", self.injected.crashes),
            ("chaos.epochs_replayed", self.epochs_replayed),
            ("chaos.replay_digest_checks", self.replay_digest_checks),
            (
                "chaos.recovery_latency_epochs",
                self.recovery_latency_epochs,
            ),
            ("chaos.journal_bytes", self.journal_bytes),
        ];
        for (name, v) in pairs {
            let id = reg.counter(name);
            reg.add(id, v);
        }
        let id = reg.counter("chaos.recovered_identical");
        reg.add(id, u64::from(self.outcome == ChaosOutcome::Identical));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_serve::fault::FaultKind;

    #[test]
    fn outcome_from_error_keeps_attribution() {
        let o = ChaosOutcome::from_error(ChaosError {
            epoch: 6,
            shard: Some(3),
            fault_kind: FaultKind::QueueOverflow,
        });
        assert_eq!(
            o,
            ChaosOutcome::Fault {
                epoch: 6,
                shard: Some(3),
                kind: "queue-overflow".into(),
            }
        );
        assert!(o.invariant_holds());
        assert!(!ChaosOutcome::Diverged.invariant_holds());
    }

    #[test]
    fn report_serializes_and_exports() {
        let rep = RecoveryReport {
            seed: 9,
            shards: 4,
            epochs: 12,
            faults_scheduled: 3,
            injected: FaultTally {
                crashes: 1,
                stalls: 2,
                ..FaultTally::default()
            },
            epochs_replayed: 5,
            replay_digest_checks: 4,
            recovery_latency_epochs: 7,
            journal_bytes: 4096,
            outcome: ChaosOutcome::Identical,
        };
        let json = serde_json::to_string(&rep).unwrap();
        let back: RecoveryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);

        let mut reg = sybil_obs::Registry::new();
        rep.export(&mut reg);
        let snap = reg.snapshot();
        let as_u64 = |k: &str| match snap.logical.get(k) {
            Some(sybil_obs::MetricValue::Count(v)) => *v,
            other => panic!("missing counter {k}: {other:?}"),
        };
        assert_eq!(as_u64("chaos.epochs_replayed"), 5);
        assert_eq!(as_u64("chaos.injected.crashes"), 1);
        assert_eq!(as_u64("chaos.recovered_identical"), 1);
    }
}
