//! # sybil-chaos — deterministic fault injection and crash recovery
//!
//! The serving engine's headline claim is byte-identity with the
//! sequential replay; this crate is the apparatus that *attacks* that
//! claim on purpose. A seeded, serializable [`FaultSchedule`] injects
//! shard stalls, staging-queue overflow, delayed and reordered epoch
//! barriers, and mid-stream shard crashes into an unmodified
//! `sybil_serve` coordinator, through the [`FaultPlane`] hooks it
//! already consults. A write-ahead [`Journal`] records every epoch's
//! full input at barrier time, so a crashed shard is rebuilt to
//! byte-identical `realtime::state` by replaying the journal.
//!
//! The contract, enforced by [`run_chaos`] and the headline proptest:
//! **any** fault schedule yields either a report byte-identical to the
//! fault-free run ([`ServeSession`](sybil_serve::ServeSession) with no
//! plane) or a typed [`ChaosError`](sybil_serve::fault::ChaosError)
//! naming the epoch, shard, and fault kind — never silent divergence. The
//! [`RecoveryReport`] a run emits (faults injected, epochs replayed,
//! recovery latency in logical epochs, journal bytes) is itself a pure
//! function of `(simulation, config, schedule)`, so `repro chaos --seed
//! N` prints the same bytes every run.
//!
//! Everything is deterministic by construction: schedules derive from
//! `osn_sim::splitmix64`, the journal format is little-endian and
//! platform-width-free, and no wall clock is read anywhere.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod journal;
pub mod plane;
pub mod report;
pub mod schedule;

pub use journal::{Journal, JournalError};
pub use plane::{ChaosPlane, FaultTally};
pub use report::{ChaosOutcome, RecoveryReport};
pub use schedule::{FaultSchedule, FaultSpec, FaultSpecKind};

use osn_sim::SimOutput;
use std::io::{Cursor, Read, Seek, Write};
use sybil_serve::fault::{ChaosError, FaultKind};
use sybil_serve::{ServeConfig, ServeError, ServeSession};

/// Outputs of one chaos run: the deterministic report plus the journal
/// (handed back so callers can persist or re-verify it).
pub struct ChaosRun<S> {
    /// The deterministic recovery report.
    pub report: RecoveryReport,
    /// Serialized fault-free baseline (`serve` with no plane).
    pub baseline_json: String,
    /// Serialized chaos-run report when the run completed (`None` when
    /// it surfaced a typed fault).
    pub chaos_json: Option<String>,
    /// The write-ahead journal, positioned at end-of-log.
    pub journal: Journal<S>,
}

fn journal_chaos_err() -> ServeError {
    ServeError::Chaos(ChaosError {
        epoch: 0,
        shard: None,
        fault_kind: FaultKind::Journal,
    })
}

/// Run `schedule` against `out` and compare byte-for-byte with the
/// fault-free run.
///
/// The fault-free oracle runs first (a bare session, no plane, no
/// journal); the chaos run follows with a [`ChaosPlane`] journaling
/// into `store`. A surfaced [`ServeError::QueueOverflow`] whose
/// `(epoch, shard)` site matches a scheduled
/// [`QueueClamp`](FaultSpecKind::QueueClamp) is *attributed* — rewritten
/// to a typed [`ChaosOutcome::Fault`] — while an overflow at an
/// un-clamped site is a genuine engine bug and propagates as the error
/// it is. Errors unrelated to injected faults (e.g. a bad config)
/// propagate unchanged from either run.
pub fn run_chaos<S: Read + Write + Seek>(
    out: &SimOutput,
    cfg: &ServeConfig,
    schedule: FaultSchedule,
    store: S,
    mut obs: Option<&mut sybil_obs::Registry>,
) -> Result<ChaosRun<S>, ServeError> {
    let baseline = ServeSession::new(*cfg).run(out)?.report;
    // The vendored serde_json never fails on derived Serialize values;
    // degrade to an empty string rather than panic if it ever does.
    let baseline_json = serde_json::to_string(&baseline).unwrap_or_default();

    let journal = Journal::create(store).map_err(|_| journal_chaos_err())?;
    let faults_scheduled = schedule.faults.len() as u64;
    let seed = schedule.seed;
    let mut plane = ChaosPlane::new(schedule, journal);
    // With a registry, the chaos run's shard tallies land under the
    // same keys as `serve_observed` — comparable against fault-free.
    let result = match obs {
        Some(ref mut reg) => ServeSession::new(*cfg)
            .metrics(reg)
            .plane(&mut plane)
            .run(out),
        None => ServeSession::new(*cfg).plane(&mut plane).run(out),
    }
    .map(|o| o.report);

    let (outcome, chaos_json) = match result {
        Ok(report) => {
            let json = serde_json::to_string(&report).unwrap_or_default();
            if json == baseline_json {
                (ChaosOutcome::Identical, Some(json))
            } else {
                (ChaosOutcome::Diverged, Some(json))
            }
        }
        Err(ServeError::Chaos(c)) => (ChaosOutcome::from_error(c), None),
        Err(ServeError::QueueOverflow(q)) => {
            let attributed = q.site.filter(|s| plane.clamp_scheduled(s.epoch, s.shard));
            match attributed {
                Some(site) => (
                    ChaosOutcome::from_error(ChaosError {
                        epoch: site.epoch,
                        shard: Some(site.shard),
                        fault_kind: FaultKind::QueueOverflow,
                    }),
                    None,
                ),
                None => return Err(ServeError::QueueOverflow(q)),
            }
        }
        Err(e) => return Err(e),
    };

    let shards = plane
        .journal()
        .finished()
        .map(|(_, d)| d.len() as u64)
        .unwrap_or_else(|| resolved_shards(cfg) as u64);
    let report = RecoveryReport {
        seed,
        shards,
        epochs: plane.journal().epochs_journaled(),
        faults_scheduled,
        injected: plane.injected(),
        epochs_replayed: plane.epochs_replayed(),
        replay_digest_checks: plane.replay_digest_checks(),
        recovery_latency_epochs: plane.recovery_latency_epochs(),
        journal_bytes: plane.journal().len_bytes(),
        outcome,
    };
    if let Some(reg) = obs {
        report.export(reg);
    }
    Ok(ChaosRun {
        report,
        baseline_json,
        chaos_json,
        journal: plane.into_journal(),
    })
}

/// [`run_chaos`] with an in-memory journal — the default for tests and
/// for `repro chaos` without `--journal`.
pub fn run_chaos_in_memory(
    out: &SimOutput,
    cfg: &ServeConfig,
    schedule: FaultSchedule,
    obs: Option<&mut sybil_obs::Registry>,
) -> Result<ChaosRun<Cursor<Vec<u8>>>, ServeError> {
    run_chaos(out, cfg, schedule, Cursor::new(Vec::new()), obs)
}

/// Per-shard result of re-deriving state from journal bytes alone.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct JournalVerification {
    /// Epochs the journal records.
    pub epochs: u64,
    /// Digest of each shard's replayed state.
    pub replayed: Vec<u64>,
    /// Digest each shard committed at the live run's end.
    pub committed: Vec<u64>,
}

impl JournalVerification {
    /// Whether every shard replayed to its committed digest.
    pub fn all_match(&self) -> bool {
        self.replayed == self.committed
    }
}

/// Open a journal byte store and prove it alone reconstructs the live
/// run's final state: replay every shard through a fresh
/// [`ChaosPlane`] (no faults) and compare digests against the run-end
/// record. A journal without a run-end record (the run died before
/// finishing) is a typed [`FaultKind::Journal`] error.
pub fn verify_journal<S: Read + Write + Seek>(
    store: S,
    out: &SimOutput,
    cfg: &ServeConfig,
) -> Result<JournalVerification, ServeError> {
    let journal = Journal::open(store).map_err(|_| journal_chaos_err())?;
    let Some((epochs, committed)) = journal.finished().map(|(e, d)| (e, d.to_vec())) else {
        return Err(journal_chaos_err());
    };
    let shards = committed.len();
    let replay_cfg = ServeConfig {
        shards,
        ..*cfg
    };
    let mut plane = ChaosPlane::new(FaultSchedule::journal_only(0), journal);
    let mut replayed = Vec::with_capacity(shards);
    for sid in 0..shards {
        replayed.push(sybil_serve::replay_shard(&mut plane, sid, out, &replay_cfg)?);
    }
    Ok(JournalVerification {
        epochs,
        replayed,
        committed,
    })
}

/// The shard count `cfg` resolves to, mirroring the engine's rule
/// (`0` = ambient thread count).
pub fn resolved_shards(cfg: &ServeConfig) -> usize {
    if cfg.shards == 0 {
        osn_graph::par::num_threads()
    } else {
        cfg.shards
    }
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::SimConfig;
    use sybil_core::realtime::RealtimeConfig;
    use sybil_core::threshold::ThresholdClassifier;

    fn small_sim() -> SimOutput {
        osn_sim::simulate(SimConfig::tiny(11))
    }

    /// Permissive adaptive detector so detections, audits, and feedback
    /// all fire on a tiny log — faults then have real state to threaten.
    fn serve_cfg(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            epoch_hours: 12,
            detect: RealtimeConfig {
                warmup_requests: 4,
                check_every: 1,
                trailing_window_h: 1,
                min_decided: 2,
                min_friends: 2,
                rule: ThresholdClassifier {
                    max_out_ratio: 0.8,
                    min_freq: 3.0,
                    max_cc: f64::INFINITY,
                },
                adaptive: true,
                feedback_delay_h: 12,
                audit_every: 5,
            },
            rotate_floor: 64,
        }
    }

    #[test]
    fn journal_only_run_is_identical_and_verifiable() {
        let out = small_sim();
        let cfg = serve_cfg(2);
        let run =
            run_chaos_in_memory(&out, &cfg, FaultSchedule::journal_only(3), None).unwrap();
        assert_eq!(run.report.outcome, ChaosOutcome::Identical);
        assert_eq!(run.report.injected.total(), 0);
        assert!(run.report.epochs > 0);
        assert!(run.report.journal_bytes > 8);

        // The journal bytes alone rebuild every shard's final state.
        let bytes = run.journal.into_store();
        let v = verify_journal(bytes, &out, &cfg).unwrap();
        assert_eq!(v.epochs, run.report.epochs);
        assert!(v.all_match(), "{v:?}");
    }

    #[test]
    fn crash_mid_stream_recovers_byte_identical() {
        let out = small_sim();
        let cfg = serve_cfg(2);
        let schedule = FaultSchedule {
            seed: 5,
            faults: vec![FaultSpec {
                epoch: 2,
                shard: 1,
                kind: FaultSpecKind::Crash,
            }],
        };
        let run = run_chaos_in_memory(&out, &cfg, schedule, None).unwrap();
        assert_eq!(run.report.outcome, ChaosOutcome::Identical, "{:?}", run.report);
        assert_eq!(run.report.injected.crashes, 1);
        assert_eq!(run.report.epochs_replayed, 3, "epochs 0..=2 replayed");
        // Of the replayed epochs only epoch 0 falls on the default
        // digest cadence, so exactly that commit is digest-checked.
        assert!(run.report.replay_digest_checks >= 1);
        assert!(run.report.recovery_latency_epochs >= 3);
    }

    #[test]
    fn tight_clamp_surfaces_attributed_overflow() {
        let out = small_sim();
        let cfg = serve_cfg(2);
        let schedule = FaultSchedule {
            seed: 7,
            faults: vec![FaultSpec {
                epoch: 0,
                shard: 0,
                kind: FaultSpecKind::QueueClamp { capacity: 1 },
            }],
        };
        let run = run_chaos_in_memory(&out, &cfg, schedule, None).unwrap();
        match &run.report.outcome {
            ChaosOutcome::Fault { epoch, shard, kind } => {
                assert_eq!((*epoch, *shard), (0, Some(0)));
                assert_eq!(kind, "queue-overflow");
            }
            // A 1-slot queue could in principle suffice for a quiet
            // shard; identical output is the other legal outcome.
            ChaosOutcome::Identical => {}
            other => panic!("invariant violated: {other:?}"),
        }
    }

    #[test]
    fn reorder_and_stall_are_output_neutral() {
        let out = small_sim();
        let cfg = serve_cfg(4);
        let schedule = FaultSchedule {
            seed: 13,
            faults: vec![
                FaultSpec {
                    epoch: 0,
                    shard: 0,
                    kind: FaultSpecKind::ReorderBarrier,
                },
                FaultSpec {
                    epoch: 1,
                    shard: 2,
                    kind: FaultSpecKind::Stall { epochs: 2 },
                },
                FaultSpec {
                    epoch: 1,
                    shard: 0,
                    kind: FaultSpecKind::DelayBarrier { epochs: 1 },
                },
            ],
        };
        let run = run_chaos_in_memory(&out, &cfg, schedule, None).unwrap();
        assert_eq!(run.report.outcome, ChaosOutcome::Identical, "{:?}", run.report);
        assert_eq!(run.report.injected.barrier_reorders, 1);
        assert_eq!(run.report.injected.stalls, 1);
        assert_eq!(run.report.recovery_latency_epochs, 3, "2 stall + 1 delay");
    }
}
