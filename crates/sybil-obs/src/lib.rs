//! Deterministic observability for the renren-sybils workspace.
//!
//! The workspace's north star is bit-identical output at every thread and
//! shard count, and that contract extends to metrics: a counter of
//! "detections made" must not depend on how many workers made them. This
//! crate therefore splits every quantity into one of three sections of a
//! [`Snapshot`]:
//!
//! * **logical** — counts, high-water marks, and histograms of *events
//!   that happen*, independent of scheduling. These are covered by the
//!   same determinism guarantee as the reports themselves: byte-identical
//!   JSON across `RENREN_THREADS` and shard counts (enforced by
//!   `scripts/verify.sh`).
//! * **sharded** — per-shard quantities (queue high-water marks, busy
//!   counters) keyed `shard{N}.{name}`. Deterministic for a *fixed* shard
//!   count but intentionally excluded from the cross-shard-count identity
//!   check, since the partition itself changes.
//! * **wall** — span timings fed from an *injected* clock
//!   ([`Clock`]). Library code never reads a wall clock (lint rule D002);
//!   callers that may (the `repro` binary, benches) pass one in. Wall
//!   quantities are explicitly nondeterministic and live in their own
//!   section so the logical sections stay comparable.
//!
//! The registry is handle-based: instruments are created (or looked up)
//! by name once, then updated through copy-able ids on the hot path —
//! an array index and an integer add, cheap enough to leave on
//! permanently (the `obs_overhead` bench holds the serve critical path to
//! <5% overhead with metrics enabled).
//!
//! Merging follows the serve engine's barrier design: each worker
//! accumulates privately, and the coordinator absorbs per-worker
//! snapshots *in shard-id order* at the epoch barrier, so the merged
//! totals are a deterministic fold regardless of which worker finished
//! first.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::Serialize;
use std::collections::BTreeMap;

/// An injected monotonic-seconds source. Library code takes `Clock` where
/// it wants wall timings; only clock-exempt binaries construct the real
/// one (e.g. `let epoch = Instant::now(); let clock = move ||
/// epoch.elapsed().as_secs_f64();`).
pub type Clock<'a> = &'a (dyn Fn() -> f64 + Sync);

/// Handle to a monotonically increasing counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a high-water-mark gauge (`observe` keeps the max).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Handle to a wall-clock span accumulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

/// Which section of the snapshot a logical instrument lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Logical,
    Sharded,
}

/// One logical metric's exported value.
///
/// `Count` is an additive total, `Max` a high-water mark, `Hist` a
/// `(total_observations, bucket_counts)` pair. The merge rules in
/// [`Snapshot::absorb`] follow directly from the variant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum MetricValue {
    /// Additive event count.
    Count(u64),
    /// High-water mark; merges by `max`.
    Max(u64),
    /// Fixed-bucket histogram: total observations + per-bucket counts.
    Hist(u64, Vec<u64>),
}

/// One wall-clock span's exported value (seconds from the injected
/// clock). Nondeterministic by nature; never part of identity checks.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SpanValue {
    /// How many times the span was recorded.
    pub count: u64,
    /// Sum of recorded durations, in seconds.
    pub total_s: f64,
    /// Longest single recording, in seconds.
    pub max_s: f64,
}

impl SpanValue {
    fn zero() -> Self {
        SpanValue {
            count: 0,
            total_s: 0.0,
            max_s: 0.0,
        }
    }

    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_s += seconds;
        if seconds > self.max_s {
            self.max_s = seconds;
        }
    }
}

struct Counter {
    name: String,
    section: Section,
    value: u64,
}

struct Gauge {
    name: String,
    section: Section,
    value: u64,
}

struct Histogram {
    name: String,
    /// Width of each bucket; observation `v` lands in bucket
    /// `min(v / width, buckets - 1)` (the last bucket is open-ended).
    width: u64,
    total: u64,
    buckets: Vec<u64>,
}

struct Span {
    name: String,
    value: SpanValue,
}

/// The metric registry: create instruments by name, update them through
/// handles, export a [`Snapshot`].
///
/// Names are unique per registry across *all* instrument kinds — asking
/// for a counter named like an existing gauge is a caller bug and
/// panics, because silently exporting two metrics under one key would
/// corrupt the snapshot.
#[derive(Default)]
pub struct Registry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<Histogram>,
    spans: Vec<Span>,
    /// name -> (kind tag, index). Kind tags: 0 counter, 1 gauge, 2 hist,
    /// 3 span.
    index: BTreeMap<String, (u8, usize)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn claim(&mut self, name: &str, kind: u8) -> Option<usize> {
        match self.index.get(name) {
            Some(&(k, i)) => {
                assert!(
                    k == kind,
                    "metric name {name:?} already registered as a different kind"
                );
                Some(i)
            }
            None => None,
        }
    }

    /// Get or create the counter `name` in the logical section.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counter_in(name, Section::Logical)
    }

    fn counter_in(&mut self, name: &str, section: Section) -> CounterId {
        if let Some(i) = self.claim(name, 0) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push(Counter {
            name: name.to_string(),
            section,
            value: 0,
        });
        self.index.insert(name.to_string(), (0, i));
        CounterId(i)
    }

    /// Get or create the high-water gauge `name` in the logical section.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauge_in(name, Section::Logical)
    }

    fn gauge_in(&mut self, name: &str, section: Section) -> GaugeId {
        if let Some(i) = self.claim(name, 1) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauges.push(Gauge {
            name: name.to_string(),
            section,
            value: 0,
        });
        self.index.insert(name.to_string(), (1, i));
        GaugeId(i)
    }

    /// Get or create a logical histogram with `buckets` buckets of
    /// `width` each (last bucket open-ended). `width` and `buckets` must
    /// be nonzero.
    pub fn histogram(&mut self, name: &str, width: u64, buckets: usize) -> HistId {
        assert!(width > 0 && buckets > 0, "histogram shape must be nonzero");
        if let Some(i) = self.claim(name, 2) {
            assert!(
                self.hists[i].width == width && self.hists[i].buckets.len() == buckets,
                "histogram {name:?} re-registered with a different shape"
            );
            return HistId(i);
        }
        let i = self.hists.len();
        self.hists.push(Histogram {
            name: name.to_string(),
            width,
            total: 0,
            buckets: vec![0; buckets],
        });
        self.index.insert(name.to_string(), (2, i));
        HistId(i)
    }

    /// Get or create the wall span `name`.
    pub fn span(&mut self, name: &str) -> SpanId {
        if let Some(i) = self.claim(name, 3) {
            return SpanId(i);
        }
        let i = self.spans.len();
        self.spans.push(Span {
            name: name.to_string(),
            value: SpanValue::zero(),
        });
        self.index.insert(name.to_string(), (3, i));
        SpanId(i)
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Raise a gauge's high-water mark to at least `v`.
    #[inline]
    pub fn observe_max(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0];
        if v > g.value {
            g.value = v;
        }
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        let h = &mut self.hists[id.0];
        let idx = ((v / h.width) as usize).min(h.buckets.len() - 1);
        h.total += 1;
        h.buckets[idx] += 1;
    }

    /// Record a span duration in seconds (caller computes it from an
    /// injected [`Clock`]).
    #[inline]
    pub fn record_span(&mut self, id: SpanId, seconds: f64) {
        self.spans[id.0].value.record(seconds);
    }

    /// Fold an already-aggregated set of recordings into a span. Hot
    /// loops that accumulate privately (plain fields, no registry lookup)
    /// import their totals through this at the end.
    pub fn record_span_agg(&mut self, id: SpanId, count: u64, total_s: f64, max_s: f64) {
        let v = &mut self.spans[id.0].value;
        v.count += count;
        v.total_s += total_s;
        if max_s > v.max_s {
            v.max_s = max_s;
        }
    }

    /// Add `n` to the *sharded-section* counter `shard{shard}.{name}`.
    /// Sharded metrics are deterministic for a fixed shard count but are
    /// excluded from cross-shard-count identity checks.
    pub fn add_sharded(&mut self, shard: usize, name: &str, n: u64) {
        let id = self.counter_in(&format!("shard{shard}.{name}"), Section::Sharded);
        self.add(id, n);
    }

    /// Raise the *sharded-section* gauge `shard{shard}.{name}` to at
    /// least `v`.
    pub fn max_sharded(&mut self, shard: usize, name: &str, v: u64) {
        let id = self.gauge_in(&format!("shard{shard}.{name}"), Section::Sharded);
        self.observe_max(id, v);
    }

    /// Export the registry's current state as an ordered snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for c in &self.counters {
            let dst = match c.section {
                Section::Logical => &mut snap.logical,
                Section::Sharded => &mut snap.sharded,
            };
            dst.insert(c.name.clone(), MetricValue::Count(c.value));
        }
        for g in &self.gauges {
            let dst = match g.section {
                Section::Logical => &mut snap.logical,
                Section::Sharded => &mut snap.sharded,
            };
            dst.insert(g.name.clone(), MetricValue::Max(g.value));
        }
        for h in &self.hists {
            snap.logical
                .insert(h.name.clone(), MetricValue::Hist(h.total, h.buckets.clone()));
        }
        for s in &self.spans {
            snap.wall.insert(s.name.clone(), s.value.clone());
        }
        snap
    }
}

/// A point-in-time export of a [`Registry`]: three `BTreeMap`s so the
/// serialized JSON is key-ordered and byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Snapshot {
    /// Scheduling-independent quantities; the determinism contract covers
    /// this section byte-for-byte.
    pub logical: BTreeMap<String, MetricValue>,
    /// Per-shard quantities (`shard{N}.{name}`); deterministic only for a
    /// fixed shard count.
    pub sharded: BTreeMap<String, MetricValue>,
    /// Injected-clock timings; explicitly nondeterministic.
    pub wall: BTreeMap<String, SpanValue>,
}

impl Snapshot {
    /// A copy with every key rewritten to `{prefix}.{key}`, so snapshots
    /// from different subsystems compose into one namespace.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        fn rekey<V: Clone>(src: &BTreeMap<String, V>, prefix: &str) -> BTreeMap<String, V> {
            src.iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), v.clone()))
                .collect()
        }
        Snapshot {
            logical: rekey(&self.logical, prefix),
            sharded: rekey(&self.sharded, prefix),
            wall: rekey(&self.wall, prefix),
        }
    }

    /// Merge `other` into `self`: `Count`s add, `Max`es max, `Hist`s add
    /// bucketwise, spans combine. Mixing kinds (or histogram shapes)
    /// under one key is a caller bug and panics. Because every merge rule
    /// is commutative and associative *and* callers absorb in a fixed
    /// order (shard-id order at epoch barriers), the merged snapshot is
    /// deterministic.
    pub fn absorb(&mut self, other: &Snapshot) {
        fn merge_metrics(dst: &mut BTreeMap<String, MetricValue>, src: &BTreeMap<String, MetricValue>) {
            for (k, v) in src {
                match dst.entry(k.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(v.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        match (e.get_mut(), v) {
                            (MetricValue::Count(a), MetricValue::Count(b)) => *a += b,
                            (MetricValue::Max(a), MetricValue::Max(b)) => *a = (*a).max(*b),
                            (MetricValue::Hist(at, ab), MetricValue::Hist(bt, bb)) => {
                                assert!(
                                    ab.len() == bb.len(),
                                    "histogram {k:?} merged across different shapes"
                                );
                                *at += bt;
                                for (x, y) in ab.iter_mut().zip(bb) {
                                    *x += y;
                                }
                            }
                            _ => panic!("metric {k:?} merged across different kinds"),
                        }
                    }
                }
            }
        }
        merge_metrics(&mut self.logical, &other.logical);
        merge_metrics(&mut self.sharded, &other.sharded);
        for (k, v) in &other.wall {
            let slot = self.wall.entry(k.clone()).or_insert_with(SpanValue::zero);
            slot.count += v.count;
            slot.total_s += v.total_s;
            if v.max_s > slot.max_s {
                slot.max_s = v.max_s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut reg = Registry::new();
        let c = reg.counter("events");
        let g = reg.gauge("queue_hwm");
        reg.add(c, 3);
        reg.incr(c);
        reg.observe_max(g, 7);
        reg.observe_max(g, 5);
        let snap = reg.snapshot();
        assert_eq!(snap.logical["events"], MetricValue::Count(4));
        assert_eq!(snap.logical["queue_hwm"], MetricValue::Max(7));
        assert!(snap.sharded.is_empty());
        assert!(snap.wall.is_empty());
    }

    #[test]
    fn handles_are_stable_across_reregistration() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.incr(a);
        reg.incr(b);
        assert_eq!(reg.snapshot().logical["x"], MetricValue::Count(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn name_reuse_across_kinds_panics() {
        let mut reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_including_open_tail() {
        let mut reg = Registry::new();
        let h = reg.histogram("lat", 10, 3); // [0,10) [10,20) [20,∞)
        for v in [0, 9, 10, 19, 20, 500] {
            reg.observe(h, v);
        }
        assert_eq!(
            reg.snapshot().logical["lat"],
            MetricValue::Hist(6, vec![2, 2, 2])
        );
    }

    #[test]
    fn sharded_metrics_land_in_their_own_section() {
        let mut reg = Registry::new();
        reg.add_sharded(0, "dets", 2);
        reg.add_sharded(1, "dets", 5);
        reg.max_sharded(1, "hwm", 9);
        let snap = reg.snapshot();
        assert!(snap.logical.is_empty());
        assert_eq!(snap.sharded["shard0.dets"], MetricValue::Count(2));
        assert_eq!(snap.sharded["shard1.dets"], MetricValue::Count(5));
        assert_eq!(snap.sharded["shard1.hwm"], MetricValue::Max(9));
    }

    #[test]
    fn spans_record_injected_seconds() {
        let mut reg = Registry::new();
        let s = reg.span("epoch");
        reg.record_span(s, 0.5);
        reg.record_span(s, 1.5);
        let snap = reg.snapshot();
        let v = &snap.wall["epoch"];
        assert_eq!(v.count, 2);
        assert!((v.total_s - 2.0).abs() < 1e-12);
        assert!((v.max_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn prefixed_rewrites_every_section() {
        let mut reg = Registry::new();
        let c = reg.counter("a");
        reg.incr(c);
        reg.add_sharded(0, "b", 1);
        let s = reg.span("c");
        reg.record_span(s, 0.1);
        let snap = reg.snapshot().prefixed("sim");
        assert!(snap.logical.contains_key("sim.a"));
        assert!(snap.sharded.contains_key("sim.shard0.b"));
        assert!(snap.wall.contains_key("sim.c"));
    }

    #[test]
    fn absorb_merges_by_kind() {
        let mut a = Registry::new();
        let c = a.counter("n");
        a.add(c, 2);
        let g = a.gauge("m");
        a.observe_max(g, 3);
        let h = a.histogram("h", 1, 2);
        a.observe(h, 0);

        let mut b = Registry::new();
        let c = b.counter("n");
        b.add(c, 5);
        let g = b.gauge("m");
        b.observe_max(g, 1);
        let h = b.histogram("h", 1, 2);
        b.observe(h, 9);

        let mut snap = a.snapshot();
        snap.absorb(&b.snapshot());
        assert_eq!(snap.logical["n"], MetricValue::Count(7));
        assert_eq!(snap.logical["m"], MetricValue::Max(3));
        assert_eq!(snap.logical["h"], MetricValue::Hist(2, vec![1, 1]));
    }

    #[test]
    fn serialized_snapshot_is_key_ordered_and_stable() {
        let build = || {
            let mut reg = Registry::new();
            // Register in an order that differs from lexicographic.
            let z = reg.counter("zeta");
            let a = reg.counter("alpha");
            reg.add(z, 1);
            reg.add(a, 2);
            serde_json::to_string(&reg.snapshot()).unwrap()
        };
        let one = build();
        assert_eq!(one, build());
        let alpha = one.find("alpha").unwrap();
        let zeta = one.find("zeta").unwrap();
        assert!(alpha < zeta, "BTreeMap export must be key-ordered");
    }
}
