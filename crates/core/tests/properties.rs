//! Property-based tests for the detector stack.

use proptest::prelude::*;
use sybil_core::eval::{evaluate, roc_curve};
use sybil_core::svm::linear::LinearSvmParams;
use sybil_core::{Classifier, LinearSvm, Scaler, ThresholdClassifier};
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureVector;

fn fv(freq: f64, ratio: f64, cc: f64) -> FeatureVector {
    FeatureVector {
        inv_freq_1h: freq,
        inv_freq_400h: freq * 8.0,
        outgoing_accept_ratio: ratio,
        incoming_accept_ratio: 1.0,
        clustering_coefficient: cc,
    }
}

/// A synthetic dataset with class gap `gap` between Sybil and normal
/// feature centers.
fn dataset(gap: f64, n: usize, noise: &[f64]) -> GroundTruth {
    let mut ds = GroundTruth::default();
    for i in 0..n {
        let e = noise[i % noise.len()] * 0.2;
        ds.features.push(fv(20.0 + gap + e, 0.3 - e * 0.1, 0.01));
        ds.labels.push(true);
        ds.nodes.push(osn_graph::NodeId(i as u32));
        ds.features.push(fv(20.0 - gap - e, 0.7 + e * 0.1, 0.05));
        ds.labels.push(false);
        ds.nodes.push(osn_graph::NodeId((n + i) as u32));
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any linearly separable dataset, the calibrated threshold rule and
    /// the linear SVM both classify the training set perfectly.
    #[test]
    fn separable_data_learned_perfectly(
        gap in 3.0f64..15.0,
        noise in prop::collection::vec(0.0f64..1.0, 4..10)
    ) {
        let ds = dataset(gap, 40, &noise);
        let rule = ThresholdClassifier::calibrate(&ds);
        let m = evaluate(&rule, &ds.features, &ds.labels);
        prop_assert_eq!(m.accuracy(), 1.0, "threshold failed at gap {}", gap);
        // Pegasos is a stochastic solver: with a comfortable margin it
        // should be essentially perfect; tight margins may need more steps
        // than a test budget allows, so the bound is slightly loose.
        let svm = LinearSvm::train_features(
            &ds.features,
            &ds.labels,
            &LinearSvmParams { steps: 120_000, ..Default::default() },
        );
        let m2 = evaluate(&svm, &ds.features, &ds.labels);
        prop_assert!(m2.accuracy() >= 0.97, "svm accuracy {} at gap {}", m2.accuracy(), gap);
    }

    /// The scaler's transform has zero mean and unit variance on its own
    /// training rows (up to fp error), for any non-degenerate input.
    #[test]
    fn scaler_standardizes(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3),
            2..50
        )
    ) {
        let sc = Scaler::fit(&rows);
        let t = sc.transform_all(&rows);
        for d in 0..3 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / t.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "dim {} mean {}", d, mean);
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / t.len() as f64;
            // Either standardized or a constant feature (centered to 0).
            prop_assert!(var < 1.0 + 1e-6);
        }
    }

    /// ROC curves are monotone from (0,0) to (1,1) and the AUC is in [0,1]
    /// for arbitrary score/label combinations.
    #[test]
    fn roc_is_well_formed(
        scores in prop::collection::vec(-10.0f64..10.0, 2..80),
        flips in prop::collection::vec(any::<bool>(), 80)
    ) {
        struct ByFreq;
        impl Classifier for ByFreq {
            fn is_sybil(&self, f: &FeatureVector) -> bool { f.inv_freq_1h > 0.0 }
            fn score(&self, f: &FeatureVector) -> f64 { f.inv_freq_1h }
        }
        let features: Vec<FeatureVector> =
            scores.iter().map(|&s| fv(s, 0.5, 0.01)).collect();
        let labels: Vec<bool> = (0..features.len()).map(|i| flips[i % flips.len()]).collect();
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let (curve, auc) = roc_curve(&ByFreq, &features, &labels);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc), "auc {}", auc);
        prop_assert_eq!(curve.first().copied(), Some((0.0, 0.0)));
        let (lx, ly) = *curve.last().unwrap();
        prop_assert!((lx - 1.0).abs() < 1e-9 && (ly - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    /// The paper rule's conjunction is monotone: making a feature vector
    /// strictly more "sybil-like" never flips a Sybil verdict to non-Sybil.
    #[test]
    fn threshold_rule_is_monotone(
        freq in 0.0f64..100.0,
        ratio in 0.0f64..1.0,
        cc in 0.0f64..0.5,
        d_freq in 0.0f64..50.0,
        d_ratio in 0.0f64..0.5,
        d_cc in 0.0f64..0.2
    ) {
        let rule = ThresholdClassifier::paper();
        let base = fv(freq, ratio, cc);
        let worse = fv(freq + d_freq, (ratio - d_ratio).max(0.0), (cc - d_cc).max(0.0));
        if rule.is_sybil(&base) {
            prop_assert!(rule.is_sybil(&worse));
        }
    }
}
