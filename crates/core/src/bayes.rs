//! Gaussian naive Bayes.
//!
//! §4 of the paper notes that prior OSN-spam work leaned on "Bayesian
//! filters and SVMs" (Benevenuto et al., Stringhini et al.). This is that
//! baseline: per-class Gaussian likelihoods per feature, independence
//! assumption, MAP decision. It benchmarks against the paper's threshold
//! rule and SVM in the `classifier_zoo` experiment.

use crate::Classifier;
use serde::{Deserialize, Serialize};
use sybil_features::FeatureVector;

/// Per-feature Gaussian parameters for one class.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ClassModel {
    prior_log: f64,
    mean: Vec<f64>,
    var: Vec<f64>,
}

impl ClassModel {
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut ll = self.prior_log;
        for ((&xi, &m), &v) in x.iter().zip(&self.mean).zip(&self.var) {
            let d = xi - m;
            ll += -0.5 * (v.ln() + d * d / v + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

/// A trained Gaussian naive Bayes classifier over the five behavioral
/// features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NaiveBayes {
    sybil: ClassModel,
    normal: ClassModel,
}

/// Variance floor: degenerate (constant) features must not produce
/// infinite likelihood ratios.
const VAR_FLOOR: f64 = 1e-6;

impl NaiveBayes {
    /// Fit from feature vectors and labels (`true` = Sybil). Panics on
    /// empty or single-class input.
    pub fn train(features: &[FeatureVector], labels: &[bool]) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "need both classes to train"
        );
        let fit = |class: bool| -> ClassModel {
            let rows: Vec<[f64; 5]> = features
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == class)
                .map(|(f, _)| f.as_array())
                .collect();
            let n = rows.len() as f64;
            let mut mean = vec![0.0; 5];
            for r in &rows {
                for (m, &x) in mean.iter_mut().zip(r.iter()) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut var = vec![0.0; 5];
            for r in &rows {
                for ((v, &x), &m) in var.iter_mut().zip(r.iter()).zip(&mean) {
                    *v += (x - m) * (x - m);
                }
            }
            for v in &mut var {
                *v = (*v / n).max(VAR_FLOOR);
            }
            ClassModel {
                prior_log: (n / features.len() as f64).ln(),
                mean,
                var,
            }
        };
        NaiveBayes {
            sybil: fit(true),
            normal: fit(false),
        }
    }

    /// Log-odds of the Sybil class.
    pub fn log_odds(&self, f: &FeatureVector) -> f64 {
        let x = f.as_array();
        self.sybil.log_likelihood(&x) - self.normal.log_likelihood(&x)
    }
}

impl Classifier for NaiveBayes {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        self.log_odds(f) > 0.0
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        self.log_odds(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(freq: f64, ratio: f64) -> FeatureVector {
        FeatureVector {
            inv_freq_1h: freq,
            inv_freq_400h: freq * 8.0,
            outgoing_accept_ratio: ratio,
            incoming_accept_ratio: 1.0,
            clustering_coefficient: 0.02,
        }
    }

    fn separable() -> (Vec<FeatureVector>, Vec<bool>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let j = (i % 10) as f64 * 0.3;
            features.push(fv(35.0 + j, 0.2 + j * 0.01));
            labels.push(true);
            features.push(fv(2.0 + j, 0.8 - j * 0.01));
            labels.push(false);
        }
        (features, labels)
    }

    #[test]
    fn classifies_separable_data() {
        let (features, labels) = separable();
        let nb = NaiveBayes::train(&features, &labels);
        for (f, &l) in features.iter().zip(&labels) {
            assert_eq!(nb.is_sybil(f), l);
        }
    }

    #[test]
    fn log_odds_orders_confidence() {
        let (features, labels) = separable();
        let nb = NaiveBayes::train(&features, &labels);
        assert!(nb.log_odds(&fv(60.0, 0.1)) > nb.log_odds(&fv(36.0, 0.25)));
        assert!(nb.log_odds(&fv(1.0, 0.9)) < 0.0);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        // incoming ratio and cc are constant across the training data;
        // VAR_FLOOR keeps likelihoods finite.
        let (features, labels) = separable();
        let nb = NaiveBayes::train(&features, &labels);
        let odds = nb.log_odds(&fv(35.0, 0.2));
        assert!(odds.is_finite());
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn single_class_rejected() {
        let (features, _) = separable();
        let labels = vec![true; features.len()];
        NaiveBayes::train(&features, &labels);
    }

    #[test]
    fn priors_matter_for_imbalanced_data() {
        // 9:1 normal-heavy data with overlapping features: the prior pulls
        // ambiguous points toward normal.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            features.push(fv(10.0 + (i % 5) as f64, 0.5));
            labels.push(false);
        }
        for i in 0..10 {
            features.push(fv(11.0 + (i % 5) as f64, 0.5));
            labels.push(true);
        }
        let nb = NaiveBayes::train(&features, &labels);
        // A point equidistant between the class means leans normal.
        assert!(!nb.is_sybil(&fv(11.0, 0.5)));
    }
}
