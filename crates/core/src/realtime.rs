//! The streaming (near real-time) Sybil detector.
//!
//! This is the deployment model of §2.3: the detector consumes Renren's
//! friend-request event stream, maintains per-account running features
//! (trailing invitation counts, accept ratios over *decided* requests,
//! clustering over the friends acquired so far), and flags an account the
//! moment the threshold rule fires. Flagged accounts go to the
//! verification team; confirmed labels feed the adaptive thresholds.
//!
//! Here the "event stream" is a replay of a simulation's request log
//! (sends and decisions merged in time order) and the "verification team"
//! is the simulation's ground truth, delivered with a delay.

use crate::adaptive::AdaptiveThresholds;
use crate::threshold::ThresholdClassifier;
use crate::Classifier;
use osn_graph::{NodeId, Timestamp};
use osn_sim::SimOutput;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use sybil_features::FeatureVector;

/// Streaming-detector configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RealtimeConfig {
    /// Evaluate an account only once it has sent at least this many
    /// requests.
    pub warmup_requests: usize,
    /// Evaluate every `check_every`-th sent request (controls CPU).
    pub check_every: usize,
    /// Trailing window (hours) for the frequency feature.
    pub trailing_window_h: u64,
    /// Ratio condition requires at least this many *decided* requests.
    pub min_decided: usize,
    /// Clustering condition requires at least this many friends.
    pub min_friends: usize,
    /// The rule (initial rule when adaptive).
    pub rule: ThresholdClassifier,
    /// Enable adaptive feedback.
    pub adaptive: bool,
    /// Hours between detection and the verification team's confirmation.
    pub feedback_delay_h: u64,
    /// Every this many processed sends, one active account is audited at
    /// random, giving the adaptive trackers normal-side feedback.
    pub audit_every: usize,
}

impl Default for RealtimeConfig {
    fn default() -> Self {
        RealtimeConfig {
            warmup_requests: 20,
            check_every: 5,
            trailing_window_h: 1,
            min_decided: 10,
            min_friends: 8,
            rule: ThresholdClassifier::paper(),
            adaptive: false,
            feedback_delay_h: 48,
            audit_every: 200,
        }
    }
}

/// One detection event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The flagged account.
    pub account: NodeId,
    /// When the rule fired.
    pub at: Timestamp,
    /// Whether ground truth says the account really is a Sybil.
    pub correct: bool,
}

/// Outcome of a deployment replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// All detections in time order.
    pub detections: Vec<Detection>,
    /// Sybils caught.
    pub true_positives: usize,
    /// Normal users flagged.
    pub false_positives: usize,
    /// Sybils that sent ≥ warmup requests but were never flagged.
    pub missed: usize,
    /// Mean hours from account creation to detection (over true
    /// positives).
    pub mean_latency_h: f64,
    /// The rule in force at the end of the replay.
    pub final_rule: ThresholdClassifier,
}

impl DeploymentReport {
    /// Catch rate among eligible Sybils.
    pub fn catch_rate(&self) -> f64 {
        let total = self.true_positives + self.missed;
        if total == 0 {
            0.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct AccountState {
    sent: u32,
    accepted: u32,
    rejected: u32,
    recent_sends: VecDeque<u64>, // seconds
    peak_1h: u32,                // historical max sends in any trailing window
    friends: Vec<NodeId>,        // first ≤ 50
    detected: bool,
}

/// Replay a simulation's request log through the streaming detector.
pub fn replay(out: &SimOutput, cfg: &RealtimeConfig) -> DeploymentReport {
    let n = out.accounts.len();
    let mut states: Vec<AccountState> = (0..n).map(|_| AccountState::default()).collect();
    let mut edges: HashSet<u64> = HashSet::new();
    let pack = |a: NodeId, b: NodeId| -> u64 {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        ((lo as u64) << 32) | hi as u64
    };

    // Merge sends and decisions into one chronological stream.
    #[derive(Clone, Copy)]
    enum Ev {
        Send(u32),
        Decide(u32),
    }
    let mut events: Vec<(Timestamp, u8, Ev)> = Vec::with_capacity(out.log.len() * 2);
    for (i, r) in out.log.records().iter().enumerate() {
        events.push((r.sent_at, 0, Ev::Send(i as u32)));
        if let Some(t) = r.outcome.decided_at() {
            events.push((t, 1, Ev::Decide(i as u32)));
        }
    }
    events.sort_by_key(|&(t, k, _)| (t, k));

    let mut adaptive = AdaptiveThresholds::from_rule(&cfg.rule, 0.02);
    // Pending verification feedback: (due time, features, truth).
    let mut feedback_queue: VecDeque<(Timestamp, FeatureVector, bool)> = VecDeque::new();
    let mut report = DeploymentReport {
        final_rule: cfg.rule,
        ..Default::default()
    };
    let mut processed_sends: usize = 0;
    // Deterministic pseudo-random audit pointer.
    let mut audit_cursor: usize = 1;

    let window_s = cfg.trailing_window_h * 3600;
    for (t, _, ev) in events {
        // Deliver due verification feedback.
        while let Some(&(due, f, truth)) = feedback_queue.front() {
            if due <= t {
                adaptive.feedback(&f, truth);
                feedback_queue.pop_front();
            } else {
                break;
            }
        }
        match ev {
            Ev::Send(i) => {
                let r = out.log.get(i as usize);
                processed_sends += 1;
                let st = &mut states[r.from.index()];
                if st.detected {
                    continue;
                }
                st.sent += 1;
                st.recent_sends.push_back(r.sent_at.as_secs());
                let cutoff = r.sent_at.as_secs().saturating_sub(window_s);
                while st.recent_sends.front().is_some_and(|&s| s <= cutoff) {
                    st.recent_sends.pop_front();
                }
                st.peak_1h = st.peak_1h.max(st.recent_sends.len() as u32);
                let should_check = st.sent as usize >= cfg.warmup_requests
                    && (st.sent as usize).is_multiple_of(cfg.check_every);
                if should_check {
                    let features = current_features(&states[r.from.index()], &edges, cfg);
                    if let Some(f) = features {
                        let rule = if cfg.adaptive {
                            adaptive.current_rule()
                        } else {
                            cfg.rule
                        };
                        if rule.is_sybil(&f) {
                            let truth = out.is_sybil(r.from);
                            states[r.from.index()].detected = true;
                            report.detections.push(Detection {
                                account: r.from,
                                at: t,
                                correct: truth,
                            });
                            if truth {
                                report.true_positives += 1;
                                report.mean_latency_h +=
                                    t.as_hours() - out.accounts[r.from.index()].created_at.as_hours();
                            } else {
                                report.false_positives += 1;
                            }
                            if cfg.adaptive {
                                feedback_queue.push_back((
                                    t.plus_secs(cfg.feedback_delay_h * 3600),
                                    f,
                                    truth,
                                ));
                            }
                        }
                    }
                }
                // Periodic audit: the verification team reviews a random
                // active account, giving normal-side (or extra sybil-side)
                // signal.
                if cfg.adaptive && processed_sends.is_multiple_of(cfg.audit_every) {
                    audit_cursor = (audit_cursor.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407))
                        % out.log.len().max(1);
                    let sample = out.log.get(audit_cursor);
                    if let Some(f) = current_features(&states[sample.from.index()], &edges, cfg) {
                        feedback_queue.push_back((
                            t.plus_secs(cfg.feedback_delay_h * 3600),
                            f,
                            out.is_sybil(sample.from),
                        ));
                    }
                }
            }
            Ev::Decide(i) => {
                let r = out.log.get(i as usize);
                if r.outcome.is_accepted() {
                    edges.insert(pack(r.from, r.to));
                    let sf = &mut states[r.from.index()];
                    sf.accepted += 1;
                    if sf.friends.len() < 50 {
                        sf.friends.push(r.to);
                    }
                    let stt = &mut states[r.to.index()];
                    if stt.friends.len() < 50 {
                        stt.friends.push(r.from);
                    }
                } else {
                    states[r.from.index()].rejected += 1;
                }
                // Decisions also update the sender's features (ratio and
                // clustering mature long after the last send), so the
                // detector re-evaluates here too.
                let st = &states[r.from.index()];
                if !st.detected
                    && st.sent as usize >= cfg.warmup_requests
                    && ((st.accepted + st.rejected) as usize).is_multiple_of(cfg.check_every)
                {
                    if let Some(f) = current_features(st, &edges, cfg) {
                        let rule = if cfg.adaptive {
                            adaptive.current_rule()
                        } else {
                            cfg.rule
                        };
                        if rule.is_sybil(&f) {
                            let truth = out.is_sybil(r.from);
                            states[r.from.index()].detected = true;
                            report.detections.push(Detection {
                                account: r.from,
                                at: t,
                                correct: truth,
                            });
                            if truth {
                                report.true_positives += 1;
                                report.mean_latency_h += t.as_hours()
                                    - out.accounts[r.from.index()].created_at.as_hours();
                            } else {
                                report.false_positives += 1;
                            }
                            if cfg.adaptive {
                                feedback_queue.push_back((
                                    t.plus_secs(cfg.feedback_delay_h * 3600),
                                    f,
                                    truth,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    // Count missed sybils.
    for (i, a) in out.accounts.iter().enumerate() {
        if a.is_sybil()
            && states[i].sent as usize >= cfg.warmup_requests
            && !states[i].detected
        {
            report.missed += 1;
        }
    }
    if report.true_positives > 0 {
        report.mean_latency_h /= report.true_positives as f64;
    }
    report.final_rule = if cfg.adaptive {
        adaptive.current_rule()
    } else {
        cfg.rule
    };
    report.detections.sort_by_key(|d| d.at);
    report
}

/// Features computable from the stream so far; `None` when the ratio
/// condition lacks data (the detector stays conservative rather than
/// flagging accounts it barely knows).
fn current_features(
    st: &AccountState,
    edges: &HashSet<u64>,
    cfg: &RealtimeConfig,
) -> Option<FeatureVector> {
    let decided = st.accepted + st.rejected;
    if (decided as usize) < cfg.min_decided || st.friends.len() < cfg.min_friends {
        return None;
    }
    let pack = |a: NodeId, b: NodeId| -> u64 {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        ((lo as u64) << 32) | hi as u64
    };
    let k = st.friends.len();
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if edges.contains(&pack(st.friends[i], st.friends[j])) {
                links += 1;
            }
        }
    }
    let cc = if k < 2 {
        0.0
    } else {
        links as f64 / (k * (k - 1) / 2) as f64
    };
    Some(FeatureVector {
        inv_freq_1h: st.peak_1h as f64,
        inv_freq_400h: st.sent as f64, // long-scale proxy: total so far
        outgoing_accept_ratio: st.accepted as f64 / decided as f64,
        incoming_accept_ratio: 1.0, // not used by the outgoing-side rule
        clustering_coefficient: cc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::{simulate, SimConfig};

    fn rule_for_sim() -> ThresholdClassifier {
        // Scale-calibrated static rule (cc disabled; see threshold.rs docs).
        ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        }
    }

    #[test]
    fn static_deployment_catches_most_sybils_without_false_positives() {
        let out = simulate(SimConfig::tiny(21));
        let cfg = RealtimeConfig {
            rule: rule_for_sim(),
            ..RealtimeConfig::default()
        };
        let report = replay(&out, &cfg);
        assert!(
            report.catch_rate() > 0.5,
            "catch rate {:.2} (tp {} missed {})",
            report.catch_rate(),
            report.true_positives,
            report.missed
        );
        let fp_rate = report.false_positives as f64
            / out.normal_ids().len() as f64;
        assert!(fp_rate < 0.02, "false positive rate {fp_rate}");
        assert!(report.mean_latency_h > 0.0);
    }

    #[test]
    fn detections_are_time_ordered_and_unique() {
        let out = simulate(SimConfig::tiny(22));
        let report = replay(
            &out,
            &RealtimeConfig {
                rule: rule_for_sim(),
                ..RealtimeConfig::default()
            },
        );
        for w in report.detections.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let mut seen = HashSet::new();
        for d in &report.detections {
            assert!(seen.insert(d.account), "account flagged twice");
        }
    }

    #[test]
    fn adaptive_deployment_also_works() {
        let out = simulate(SimConfig::tiny(23));
        let cfg = RealtimeConfig {
            rule: rule_for_sim(),
            adaptive: true,
            ..RealtimeConfig::default()
        };
        let report = replay(&out, &cfg);
        assert!(
            report.catch_rate() > 0.4,
            "adaptive catch rate {:.2}",
            report.catch_rate()
        );
        // The adaptive rule must have moved off its initialization.
        assert!(report.final_rule.min_freq.is_finite());
    }

    #[test]
    fn report_counts_are_consistent() {
        let out = simulate(SimConfig::tiny(24));
        let report = replay(
            &out,
            &RealtimeConfig {
                rule: rule_for_sim(),
                ..RealtimeConfig::default()
            },
        );
        let tp = report.detections.iter().filter(|d| d.correct).count();
        let fp = report.detections.iter().filter(|d| !d.correct).count();
        assert_eq!(tp, report.true_positives);
        assert_eq!(fp, report.false_positives);
    }
}

#[cfg(test)]
mod synthetic_tests {
    //! Handcrafted request streams exercising the detector's gating logic
    //! precisely (no simulator noise).

    use super::*;
    use osn_sim::{
        Account, AccountKind, Gender, Profile, RequestLog, RequestOutcome, RequestRecord,
        SimConfig, SimOutput, ToolKind,
    };

    /// One request spec: (from, to, sent_h, Some((answered_after_h, accepted))).
    type RequestSpec = (u32, u32, f64, Option<(f64, bool)>);

    /// Build an output with `n` accounts (account 0's kind is chosen) and
    /// the given request tuples.
    fn synthetic(n: usize, zero_is_sybil: bool, requests: &[RequestSpec]) -> SimOutput {
        let normal = Account {
            kind: AccountKind::Normal,
            profile: Profile::new(Gender::Male, 0.4),
            created_at: Timestamp::ZERO,
            banned_at: None,
            accept_tendency: 0.7,
            sociability: 1.0,
        };
        let mut accounts = vec![normal.clone(); n];
        if zero_is_sybil {
            accounts[0].kind = AccountKind::Sybil {
                attacker: 0,
                tool: ToolKind::MarketingAssistant,
            };
        }
        let mut graph = osn_graph::TemporalGraph::with_nodes(n);
        let mut log = RequestLog::new();
        let mut rows: Vec<_> = requests.to_vec();
        rows.sort_by(|a, b| a.2.total_cmp(&b.2));
        for &(from, to, sent_h, decision) in &rows {
            let idx = log.push(RequestRecord {
                from: NodeId(from),
                to: NodeId(to),
                sent_at: Timestamp::from_hours_f64(sent_h),
                outcome: RequestOutcome::Pending,
            });
            if let Some((after_h, accepted)) = decision {
                let t = Timestamp::from_hours_f64(sent_h + after_h);
                if accepted {
                    log.resolve(idx, RequestOutcome::Accepted(t));
                    let _ = graph.add_edge(NodeId(from), NodeId(to), t);
                } else {
                    log.resolve(idx, RequestOutcome::Rejected(t));
                }
            }
        }
        SimOutput {
            config: SimConfig::tiny(0),
            graph,
            accounts,
            log,
            engine_stats: Default::default(),
        }
    }

    fn strict_rule() -> RealtimeConfig {
        RealtimeConfig {
            rule: ThresholdClassifier {
                max_out_ratio: 0.5,
                min_freq: 20.0,
                max_cc: f64::INFINITY,
            },
            warmup_requests: 20,
            check_every: 1,
            min_decided: 10,
            min_friends: 4,
            ..RealtimeConfig::default()
        }
    }

    /// A burst of 40 requests in one hour, 12 decided (3 accepted): fires.
    #[test]
    fn bursty_low_acceptance_account_is_flagged() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            let accepted = i < 5; // 5 accepts (≥ min_friends), 9 rejects
            let decision = if i < 14 {
                Some((0.5, accepted))
            } else {
                None
            };
            reqs.push((0, i + 1, 0.01 * i as f64, decision));
        }
        let out = synthetic(64, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert_eq!(report.true_positives, 1, "the bursty sybil must be caught");
        assert_eq!(report.false_positives, 0);
    }

    /// The same burst shape but only 15 requests: warmup keeps it silent.
    #[test]
    fn warmup_gates_small_senders() {
        let mut reqs = Vec::new();
        for i in 0..15u32 {
            reqs.push((0, i + 1, 0.01 * i as f64, Some((0.5, i < 2))));
        }
        let out = synthetic(32, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty(), "below warmup must not fire");
        assert_eq!(report.missed, 0, "sub-warmup sybils are not 'missed'");
    }

    /// A slow sender with identical totals never crosses the rate cut.
    #[test]
    fn slow_sender_is_not_flagged() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            // One request every 5 hours.
            let decision = if i < 12 { Some((0.5, i < 3)) } else { None };
            reqs.push((0, i + 1, 5.0 * i as f64, decision));
        }
        let out = synthetic(64, false, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty(), "slow sender must pass");
    }

    /// Ratio gating: a bursty account whose requests are mostly accepted
    /// (popular user on a friending spree) is spared by the ratio cut.
    #[test]
    fn bursty_but_welcome_account_is_spared() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            let decision = if i < 20 { Some((0.4, true)) } else { None };
            reqs.push((0, i + 1, 0.01 * i as f64, decision));
        }
        let out = synthetic(64, false, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(
            report.detections.is_empty(),
            "high-acceptance bursts are not sybil-like"
        );
    }

    /// min_decided gating: a burst with no decisions yet cannot fire.
    #[test]
    fn undecided_requests_do_not_trigger() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            reqs.push((0, i + 1, 0.01 * i as f64, None));
        }
        let out = synthetic(64, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty());
    }
}
