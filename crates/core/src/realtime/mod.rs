//! The streaming (near real-time) Sybil detector.
//!
//! This is the deployment model of §2.3: the detector consumes Renren's
//! friend-request event stream, maintains per-account running features
//! (trailing invitation counts, accept ratios over *decided* requests,
//! clustering over the friends acquired so far), and flags an account the
//! moment the threshold rule fires. Flagged accounts go to the
//! verification team; confirmed labels feed the adaptive thresholds.
//!
//! Here the "event stream" is a replay of a simulation's request log
//! (sends and decisions merged in time order by
//! [`osn_sim::stream::EventStream`]) and the "verification team" is the
//! simulation's ground truth, delivered with a delay.
//!
//! The per-account transitions live in [`state`], shared with the sharded
//! `sybil-serve` engine; this module's [`replay`] is the sequential
//! reference that engine must reproduce byte for byte.

pub mod state;

use crate::adaptive::AdaptiveThresholds;
use crate::threshold::ThresholdClassifier;
use crate::Classifier;
use osn_graph::{NodeId, Timestamp};
use osn_sim::stream::{EventStream, StreamEvent, StreamEventKind};
use osn_sim::SimOutput;
use serde::{Deserialize, Serialize};
use state::AccountState;
use std::collections::{HashSet, VecDeque};
use sybil_features::FeatureVector;

/// Streaming-detector configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RealtimeConfig {
    /// Evaluate an account only once it has sent at least this many
    /// requests.
    pub warmup_requests: usize,
    /// Evaluate every `check_every`-th sent request (controls CPU).
    /// A value of 0 would make every `is_multiple_of` gate false and
    /// silently disable the detector, so engines run on
    /// [`sanitized`](Self::sanitized) copies that clamp it to 1.
    pub check_every: usize,
    /// Trailing window (hours) for the frequency feature.
    pub trailing_window_h: u64,
    /// Ratio condition requires at least this many *decided* requests.
    pub min_decided: usize,
    /// Clustering condition requires at least this many friends.
    pub min_friends: usize,
    /// The rule (initial rule when adaptive).
    pub rule: ThresholdClassifier,
    /// Enable adaptive feedback.
    pub adaptive: bool,
    /// Hours between detection and the verification team's confirmation.
    pub feedback_delay_h: u64,
    /// Every this many processed sends, one active account is audited at
    /// random, giving the adaptive trackers normal-side feedback. Clamped
    /// to 1 when 0, like `check_every`.
    pub audit_every: usize,
}

impl Default for RealtimeConfig {
    fn default() -> Self {
        RealtimeConfig {
            warmup_requests: 20,
            check_every: 5,
            trailing_window_h: 1,
            min_decided: 10,
            min_friends: 8,
            rule: ThresholdClassifier::paper(),
            adaptive: false,
            feedback_delay_h: 48,
            audit_every: 200,
        }
    }
}

impl RealtimeConfig {
    /// Copy with degenerate cadence values clamped to their nearest
    /// working value: `check_every == 0` and `audit_every == 0` become 1
    /// ("evaluate at every opportunity"), because `n.is_multiple_of(0)` is
    /// false for every positive `n` and would silently disable the
    /// detector. Every engine entry point runs on a sanitized copy.
    pub fn sanitized(&self) -> Self {
        let mut c = *self;
        c.check_every = c.check_every.max(1);
        c.audit_every = c.audit_every.max(1);
        c
    }

    /// Strict validation for configs coming from the outside (CLI, files):
    /// rejects the zero cadences that [`sanitized`](Self::sanitized) would
    /// clamp, so callers can surface the mistake instead of guessing.
    pub fn validate(&self) -> Result<(), crate::Error> {
        if self.check_every == 0 {
            return Err(crate::Error::InvalidConfig {
                field: "check_every",
                message: "must be ≥ 1 (0 disables every evaluation)".into(),
            });
        }
        if self.audit_every == 0 {
            return Err(crate::Error::InvalidConfig {
                field: "audit_every",
                message: "must be ≥ 1 (0 disables every audit)".into(),
            });
        }
        Ok(())
    }
}

/// One detection event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The flagged account.
    pub account: NodeId,
    /// When the rule fired.
    pub at: Timestamp,
    /// Whether ground truth says the account really is a Sybil.
    pub correct: bool,
}

/// Outcome of a deployment replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// All detections in time order.
    pub detections: Vec<Detection>,
    /// Sybils caught.
    pub true_positives: usize,
    /// Normal users flagged.
    pub false_positives: usize,
    /// Sybils that sent ≥ warmup requests but were never flagged.
    pub missed: usize,
    /// Mean hours from account creation to detection (over true
    /// positives).
    pub mean_latency_h: f64,
    /// The rule in force at the end of the replay.
    pub final_rule: ThresholdClassifier,
}

impl DeploymentReport {
    /// Catch rate among eligible Sybils. [`f64::NAN`] when no Sybil ever
    /// became eligible (zero true positives *and* zero missed): an empty
    /// denominator is "nothing to catch", which is not the same claim as
    /// "caught nothing". Callers printing this should render the NaN case
    /// distinctly (see the `repro` deployment table).
    pub fn catch_rate(&self) -> f64 {
        let total = self.true_positives + self.missed;
        if total == 0 {
            f64::NAN
        } else {
            self.true_positives as f64 / total as f64
        }
    }
}

/// Replay a simulation's request log through the streaming detector.
pub fn replay(out: &SimOutput, cfg: &RealtimeConfig) -> DeploymentReport {
    let mut eng = Replayer::new(out, cfg.sanitized(), None);
    for ev in EventStream::new(&out.log) {
        eng.on_event(ev);
    }
    eng.finish()
}

/// Replay with observability: like [`replay`], but tallies the engine's
/// logical activity (events processed, checks run, detections, features
/// computed, adaptive feedback applied, audits sampled) into `obs`, and —
/// when `clock` is given — wall-times feature computation into the
/// `feature_compute` span. The logical tallies never read a clock, so the
/// report *and* the logical metrics stay bit-identical to [`replay`].
pub fn replay_observed(
    out: &SimOutput,
    cfg: &RealtimeConfig,
    obs: &mut sybil_obs::Registry,
    clock: Option<sybil_obs::Clock<'_>>,
) -> DeploymentReport {
    let mut eng = Replayer::new(out, cfg.sanitized(), clock);
    for ev in EventStream::new(&out.log) {
        eng.on_event(ev);
    }
    let counters = std::mem::take(&mut eng.counters);
    let feat_span = std::mem::take(&mut eng.feat_span);
    let report = eng.finish();
    counters.export(obs);
    if clock.is_some() {
        let sid = obs.span("feature_compute");
        obs.record_span_agg(sid, feat_span.count, feat_span.total_s, feat_span.max_s);
    }
    report
}

/// Always-on logical tallies of a detection engine's work. Plain fields
/// (no registry lookups) keep the hot path at an integer add; exported
/// into a [`sybil_obs::Registry`] once per run. Shared with the sharded
/// `sybil-serve` engine so both report the same metric keys — and the
/// summed shard tallies must equal the sequential replay's (the
/// determinism contract extends to logical metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayCounters {
    /// Stream events consumed (sends + decisions).
    pub events_processed: u64,
    /// Rule evaluations attempted (before the feature gate).
    pub checks_run: u64,
    /// Accounts flagged.
    pub detections: u64,
    /// Feature vectors actually computed (feature gate passed).
    pub features_computed: u64,
    /// Adaptive feedback items applied to the threshold trackers.
    pub feedback_applied: u64,
    /// Random audits whose features could be computed.
    pub audits_sampled: u64,
}

impl ReplayCounters {
    /// Add the tallies to their logical counters in `obs`.
    pub fn export(&self, obs: &mut sybil_obs::Registry) {
        for (name, v) in [
            ("events_processed", self.events_processed),
            ("checks_run", self.checks_run),
            ("detections", self.detections),
            ("features_computed", self.features_computed),
            ("feedback_applied", self.feedback_applied),
            ("audits_sampled", self.audits_sampled),
        ] {
            let id = obs.counter(name);
            obs.add(id, v);
        }
    }
}

/// Private wall-span accumulation: count, total seconds, longest single
/// recording.
#[derive(Clone, Copy, Debug, Default)]
struct SpanAgg {
    count: u64,
    total_s: f64,
    max_s: f64,
}

impl SpanAgg {
    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_s += seconds;
        if seconds > self.max_s {
            self.max_s = seconds;
        }
    }
}

/// The sequential engine: one loop owning every account's state.
struct Replayer<'a> {
    out: &'a SimOutput,
    cfg: RealtimeConfig,
    states: Vec<AccountState>,
    /// Accepted friendships seen so far, as packed undirected keys.
    edges: HashSet<u64>,
    adaptive: AdaptiveThresholds,
    /// Pending verification feedback: (due time, features, truth).
    feedback_queue: VecDeque<(Timestamp, FeatureVector, bool)>,
    report: DeploymentReport,
    processed_sends: usize,
    /// Deterministic pseudo-random audit pointer.
    audit_cursor: usize,
    counters: ReplayCounters,
    /// Injected wall clock; `None` outside observed runs.
    clock: Option<sybil_obs::Clock<'a>>,
    feat_span: SpanAgg,
}

impl<'a> Replayer<'a> {
    fn new(out: &'a SimOutput, cfg: RealtimeConfig, clock: Option<sybil_obs::Clock<'a>>) -> Self {
        let n = out.accounts.len();
        Replayer {
            out,
            cfg,
            states: (0..n).map(|_| AccountState::default()).collect(),
            edges: HashSet::new(),
            adaptive: AdaptiveThresholds::from_rule(&cfg.rule, 0.02),
            feedback_queue: VecDeque::new(),
            report: DeploymentReport {
                final_rule: cfg.rule,
                ..Default::default()
            },
            processed_sends: 0,
            audit_cursor: 1,
            counters: ReplayCounters::default(),
            clock,
            feat_span: SpanAgg::default(),
        }
    }

    fn on_event(&mut self, ev: StreamEvent) {
        let t = ev.at;
        self.counters.events_processed += 1;
        // Deliver due verification feedback.
        while let Some(&(due, f, truth)) = self.feedback_queue.front() {
            if due <= t {
                self.adaptive.feedback(&f, truth);
                self.counters.feedback_applied += 1;
                self.feedback_queue.pop_front();
            } else {
                break;
            }
        }
        match ev.kind {
            StreamEventKind::Sent(i) => self.on_send(i as usize, t),
            StreamEventKind::Decided(i) => self.on_decide(i as usize, t),
        }
    }

    fn on_send(&mut self, i: usize, t: Timestamp) {
        let r = self.out.log.get(i);
        self.processed_sends += 1;
        let window_s = self.cfg.trailing_window_h * 3600;
        let st = &mut self.states[r.from.index()];
        if !st.detected {
            st.on_send(r.sent_at, window_s);
            if st.should_check_on_send(&self.cfg) {
                self.check(r.from, t);
            }
        }
        // Periodic audit: the verification team reviews a random active
        // account, giving normal-side (or extra sybil-side) signal. The
        // cadence is global — counted over *all* processed sends, not tied
        // to the triggering sender's detected status — so any replica that
        // sees the whole stream can step the cursor identically.
        if self.cfg.adaptive && self.processed_sends.is_multiple_of(self.cfg.audit_every) {
            self.audit_cursor = state::advance_audit_cursor(self.audit_cursor, self.out.log.len());
            let sample = self.out.log.get(self.audit_cursor);
            if let Some(f) = self.features_of(sample.from) {
                self.counters.audits_sampled += 1;
                self.feedback_queue.push_back((
                    t.plus_secs(self.cfg.feedback_delay_h * 3600),
                    f,
                    self.out.is_sybil(sample.from),
                ));
            }
        }
    }

    fn on_decide(&mut self, i: usize, t: Timestamp) {
        let r = self.out.log.get(i);
        if r.outcome.is_accepted() {
            self.edges.insert(state::pack_edge(r.from, r.to));
            self.states[r.from.index()].on_accept_out(r.to);
            self.states[r.to.index()].on_accept_in(r.from);
        } else {
            self.states[r.from.index()].on_reject_out();
        }
        // Decisions also update the sender's features (ratio and
        // clustering mature long after the last send), so the detector
        // re-evaluates here too.
        let st = &self.states[r.from.index()];
        if !st.detected && st.should_check_on_decide(&self.cfg) {
            self.check(r.from, t);
        }
    }

    /// The pure feature computation, shared by the timed and untimed
    /// paths of [`features_of`](Self::features_of).
    fn compute_features(&self, who: NodeId) -> Option<FeatureVector> {
        state::features_with(&self.states[who.index()], &self.cfg, |friends| {
            state::links_via_edges(friends, &self.edges)
        })
    }

    fn features_of(&mut self, who: NodeId) -> Option<FeatureVector> {
        let f = match self.clock {
            Some(clock) => {
                let t0 = clock();
                let f = self.compute_features(who);
                self.feat_span.record(clock() - t0);
                f
            }
            None => self.compute_features(who),
        };
        if f.is_some() {
            self.counters.features_computed += 1;
        }
        f
    }

    fn check(&mut self, who: NodeId, t: Timestamp) {
        self.counters.checks_run += 1;
        let Some(f) = self.features_of(who) else {
            return;
        };
        let rule = if self.cfg.adaptive {
            self.adaptive.current_rule()
        } else {
            self.cfg.rule
        };
        if rule.is_sybil(&f) {
            let truth = self.out.is_sybil(who);
            self.states[who.index()].detected = true;
            self.counters.detections += 1;
            self.report.detections.push(Detection {
                account: who,
                at: t,
                correct: truth,
            });
            if truth {
                self.report.true_positives += 1;
                self.report.mean_latency_h +=
                    t.as_hours() - self.out.accounts[who.index()].created_at.as_hours();
            } else {
                self.report.false_positives += 1;
            }
            if self.cfg.adaptive {
                self.feedback_queue.push_back((
                    t.plus_secs(self.cfg.feedback_delay_h * 3600),
                    f,
                    truth,
                ));
            }
        }
    }

    fn finish(mut self) -> DeploymentReport {
        // Count missed sybils.
        for (i, a) in self.out.accounts.iter().enumerate() {
            if a.is_sybil()
                && self.states[i].sent as usize >= self.cfg.warmup_requests
                && !self.states[i].detected
            {
                self.report.missed += 1;
            }
        }
        if self.report.true_positives > 0 {
            self.report.mean_latency_h /= self.report.true_positives as f64;
        }
        self.report.final_rule = if self.cfg.adaptive {
            self.adaptive.current_rule()
        } else {
            self.cfg.rule
        };
        self.report.detections.sort_by_key(|d| d.at);
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::{simulate, SimConfig};

    fn rule_for_sim() -> ThresholdClassifier {
        // Scale-calibrated static rule (cc disabled; see threshold.rs docs).
        ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        }
    }

    #[test]
    fn static_deployment_catches_most_sybils_without_false_positives() {
        let out = simulate(SimConfig::tiny(21));
        let cfg = RealtimeConfig {
            rule: rule_for_sim(),
            ..RealtimeConfig::default()
        };
        let report = replay(&out, &cfg);
        assert!(
            report.catch_rate() > 0.5,
            "catch rate {:.2} (tp {} missed {})",
            report.catch_rate(),
            report.true_positives,
            report.missed
        );
        let fp_rate = report.false_positives as f64
            / out.normal_ids().len() as f64;
        assert!(fp_rate < 0.02, "false positive rate {fp_rate}");
        assert!(report.mean_latency_h > 0.0);
    }

    #[test]
    fn detections_are_time_ordered_and_unique() {
        let out = simulate(SimConfig::tiny(22));
        let report = replay(
            &out,
            &RealtimeConfig {
                rule: rule_for_sim(),
                ..RealtimeConfig::default()
            },
        );
        for w in report.detections.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let mut seen = HashSet::new();
        for d in &report.detections {
            assert!(seen.insert(d.account), "account flagged twice");
        }
    }

    #[test]
    fn adaptive_deployment_also_works() {
        let out = simulate(SimConfig::tiny(23));
        let cfg = RealtimeConfig {
            rule: rule_for_sim(),
            adaptive: true,
            ..RealtimeConfig::default()
        };
        let report = replay(&out, &cfg);
        assert!(
            report.catch_rate() > 0.4,
            "adaptive catch rate {:.2}",
            report.catch_rate()
        );
        // The adaptive rule must have moved off its initialization.
        assert!(report.final_rule.min_freq.is_finite());
    }

    #[test]
    fn report_counts_are_consistent() {
        let out = simulate(SimConfig::tiny(24));
        let report = replay(
            &out,
            &RealtimeConfig {
                rule: rule_for_sim(),
                ..RealtimeConfig::default()
            },
        );
        let tp = report.detections.iter().filter(|d| d.correct).count();
        let fp = report.detections.iter().filter(|d| !d.correct).count();
        assert_eq!(tp, report.true_positives);
        assert_eq!(fp, report.false_positives);
    }

    /// The `check_every: 0` footgun: `is_multiple_of(0)` is false for all
    /// positive counts, so an unsanitized 0 silently disabled every
    /// evaluation. The sanitized engine must treat 0 exactly as 1.
    #[test]
    fn check_every_zero_is_clamped_not_silently_disabled() {
        let out = simulate(SimConfig::tiny(25));
        let zero = RealtimeConfig {
            rule: rule_for_sim(),
            check_every: 0,
            audit_every: 0,
            ..RealtimeConfig::default()
        };
        let one = RealtimeConfig {
            check_every: 1,
            audit_every: 1,
            ..zero
        };
        let r_zero = replay(&out, &zero);
        let r_one = replay(&out, &one);
        assert!(
            !r_zero.detections.is_empty(),
            "check_every=0 must not disable the detector"
        );
        assert_eq!(
            serde_json::to_string(&r_zero).unwrap(),
            serde_json::to_string(&r_one).unwrap(),
            "clamped 0 must behave exactly like 1"
        );
    }

    #[test]
    fn config_validation_rejects_zero_cadences() {
        assert!(RealtimeConfig::default().validate().is_ok());
        let c = RealtimeConfig {
            check_every: 0,
            ..RealtimeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RealtimeConfig {
            audit_every: 0,
            ..RealtimeConfig::default()
        };
        assert!(c.validate().is_err());
        let s = c.sanitized();
        assert_eq!(s.audit_every, 1);
        assert!(s.validate().is_ok());
    }

    /// No eligible Sybils is "nothing to catch", not "caught nothing".
    #[test]
    fn catch_rate_is_nan_when_no_sybil_was_eligible() {
        let empty = DeploymentReport::default();
        assert!(empty.catch_rate().is_nan());
        let some = DeploymentReport {
            true_positives: 3,
            missed: 1,
            ..DeploymentReport::default()
        };
        assert_eq!(some.catch_rate(), 0.75);
        let all_missed = DeploymentReport {
            missed: 4,
            ..DeploymentReport::default()
        };
        assert_eq!(all_missed.catch_rate(), 0.0);
    }
}

#[cfg(test)]
mod synthetic_tests {
    //! Handcrafted request streams exercising the detector's gating logic
    //! precisely (no simulator noise).

    use super::*;
    use osn_sim::{
        Account, AccountKind, Gender, Profile, RequestLog, RequestOutcome, RequestRecord,
        SimConfig, SimOutput, ToolKind,
    };

    /// One request spec: (from, to, sent_h, Some((answered_after_h, accepted))).
    type RequestSpec = (u32, u32, f64, Option<(f64, bool)>);

    /// Build an output with `n` accounts (account 0's kind is chosen) and
    /// the given request tuples.
    fn synthetic(n: usize, zero_is_sybil: bool, requests: &[RequestSpec]) -> SimOutput {
        let normal = Account {
            kind: AccountKind::Normal,
            profile: Profile::new(Gender::Male, 0.4),
            created_at: Timestamp::ZERO,
            banned_at: None,
            accept_tendency: 0.7,
            sociability: 1.0,
        };
        let mut accounts = vec![normal.clone(); n];
        if zero_is_sybil {
            accounts[0].kind = AccountKind::Sybil {
                attacker: 0,
                tool: ToolKind::MarketingAssistant,
            };
        }
        let mut graph = osn_graph::TemporalGraph::with_nodes(n);
        let mut log = RequestLog::new();
        let mut rows: Vec<_> = requests.to_vec();
        rows.sort_by(|a, b| a.2.total_cmp(&b.2));
        for &(from, to, sent_h, decision) in &rows {
            let idx = log.push(RequestRecord {
                from: NodeId(from),
                to: NodeId(to),
                sent_at: Timestamp::from_hours_f64(sent_h),
                outcome: RequestOutcome::Pending,
            });
            if let Some((after_h, accepted)) = decision {
                let t = Timestamp::from_hours_f64(sent_h + after_h);
                if accepted {
                    log.resolve(idx, RequestOutcome::Accepted(t));
                    let _ = graph.add_edge(NodeId(from), NodeId(to), t);
                } else {
                    log.resolve(idx, RequestOutcome::Rejected(t));
                }
            }
        }
        SimOutput {
            config: SimConfig::tiny(0),
            graph,
            accounts,
            log,
            engine_stats: Default::default(),
        }
    }

    fn strict_rule() -> RealtimeConfig {
        RealtimeConfig {
            rule: ThresholdClassifier {
                max_out_ratio: 0.5,
                min_freq: 20.0,
                max_cc: f64::INFINITY,
            },
            warmup_requests: 20,
            check_every: 1,
            min_decided: 10,
            min_friends: 4,
            ..RealtimeConfig::default()
        }
    }

    /// A burst of 40 requests in one hour, 12 decided (3 accepted): fires.
    #[test]
    fn bursty_low_acceptance_account_is_flagged() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            let accepted = i < 5; // 5 accepts (≥ min_friends), 9 rejects
            let decision = if i < 14 {
                Some((0.5, accepted))
            } else {
                None
            };
            reqs.push((0, i + 1, 0.01 * i as f64, decision));
        }
        let out = synthetic(64, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert_eq!(report.true_positives, 1, "the bursty sybil must be caught");
        assert_eq!(report.false_positives, 0);
    }

    /// The same burst shape but only 15 requests: warmup keeps it silent.
    #[test]
    fn warmup_gates_small_senders() {
        let mut reqs = Vec::new();
        for i in 0..15u32 {
            reqs.push((0, i + 1, 0.01 * i as f64, Some((0.5, i < 2))));
        }
        let out = synthetic(32, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty(), "below warmup must not fire");
        assert_eq!(report.missed, 0, "sub-warmup sybils are not 'missed'");
    }

    /// A slow sender with identical totals never crosses the rate cut.
    #[test]
    fn slow_sender_is_not_flagged() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            // One request every 5 hours.
            let decision = if i < 12 { Some((0.5, i < 3)) } else { None };
            reqs.push((0, i + 1, 5.0 * i as f64, decision));
        }
        let out = synthetic(64, false, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty(), "slow sender must pass");
    }

    /// Ratio gating: a bursty account whose requests are mostly accepted
    /// (popular user on a friending spree) is spared by the ratio cut.
    #[test]
    fn bursty_but_welcome_account_is_spared() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            let decision = if i < 20 { Some((0.4, true)) } else { None };
            reqs.push((0, i + 1, 0.01 * i as f64, decision));
        }
        let out = synthetic(64, false, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(
            report.detections.is_empty(),
            "high-acceptance bursts are not sybil-like"
        );
    }

    /// min_decided gating: a burst with no decisions yet cannot fire.
    #[test]
    fn undecided_requests_do_not_trigger() {
        let mut reqs = Vec::new();
        for i in 0..40u32 {
            reqs.push((0, i + 1, 0.01 * i as f64, None));
        }
        let out = synthetic(64, true, &reqs);
        let report = replay(&out, &strict_rule());
        assert!(report.detections.is_empty());
    }
}
