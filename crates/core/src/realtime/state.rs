//! The per-account streaming state machine, shared by the sequential
//! [`replay`](super::replay) and the sharded `sybil-serve` engine.
//!
//! Both engines must apply *identical* transitions for their reports to be
//! byte-identical, so every transition and every gating predicate lives
//! here exactly once. The engines differ only in who applies them (one
//! loop vs. the shard owning the account) and in how clustering links are
//! counted (hash-set pair probes vs. CSR snapshot kernels) — which is why
//! [`features_with`] takes the link counter as a closure.

use crate::realtime::RealtimeConfig;
use osn_graph::{NodeId, Timestamp};
use std::collections::{HashSet, VecDeque};
use sybil_features::FeatureVector;

/// The detector tracks at most this many friends per account (the paper's
/// deployed system capped per-account neighbor state the same way).
pub const MAX_TRACKED_FRIENDS: usize = 50;

/// Running per-account state derived from the event stream so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Requests sent (frozen once the account is detected).
    pub sent: u32,
    /// Outgoing requests accepted.
    pub accepted: u32,
    /// Outgoing requests rejected.
    pub rejected: u32,
    /// Send times (seconds) inside the trailing window.
    pub recent_sends: VecDeque<u64>,
    /// Historical max sends in any trailing window.
    pub peak_1h: u32,
    /// First ≤ [`MAX_TRACKED_FRIENDS`] friends, in acquisition order.
    pub friends: Vec<NodeId>,
    /// True once `friends` holds a repeated id (two accepted requests
    /// between the same pair). Link counting must then fall back to exact
    /// pair probes: the marked-set kernel assumes distinct ids.
    pub friends_dup: bool,
    /// The rule fired; the account is out of the stream.
    pub detected: bool,
}

impl AccountState {
    /// Apply a send at `at`, maintaining the trailing-window peak.
    pub fn on_send(&mut self, at: Timestamp, window_s: u64) {
        self.sent += 1;
        self.recent_sends.push_back(at.as_secs());
        let cutoff = at.as_secs().saturating_sub(window_s);
        while self.recent_sends.front().is_some_and(|&s| s <= cutoff) {
            self.recent_sends.pop_front();
        }
        // Saturating, not `as`: the window length is bounded by sends per
        // hour in practice, and a clamped peak stays a true upper bound
        // where a truncating cast would wrap to a small (wrong) one.
        self.peak_1h = self
            .peak_1h
            .max(crate::ids::saturating_u32(self.recent_sends.len()));
    }

    /// An outgoing request was accepted: `to` becomes a friend.
    pub fn on_accept_out(&mut self, to: NodeId) {
        self.accepted += 1;
        self.push_friend(to);
    }

    /// An outgoing request was rejected.
    pub fn on_reject_out(&mut self) {
        self.rejected += 1;
    }

    /// An incoming request from `from` was accepted by this account.
    pub fn on_accept_in(&mut self, from: NodeId) {
        self.push_friend(from);
    }

    fn push_friend(&mut self, id: NodeId) {
        if self.friends.len() < MAX_TRACKED_FRIENDS {
            if self.friends.contains(&id) {
                self.friends_dup = true;
            }
            self.friends.push(id);
        }
    }

    /// Fold every field — counters, trailing-window contents, friend
    /// list in acquisition order, flags — into `d`. Two states with equal
    /// digests behave identically on every future event, which is the
    /// property crash-replay recovery verifies at epoch barriers.
    pub fn digest_into(&self, d: &mut crate::digest::Digest64) {
        d.write_u32(self.sent);
        d.write_u32(self.accepted);
        d.write_u32(self.rejected);
        d.write_usize(self.recent_sends.len());
        for &s in &self.recent_sends {
            d.write_u64(s);
        }
        d.write_u32(self.peak_1h);
        d.write_usize(self.friends.len());
        for f in &self.friends {
            d.write_u32(f.0);
        }
        d.write_bool(self.friends_dup);
        d.write_bool(self.detected);
    }

    /// Outgoing requests decided either way.
    #[inline]
    pub fn decided(&self) -> u32 {
        self.accepted + self.rejected
    }

    /// Should the detector evaluate after this send? (Caller has already
    /// applied [`on_send`](Self::on_send).)
    #[inline]
    pub fn should_check_on_send(&self, cfg: &RealtimeConfig) -> bool {
        self.sent as usize >= cfg.warmup_requests
            && (self.sent as usize).is_multiple_of(cfg.check_every)
    }

    /// Should the detector re-evaluate after a decision on one of this
    /// account's outgoing requests?
    #[inline]
    pub fn should_check_on_decide(&self, cfg: &RealtimeConfig) -> bool {
        self.sent as usize >= cfg.warmup_requests
            && (self.decided() as usize).is_multiple_of(cfg.check_every)
    }
}

/// Canonical packed key for the undirected edge `a — b`.
#[inline]
pub fn pack_edge(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Links among `friends` by exact pair probes against the accepted-edge
/// set — the reference counter (quadratic in the friend cap, but the cap
/// is [`MAX_TRACKED_FRIENDS`]).
pub fn links_via_edges(friends: &[NodeId], edges: &HashSet<u64>) -> usize {
    let mut links = 0usize;
    for i in 0..friends.len() {
        for j in (i + 1)..friends.len() {
            if edges.contains(&pack_edge(friends[i], friends[j])) {
                links += 1;
            }
        }
    }
    links
}

/// Features computable from the stream so far; `None` when the ratio
/// condition lacks data (the detector stays conservative rather than
/// flagging accounts it barely knows). `links` counts friend-to-friend
/// edges and must agree with [`links_via_edges`] — engines may substitute
/// a snapshot kernel only where the counts are provably equal.
pub fn features_with(
    st: &AccountState,
    cfg: &RealtimeConfig,
    links: impl FnOnce(&[NodeId]) -> usize,
) -> Option<FeatureVector> {
    let decided = st.decided();
    if (decided as usize) < cfg.min_decided || st.friends.len() < cfg.min_friends {
        return None;
    }
    let k = st.friends.len();
    let cc = if k < 2 {
        0.0
    } else {
        links(&st.friends) as f64 / (k * (k - 1) / 2) as f64
    };
    Some(FeatureVector {
        inv_freq_1h: st.peak_1h as f64,
        inv_freq_400h: st.sent as f64, // long-scale proxy: total so far
        outgoing_accept_ratio: st.accepted as f64 / decided as f64,
        incoming_accept_ratio: 1.0, // not used by the outgoing-side rule
        clustering_coefficient: cc,
    })
}

/// Advance the deterministic audit cursor (an LCG over log positions).
/// Every engine replica steps this at the same global send cadence, so all
/// agree on which account the verification team samples next.
#[inline]
pub fn advance_audit_cursor(cursor: usize, log_len: usize) -> usize {
    cursor
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        % log_len.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_window_tracks_peak() {
        let mut st = AccountState::default();
        let w = 3600;
        for h in [2u64, 2, 2] {
            st.on_send(Timestamp::from_hours(h), w);
        }
        assert_eq!(st.peak_1h, 3);
        // Two hours later the window is empty again; peak is historical.
        st.on_send(Timestamp::from_hours(4), w);
        assert_eq!(st.recent_sends.len(), 1);
        assert_eq!(st.peak_1h, 3);
        assert_eq!(st.sent, 4);
    }

    #[test]
    fn friend_cap_and_dup_flag() {
        let mut st = AccountState::default();
        for i in 0..60u32 {
            st.on_accept_out(NodeId(i));
        }
        assert_eq!(st.friends.len(), MAX_TRACKED_FRIENDS);
        assert!(!st.friends_dup);
        assert_eq!(st.accepted, 60);
        let mut st = AccountState::default();
        st.on_accept_out(NodeId(7));
        st.on_accept_in(NodeId(7));
        assert!(st.friends_dup);
    }

    #[test]
    fn links_via_edges_counts_pairs() {
        let mut edges = HashSet::new();
        edges.insert(pack_edge(NodeId(1), NodeId(2)));
        edges.insert(pack_edge(NodeId(2), NodeId(3)));
        let friends = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(links_via_edges(&friends, &edges), 2);
    }

    #[test]
    fn audit_cursor_is_deterministic_and_in_range() {
        let mut c = 1usize;
        for _ in 0..100 {
            c = advance_audit_cursor(c, 37);
            assert!(c < 37);
        }
        assert_eq!(
            advance_audit_cursor(1, 37),
            advance_audit_cursor(1, 37)
        );
        // Degenerate empty log must not divide by zero.
        assert_eq!(advance_audit_cursor(1, 0), 0);
    }
}
