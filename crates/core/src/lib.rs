//! # sybil-core — measurement-based Sybil detectors
//!
//! The paper's primary contribution (§2.3): given the behavioral features
//! of `sybil-features`, detect Sybils in (near) real time. Two classifier
//! families are compared in Table 1:
//!
//! * a **threshold classifier** — the paper's
//!   `accept-ratio < 0.5 ∧ invitation-frequency ≥ 20 ∧ cc < 0.01` rule
//!   ([`threshold`]), with data-driven calibration;
//! * a **support-vector machine** ([`svm`]) — implemented from scratch
//!   (linear Pegasos and RBF-kernel SMO) because the Rust ML ecosystem is
//!   not part of this workspace's sanctioned dependencies.
//!
//! [`bayes`] and [`logistic`] implement the related-work baseline
//! families §4 compares against (Bayesian filters, regression
//! classifiers). [`adaptive`] implements an adaptive feedback scheme in the spirit of
//! the deployed detector (Renren's actual scheme is confidential; ours is
//! a documented reconstruction). [`realtime`] replays a simulation's
//! request log through a streaming detector, the way the production system
//! consumed Renren's event stream. [`eval`] provides the confusion-matrix
//! and cross-validation machinery behind Table 1.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod bayes;
pub mod digest;
pub mod error;
pub mod eval;
pub mod ids;
pub mod logistic;
pub mod realtime;
pub mod svm;
pub mod threshold;

pub use adaptive::AdaptiveThresholds;
pub use bayes::NaiveBayes;
pub use error::Error;
pub use eval::ConfusionMatrix;
pub use logistic::LogisticRegression;
pub use svm::{KernelSvm, LinearSvm, Scaler};
pub use threshold::ThresholdClassifier;

use sybil_features::FeatureVector;

/// A trained binary classifier over behavioral features
/// (`true` = predicted Sybil).
pub trait Classifier {
    /// Predict whether the account is a Sybil.
    fn is_sybil(&self, features: &FeatureVector) -> bool;

    /// A real-valued score, larger = more Sybil-like (used for ROC
    /// curves). Default: 1.0/0.0 from the hard decision.
    fn score(&self, features: &FeatureVector) -> f64 {
        if self.is_sybil(features) {
            1.0
        } else {
            0.0
        }
    }
}
