//! Linear SVM trained with Pegasos (primal stochastic sub-gradient
//! descent, Shalev-Shwartz et al. 2007).
//!
//! Pegasos minimizes `λ/2‖w‖² + (1/n) Σ max(0, 1 − yᵢ(w·xᵢ + b))` with
//! step size `1/(λt)`. It converges in `Õ(1/(λε))` iterations independent
//! of dataset size — far more than enough for the paper's 1600-example
//! training folds.

use crate::svm::Scaler;
use crate::Classifier;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_features::FeatureVector;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinearSvmParams {
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of stochastic steps.
    pub steps: usize,
    /// RNG seed for example sampling.
    pub seed: u64,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams {
            lambda: 1e-4,
            steps: 200_000,
            seed: 0x5EED,
        }
    }
}

/// A trained linear SVM with built-in feature standardization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearSvm {
    scaler: Scaler,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Train on feature rows and boolean labels (`true` = Sybil = +1).
    ///
    /// Panics on empty or single-class input.
    pub fn train(rows: &[Vec<f64>], labels: &[bool], params: &LinearSvmParams) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "cannot train on no data");
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "need both classes to train"
        );
        let scaler = Scaler::fit(rows);
        let x = scaler.transform_all(rows);
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let d = x[0].len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let lambda = params.lambda.max(1e-12);
        for t in 1..=params.steps {
            let i = rng.random_range(0..x.len());
            let eta = 1.0 / (lambda * t as f64);
            let margin = y[i] * (dot(&w, &x[i]) + b);
            // Regularization shrink.
            let shrink = 1.0 - eta * lambda;
            for wj in w.iter_mut() {
                *wj *= shrink;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(&x[i]) {
                    *wj += eta * y[i] * xj;
                }
                b += eta * y[i];
            }
        }
        LinearSvm {
            scaler,
            weights: w,
            bias: b,
        }
    }

    /// Train directly from [`FeatureVector`]s.
    pub fn train_features(
        features: &[FeatureVector],
        labels: &[bool],
        params: &LinearSvmParams,
    ) -> Self {
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        Self::train(&rows, labels, params)
    }

    /// Signed decision value for a raw (unscaled) feature row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let x = self.scaler.transform(row);
        dot(&self.weights, &x) + self.bias
    }

    /// The learned weights (in standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        self.decision(&f.as_array()) > 0.0
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        self.decision(&f.as_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, gap: f64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Two Gaussian-ish blobs along both dimensions, deterministic.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let jitter = ((i * 7919) % 100) as f64 / 100.0 - 0.5;
            rows.push(vec![gap + jitter, gap + jitter * 0.5]);
            labels.push(true);
            rows.push(vec![-gap + jitter, -gap - jitter * 0.5]);
            labels.push(false);
        }
        (rows, labels)
    }

    #[test]
    fn separable_blobs_perfectly_classified() {
        let (rows, labels) = blobs(200, 2.0);
        let svm = LinearSvm::train(&rows, &labels, &LinearSvmParams::default());
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(svm.decision(r) > 0.0, l);
        }
    }

    #[test]
    fn decision_margin_sign_symmetry() {
        let (rows, labels) = blobs(100, 3.0);
        let svm = LinearSvm::train(&rows, &labels, &LinearSvmParams::default());
        assert!(svm.decision(&[5.0, 5.0]) > 0.0);
        assert!(svm.decision(&[-5.0, -5.0]) < 0.0);
        // Deeper in the positive region -> larger score.
        assert!(svm.decision(&[5.0, 5.0]) > svm.decision(&[0.5, 0.5]));
    }

    #[test]
    fn deterministic_training() {
        let (rows, labels) = blobs(50, 2.0);
        let p = LinearSvmParams::default();
        let a = LinearSvm::train(&rows, &labels, &p);
        let b = LinearSvm::train(&rows, &labels, &p);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn single_class_rejected() {
        let rows = vec![vec![1.0], vec![2.0]];
        let labels = vec![true, true];
        LinearSvm::train(&rows, &labels, &LinearSvmParams::default());
    }

    #[test]
    fn classifier_trait_via_features() {
        let features: Vec<FeatureVector> = (0..100)
            .map(|i| FeatureVector {
                inv_freq_1h: if i % 2 == 0 { 40.0 } else { 2.0 },
                inv_freq_400h: 0.0,
                outgoing_accept_ratio: if i % 2 == 0 { 0.2 } else { 0.8 },
                incoming_accept_ratio: 1.0,
                clustering_coefficient: 0.01,
            })
            .collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let svm = LinearSvm::train_features(&features, &labels, &LinearSvmParams::default());
        let correct = features
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| svm.is_sybil(f) == l)
            .count();
        assert_eq!(correct, 100);
    }
}
