//! RBF-kernel SVM trained with simplified SMO (Platt 1998, simplified per
//! the Stanford CS229 variant): pick multiplier pairs violating the KKT
//! conditions and solve the two-variable sub-problem analytically.
//!
//! For the paper's 1600-example training folds an `O(n²)` kernel cache is
//! tiny; convergence takes a few dozen passes.

use crate::svm::Scaler;
use crate::Classifier;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_features::FeatureVector;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelSvmParams {
    /// Soft-margin penalty C.
    pub c: f64,
    /// RBF width γ: `K(a,b) = exp(-γ‖a−b‖²)`.
    pub gamma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Stop after this many consecutive passes without updates.
    pub max_quiet_passes: usize,
    /// Hard cap on total passes.
    pub max_passes: usize,
    /// Seed for partner selection.
    pub seed: u64,
}

impl Default for KernelSvmParams {
    fn default() -> Self {
        KernelSvmParams {
            c: 10.0,
            gamma: 0.5,
            tol: 1e-3,
            max_quiet_passes: 3,
            max_passes: 200,
            seed: 0xC0FFEE,
        }
    }
}

/// A trained RBF SVM: support vectors, multipliers, bias, and the scaler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelSvm {
    scaler: Scaler,
    support: Vec<Vec<f64>>,
    alpha_y: Vec<f64>, // αᵢ yᵢ for each support vector
    bias: f64,
    gamma: f64,
}

impl KernelSvm {
    /// Train on raw feature rows and boolean labels (`true` = Sybil).
    pub fn train(rows: &[Vec<f64>], labels: &[bool], params: &KernelSvmParams) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "cannot train on no data");
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "need both classes to train"
        );
        let scaler = Scaler::fit(rows);
        let x = scaler.transform_all(rows);
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let n = x.len();
        // Kernel cache.
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = rbf(&x[i], &x[j], params.gamma);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let f = |alpha: &[f64], b: f64, k: &[f64], y: &[f64], i: usize| -> f64 {
            let mut s = b;
            for j in 0..y.len() {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k[i * y.len() + j];
                }
            }
            s
        };
        let mut quiet = 0usize;
        let mut passes = 0usize;
        while quiet < params.max_quiet_passes && passes < params.max_passes {
            passes += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, &k, &y, i) - y[i];
                let violates = (y[i] * ei < -params.tol && alpha[i] < params.c)
                    || (y[i] * ei > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Random partner ≠ i.
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, &k, &y, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (params.c + aj_old - ai_old).min(params.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - params.c).max(0.0),
                        (ai_old + aj_old).min(params.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b - ei
                    - y[i] * (ai - ai_old) * k[i * n + i]
                    - y[j] * (aj - aj_old) * k[i * n + j];
                let b2 = b - ej
                    - y[i] * (ai - ai_old) * k[i * n + j]
                    - y[j] * (aj - aj_old) * k[j * n + j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                quiet += 1;
            } else {
                quiet = 0;
            }
        }
        // Keep only support vectors.
        let mut support = Vec::new();
        let mut alpha_y = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support.push(x[i].clone());
                alpha_y.push(alpha[i] * y[i]);
            }
        }
        KernelSvm {
            scaler,
            support,
            alpha_y,
            bias: b,
            gamma: params.gamma,
        }
    }

    /// Train directly from [`FeatureVector`]s.
    pub fn train_features(
        features: &[FeatureVector],
        labels: &[bool],
        params: &KernelSvmParams,
    ) -> Self {
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        Self::train(&rows, labels, params)
    }

    /// Signed decision value for a raw feature row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let x = self.scaler.transform(row);
        let mut s = self.bias;
        for (sv, ay) in self.support.iter().zip(&self.alpha_y) {
            s += ay * rbf(sv, &x, self.gamma);
        }
        s
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

impl Classifier for KernelSvm {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        self.decision(&f.as_array()) > 0.0
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        self.decision(&f.as_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearly_separable_case() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let j = (i % 10) as f64 / 10.0;
            rows.push(vec![2.0 + j, 2.0 - j]);
            labels.push(true);
            rows.push(vec![-2.0 - j, -2.0 + j]);
            labels.push(false);
        }
        let svm = KernelSvm::train(&rows, &labels, &KernelSvmParams::default());
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(svm.decision(r) > 0.0, l, "row {r:?}");
        }
        assert!(svm.num_support_vectors() > 0);
    }

    #[test]
    fn xor_requires_kernel() {
        // XOR is not linearly separable; RBF handles it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..25 {
            let j = (i % 5) as f64 * 0.02;
            for (sx, sy) in [(1.0, 1.0), (-1.0, -1.0)] {
                rows.push(vec![sx + j, sy - j]);
                labels.push(true);
            }
            for (sx, sy) in [(1.0, -1.0), (-1.0, 1.0)] {
                rows.push(vec![sx - j, sy + j]);
                labels.push(false);
            }
        }
        let svm = KernelSvm::train(
            &rows,
            &labels,
            &KernelSvmParams {
                gamma: 1.0,
                ..KernelSvmParams::default()
            },
        );
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| (svm.decision(r) > 0.0) == l)
            .count();
        assert!(
            correct as f64 / rows.len() as f64 > 0.95,
            "XOR accuracy {correct}/{}",
            rows.len()
        );
    }

    #[test]
    fn deterministic_training() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![-1.0, 0.0],
            vec![-0.9, -0.1],
        ];
        let labels = vec![true, true, false, false];
        let p = KernelSvmParams::default();
        let a = KernelSvm::train(&rows, &labels, &p);
        let b = KernelSvm::train(&rows, &labels, &p);
        assert_eq!(a.decision(&[0.5, 0.0]), b.decision(&[0.5, 0.0]));
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn single_class_rejected() {
        KernelSvm::train(
            &[vec![1.0], vec![2.0]],
            &[false, false],
            &KernelSvmParams::default(),
        );
    }
}
