//! Support-vector machines, from scratch.
//!
//! The paper trains an SVM on the 1000+1000 ground truth and reports
//! ≈ 99% accuracy (Table 1). The Rust ML ecosystem is outside this
//! workspace's sanctioned dependency set, so both a linear SVM (Pegasos
//! stochastic sub-gradient descent) and an RBF-kernel SVM (simplified SMO)
//! are implemented and tested here.

pub mod kernel;
pub mod linear;
pub mod scale;

pub use kernel::KernelSvm;
pub use linear::LinearSvm;
pub use scale::Scaler;
