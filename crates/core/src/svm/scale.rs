//! Feature standardization (z-scores).
//!
//! SVMs are scale-sensitive; invitation frequencies span 0–100 while
//! ratios live in [0, 1]. The scaler is fit on training data only and
//! applied to held-out data, as in any sound CV protocol.

use serde::{Deserialize, Serialize};

/// Per-dimension standardizer: `x → (x − mean) / sd`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl Scaler {
    /// Fit to rows of equal dimension. Panics on empty input.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler to no data");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            assert_eq!(r.len(), d, "ragged feature rows");
            for (m, &x) in mean.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for r in rows {
            for ((v, &x), &m) in var.iter_mut().zip(r).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let sd = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0 // constant feature: leave centered, unscaled
                } else {
                    s
                }
            })
            .collect();
        Scaler { mean, sd }
    }

    /// Dimensionality.
    pub(crate) fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardize one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim());
        row.iter()
            .zip(&self.mean)
            .zip(&self.sd)
            .map(|((&x, &m), &s)| (x - m) / s)
            .collect()
    }

    /// Standardize many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let sc = Scaler::fit(&rows);
        let t = sc.transform_all(&rows);
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_not_divided_by_zero() {
        let rows = vec![vec![7.0], vec![7.0]];
        let sc = Scaler::fit(&rows);
        let t = sc.transform(&[7.0]);
        assert_eq!(t, vec![0.0]);
        let t2 = sc.transform(&[9.0]);
        assert_eq!(t2, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "cannot fit scaler to no data")]
    fn empty_rejected() {
        Scaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged feature rows")]
    fn ragged_rejected() {
        Scaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
