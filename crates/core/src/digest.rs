//! Order-sensitive 64-bit state digests.
//!
//! The serving engine journals a digest of every shard's
//! [`realtime::state`](crate::realtime::state) at each epoch barrier so a
//! crash-replayed shard can be checked for *byte-identical* recovery
//! (DESIGN.md §"Fault model & recovery"). The digest must therefore be a
//! pure function of the logical state — no addresses, no hash-map
//! iteration order, no floating-point re-association — and stable across
//! shard counts and thread counts. An xor-multiply-shift fold over 64-bit
//! words satisfies all of that at roughly one multiply per field — the
//! barrier digests full shard state every epoch, so the fold is sized for
//! words, not bytes. This is an integrity check against divergence bugs,
//! not a cryptographic commitment, so collision resistance beyond 64 bits
//! is not a goal.

/// Incremental word-wise digest over a canonical field encoding.
///
/// Fields are folded in call order, so two digests agree iff the same
/// field values arrive in the same sequence — exactly the "byte-identical
/// state" contract the recovery checker needs.
#[derive(Clone, Copy, Debug)]
pub struct Digest64 {
    state: u64,
}

/// Seed (the FNV-1a offset basis, kept from the original byte-wise fold).
const SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// Odd multiplier (the SplitMix64/golden-ratio constant): the multiply
/// diffuses low input bits upward, the shift folds them back down.
const MULT: u64 = 0x9e37_79b9_7f4a_7c15;

impl Default for Digest64 {
    fn default() -> Self {
        Digest64 { state: SEED }
    }
}

impl Digest64 {
    /// Fresh digest at the seed.
    pub fn new() -> Self {
        Digest64::default()
    }

    /// Fold one 64-bit word (the primitive every writer reduces to).
    #[inline]
    fn write_word(&mut self, v: u64) {
        let x = (self.state ^ v).wrapping_mul(MULT);
        self.state = x ^ (x >> 32);
    }

    /// Fold a `u32` widened to a word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_word(v as u64);
    }

    /// Fold a `u64`.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_word(v);
    }

    /// Fold a `usize` widened to `u64` (stable across platforms).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_word(v as u64);
    }

    /// Fold an `f64` by its IEEE-754 bit pattern. Bit equality is the
    /// right notion here: the replay contract is *byte*-identical state,
    /// so `-0.0` vs `0.0` or differently-rounded sums must differ.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_word(v.to_bits());
    }

    /// Fold a boolean as one word.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_word(u64::from(v));
    }

    /// The digest of everything folded so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let mut a = Digest64::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Digest64::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Digest64::new();
        c.write_u32(1);
        c.write_u32(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn float_digest_uses_bit_patterns() {
        let mut a = Digest64::new();
        a.write_f64(0.0);
        let mut b = Digest64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_digest_is_the_seed() {
        assert_eq!(Digest64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn every_input_bit_reaches_the_digest() {
        // Flipping any single bit of a folded word must change the
        // digest — the property that makes single-field divergence
        // visible to the recovery checker.
        let mut base = Digest64::new();
        base.write_u64(0);
        for bit in 0..64 {
            let mut d = Digest64::new();
            d.write_u64(1u64 << bit);
            assert_ne!(d.finish(), base.finish(), "bit {bit} vanished");
        }
    }
}
