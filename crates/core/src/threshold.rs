//! The paper's threshold classifier.
//!
//! §2.3 compares an SVM against "a threshold-based detector: outgoing
//! requests accepted ratio < 0.5 ∧ frequency < 20 ∧ cc < 0.01" and finds
//! both ≈ 99% accurate. (The frequency direction as printed contradicts
//! Fig. 1, which shows Sybils *above* 20 invitations per interval and
//! normal users below — we read it as the obvious typo and flag accounts
//! whose frequency *exceeds* the threshold.)
//!
//! The paper's constants were tuned on Renren; our simulated substrate has
//! different absolute scales (clustering in particular is graph-size
//! dependent), so [`ThresholdClassifier::calibrate`] re-derives the three
//! cut points from a labeled sample exactly the way the authors derived
//! theirs from the 1000+1000 ground truth.

use crate::Classifier;
use serde::{Deserialize, Serialize};
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureVector;

/// Conjunctive three-feature threshold rule: Sybil iff
/// `out_ratio < max_out_ratio` ∧ `freq_1h > min_freq` ∧ `cc < max_cc`.
///
/// ```
/// use sybil_core::{Classifier, ThresholdClassifier};
/// use sybil_features::FeatureVector;
///
/// let rule = ThresholdClassifier::paper();
/// let burst_spammer = FeatureVector {
///     inv_freq_1h: 45.0,
///     inv_freq_400h: 300.0,
///     outgoing_accept_ratio: 0.2,
///     incoming_accept_ratio: 1.0,
///     clustering_coefficient: 0.001,
/// };
/// assert!(rule.is_sybil(&burst_spammer));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThresholdClassifier {
    /// Flag if the outgoing accept ratio is below this.
    pub max_out_ratio: f64,
    /// Flag if the 1-hour invitation frequency exceeds this.
    pub min_freq: f64,
    /// Flag if the first-50 clustering coefficient is below this. Set to
    /// `f64::INFINITY` to disable the clustering condition.
    pub max_cc: f64,
}

impl Default for ThresholdClassifier {
    /// Defaults to the paper's published constants.
    fn default() -> Self {
        Self::paper()
    }
}

impl ThresholdClassifier {
    /// The constants as printed in the paper (§2.3), with the frequency
    /// comparison read in the Fig.-1-consistent direction.
    pub fn paper() -> Self {
        ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 20.0,
            max_cc: 0.01,
        }
    }

    /// Derive thresholds from labeled training data.
    ///
    /// Two stages, mirroring how the authors tuned their rule on the
    /// 1000+1000 sample: (1) a 1-D sweep per feature finds each cut's solo
    /// optimum; (2) a small grid search around those optima — including
    /// "condition disabled" — maximizes the balanced accuracy of the
    /// actual *conjunction*, because per-feature-optimal cuts compose
    /// poorly (every extra condition can only lower Sybil recall).
    pub fn calibrate(train: &GroundTruth) -> Self {
        let ratio = sweep_best(train, |f| f.outgoing_accept_ratio, true).0;
        let freq = sweep_best(train, |f| f.inv_freq_1h, false).0;
        let cc = sweep_best(train, |f| f.clustering_coefficient, true).0;
        // Candidate grids: solo cut, progressively lenient variants, off.
        let ratio_cands = [ratio, ratio * 1.15, ratio * 1.35, f64::INFINITY];
        let freq_cands = [freq, freq * 0.85, freq * 0.65, f64::NEG_INFINITY];
        let cc_cands = [cc, cc * 1.4, cc * 2.0, f64::INFINITY];
        let n_sybil = train.num_sybil().max(1) as f64;
        let n_normal = (train.len() - train.num_sybil()).max(1) as f64;
        let mut best = (f64::NEG_INFINITY, Self::paper());
        for &r in &ratio_cands {
            for &q in &freq_cands {
                for &c in &cc_cands {
                    let rule = ThresholdClassifier {
                        max_out_ratio: r,
                        min_freq: q,
                        max_cc: c,
                    };
                    let mut tp = 0.0;
                    let mut tn = 0.0;
                    for (f, &label) in train.features.iter().zip(&train.labels) {
                        match (label, rule.is_sybil(f)) {
                            (true, true) => tp += 1.0,
                            (false, false) => tn += 1.0,
                            _ => {}
                        }
                    }
                    // Prefer fewer conditions on exact ties: a condition
                    // that adds nothing on training data is only downside
                    // under distribution shift.
                    let enabled = r.is_finite() as u8 + (q != f64::NEG_INFINITY) as u8
                        + c.is_finite() as u8;
                    let bal =
                        0.5 * (tp / n_sybil + tn / n_normal) - 1e-9 * enabled as f64;
                    if bal > best.0 {
                        best = (bal, rule);
                    }
                }
            }
        }
        best.1
    }
}

/// Sweep candidate cut points for one feature; returns `(threshold,
/// balanced_accuracy)`. `sybil_below` states the Sybil side of the cut.
fn sweep_best<F: Fn(&FeatureVector) -> f64>(
    train: &GroundTruth,
    feature: F,
    sybil_below: bool,
) -> (f64, f64) {
    let mut values: Vec<f64> = train.features.iter().map(&feature).collect();
    values.sort_by(f64::total_cmp);
    values.dedup();
    let n_sybil = train.num_sybil().max(1) as f64;
    let n_normal = (train.len() - train.num_sybil()).max(1) as f64;
    let mut best = (0.0, 0.0);
    // Candidate cuts: midpoints between consecutive distinct values.
    for w in values.windows(2) {
        let cut = 0.5 * (w[0] + w[1]);
        let mut tp = 0.0;
        let mut tn = 0.0;
        for (f, &label) in train.features.iter().zip(&train.labels) {
            let v = feature(f);
            let predicted_sybil = if sybil_below { v < cut } else { v > cut };
            match (label, predicted_sybil) {
                (true, true) => tp += 1.0,
                (false, false) => tn += 1.0,
                _ => {}
            }
        }
        let bal = 0.5 * (tp / n_sybil + tn / n_normal);
        if bal > best.1 {
            best = (cut, bal);
        }
    }
    best
}

impl Classifier for ThresholdClassifier {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        f.outgoing_accept_ratio < self.max_out_ratio
            && f.inv_freq_1h > self.min_freq
            && f.clustering_coefficient < self.max_cc
    }

    /// Soft score for ROC sweeps: the sum of normalized signed margins of
    /// every *enabled* condition (disabled conditions contribute nothing —
    /// a constant term would collapse the ranking to ties).
    fn score(&self, f: &FeatureVector) -> f64 {
        let mut s = 0.0;
        if self.max_out_ratio.is_finite() {
            s += (self.max_out_ratio - f.outgoing_accept_ratio).clamp(-3.0, 3.0);
        }
        if self.min_freq != f64::NEG_INFINITY {
            let denom = self.min_freq.abs().max(1.0);
            s += ((f.inv_freq_1h - self.min_freq) / denom).clamp(-3.0, 3.0);
        }
        if self.max_cc.is_finite() {
            let denom = self.max_cc.abs().max(1e-9);
            s += ((self.max_cc - f.clustering_coefficient) / denom).clamp(-3.0, 3.0);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::NodeId;

    fn fv(freq: f64, ratio: f64, cc: f64) -> FeatureVector {
        FeatureVector {
            inv_freq_1h: freq,
            inv_freq_400h: freq * 10.0,
            outgoing_accept_ratio: ratio,
            incoming_accept_ratio: 1.0,
            clustering_coefficient: cc,
        }
    }

    #[test]
    fn paper_rule_classifies_archetypes() {
        let rule = ThresholdClassifier::paper();
        // Textbook Sybil: bursty, ignored, unclustered.
        assert!(rule.is_sybil(&fv(40.0, 0.25, 0.001)));
        // Textbook normal.
        assert!(!rule.is_sybil(&fv(2.0, 0.8, 0.04)));
        // Any failed condition blocks the conjunction.
        assert!(!rule.is_sybil(&fv(10.0, 0.25, 0.001))); // freq low
        assert!(!rule.is_sybil(&fv(40.0, 0.7, 0.001))); // ratio high
        assert!(!rule.is_sybil(&fv(40.0, 0.25, 0.2))); // clustered
    }

    fn synthetic_ground_truth(cc_informative: bool) -> GroundTruth {
        let mut ds = GroundTruth::default();
        for i in 0..100 {
            let jitter = i as f64 * 0.001;
            // Sybil: freq ~ 35, ratio ~ 0.2, cc ~ 0.001 (or noise).
            ds.features.push(fv(
                35.0 + jitter,
                0.2 + jitter,
                if cc_informative { 0.001 + jitter * 0.01 } else { 0.1 + jitter },
            ));
            ds.labels.push(true);
            ds.nodes.push(NodeId(i));
            // Normal: freq ~ 2, ratio ~ 0.8, cc ~ 0.05 (or same noise).
            ds.features.push(fv(
                2.0 + jitter,
                0.8 - jitter,
                if cc_informative { 0.05 + jitter * 0.01 } else { 0.1 + jitter },
            ));
            ds.labels.push(false);
            ds.nodes.push(NodeId(1000 + i));
        }
        ds
    }

    #[test]
    fn calibrate_finds_separating_cuts() {
        let ds = synthetic_ground_truth(true);
        let rule = ThresholdClassifier::calibrate(&ds);
        // Every *enabled* condition must separate the synthetic classes;
        // redundant conditions may be disabled (tie-break prefers fewer).
        if rule.min_freq != f64::NEG_INFINITY {
            assert!(rule.min_freq > 2.0 && rule.min_freq < 35.0);
        }
        if rule.max_out_ratio.is_finite() {
            assert!(rule.max_out_ratio > 0.2 && rule.max_out_ratio < 0.8);
        }
        if rule.max_cc.is_finite() {
            assert!(rule.max_cc > 0.001 && rule.max_cc < 0.15);
        }
        let enabled = rule.max_out_ratio.is_finite() as u8
            + (rule.min_freq != f64::NEG_INFINITY) as u8
            + rule.max_cc.is_finite() as u8;
        assert!(enabled >= 1, "at least one condition must survive");
        // Perfect on training data.
        for (f, &l) in ds.features.iter().zip(&ds.labels) {
            assert_eq!(rule.is_sybil(f), l);
        }
    }

    #[test]
    fn calibrate_disables_uninformative_feature() {
        let ds = synthetic_ground_truth(false); // cc identical across classes
        let rule = ThresholdClassifier::calibrate(&ds);
        assert!(rule.max_cc.is_infinite(), "weak cc must be disabled");
        // Classifier still works through the other two features.
        for (f, &l) in ds.features.iter().zip(&ds.labels) {
            assert_eq!(rule.is_sybil(f), l);
        }
    }

    #[test]
    fn score_orders_sybilness() {
        let rule = ThresholdClassifier::paper();
        let sybil = rule.score(&fv(40.0, 0.1, 0.001));
        let borderline = rule.score(&fv(40.0, 0.45, 0.001));
        let normal = rule.score(&fv(2.0, 0.8, 0.04));
        assert!(sybil > borderline);
        assert!(borderline > normal);
    }
}
