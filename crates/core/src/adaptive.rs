//! Adaptive threshold tuning.
//!
//! The deployed detector "uses an adaptive feedback scheme to dynamically
//! tune threshold parameters on the fly" (§2.3); the paper withholds the
//! scheme for confidentiality. This module is our documented
//! reconstruction: the verification team's confirmed labels stream back
//! into exponentially-weighted quantile estimates per class, and each
//! threshold is re-placed between the Sybil-side and normal-side
//! quantiles. When attackers drift (e.g. slow their request rate to duck
//! under the cut), the Sybil-side estimate follows and the threshold moves
//! with it.

use crate::threshold::ThresholdClassifier;
use crate::Classifier;
use serde::{Deserialize, Serialize};
use sybil_features::FeatureVector;

/// Exponentially-weighted quantile tracker (stochastic quantile
/// approximation): the estimate moves up by `step·q` when a sample exceeds
/// it and down by `step·(1−q)` otherwise, converging to the `q`-quantile
/// of the (possibly drifting) input stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QuantileTracker {
    /// Target quantile `q ∈ (0, 1)`.
    pub q: f64,
    /// Step size (relative to an adaptive scale).
    pub step: f64,
    estimate: f64,
    scale: f64,
    seen: u64,
}

impl QuantileTracker {
    /// New tracker starting at `initial`.
    pub fn new(q: f64, step: f64, initial: f64) -> Self {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "q must be in (0,1)");
        QuantileTracker {
            q,
            step,
            estimate: initial,
            scale: initial.abs().max(1.0),
            seen: 0,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.seen += 1;
        // Adaptive scale so step size matches the data's magnitude.
        self.scale = 0.99 * self.scale + 0.01 * x.abs().max(1e-6);
        let delta = self.step * self.scale;
        if x > self.estimate {
            self.estimate += delta * self.q;
        } else {
            self.estimate -= delta * (1.0 - self.q);
        }
    }

    /// Current estimate.
    pub fn value(&self) -> f64 {
        self.estimate
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Fold this tracker's full state into `d` (crash-replay recovery
    /// checks digest the private `estimate`/`scale`/`seen` fields too —
    /// two trackers that agree only on [`value`](Self::value) could still
    /// diverge on the next observation).
    pub fn digest_into(&self, d: &mut crate::digest::Digest64) {
        d.write_f64(self.q);
        d.write_f64(self.step);
        d.write_f64(self.estimate);
        d.write_f64(self.scale);
        d.write_u64(self.seen);
    }

    /// The tracker's full state as five words — the four floats as IEEE-754
    /// bit patterns plus the observation count, in
    /// [`digest_into`](Self::digest_into) order. The representation a
    /// checkpoint persists: bit patterns round-trip exactly where a decimal
    /// rendering would not.
    pub fn to_raw(&self) -> [u64; 5] {
        [
            self.q.to_bits(),
            self.step.to_bits(),
            self.estimate.to_bits(),
            self.scale.to_bits(),
            self.seen,
        ]
    }

    /// Rebuild a tracker from [`to_raw`](Self::to_raw) words. Trusted
    /// input: callers (the checkpoint loader) guard corruption with a
    /// digest over the containing frame, so no `q` range check here.
    pub fn from_raw(raw: [u64; 5]) -> Self {
        QuantileTracker {
            q: f64::from_bits(raw[0]),
            step: f64::from_bits(raw[1]),
            estimate: f64::from_bits(raw[2]),
            scale: f64::from_bits(raw[3]),
            seen: raw[4],
        }
    }
}

/// Adaptive version of the three-feature threshold rule.
///
/// Maintains per-class quantile trackers for each feature; the live
/// thresholds sit at the midpoint between the Sybil-side and normal-side
/// quantile estimates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptiveThresholds {
    // Sybil-side trackers estimate the "easy" quantile of the sybil
    // distribution (e.g. 10th percentile of sybil frequency); normal-side
    // trackers the matching guard quantile of the normal distribution.
    freq_sybil: QuantileTracker,
    freq_normal: QuantileTracker,
    ratio_sybil: QuantileTracker,
    ratio_normal: QuantileTracker,
    cc_sybil: QuantileTracker,
    cc_normal: QuantileTracker,
    /// Whether the clustering condition participates (see
    /// [`ThresholdClassifier::calibrate`] for why it may be disabled).
    pub use_cc: bool,
}

impl AdaptiveThresholds {
    /// Start from an initial rule (e.g. the calibrated one).
    pub fn from_rule(rule: &ThresholdClassifier, step: f64) -> Self {
        let cc0 = if rule.max_cc.is_finite() { rule.max_cc } else { 0.05 };
        // Guard quantiles are deliberately non-extreme (p10/p90 rather
        // than p1/p99): real populations contain degenerate members —
        // brand-new users with accept-ratio 0 — and an extreme guard lets
        // a handful of them drag the midpoint into sybil territory.
        AdaptiveThresholds {
            freq_sybil: QuantileTracker::new(0.10, step, rule.min_freq.max(1.0) * 1.5),
            freq_normal: QuantileTracker::new(0.95, step, rule.min_freq.max(1.0) * 0.5),
            ratio_sybil: QuantileTracker::new(0.90, step, rule.max_out_ratio.min(1.0) * 0.6),
            ratio_normal: QuantileTracker::new(0.10, step, rule.max_out_ratio.min(1.0) * 1.4),
            cc_sybil: QuantileTracker::new(0.90, step, cc0 * 0.5),
            cc_normal: QuantileTracker::new(0.10, step, cc0 * 1.5),
            use_cc: rule.max_cc.is_finite(),
        }
    }

    /// Feed one verified example back into the trackers.
    pub fn feedback(&mut self, features: &FeatureVector, confirmed_sybil: bool) {
        if confirmed_sybil {
            self.freq_sybil.observe(features.inv_freq_1h);
            self.ratio_sybil.observe(features.outgoing_accept_ratio);
            self.cc_sybil.observe(features.clustering_coefficient);
        } else {
            self.freq_normal.observe(features.inv_freq_1h);
            self.ratio_normal.observe(features.outgoing_accept_ratio);
            self.cc_normal.observe(features.clustering_coefficient);
        }
    }

    /// Fold the six trackers (in declaration order) plus the `use_cc`
    /// flag into `d`. Used by the serving engine's epoch journal to pin
    /// replicated adaptive state at barrier time.
    pub fn digest_into(&self, d: &mut crate::digest::Digest64) {
        for t in [
            &self.freq_sybil,
            &self.freq_normal,
            &self.ratio_sybil,
            &self.ratio_normal,
            &self.cc_sybil,
            &self.cc_normal,
        ] {
            t.digest_into(d);
        }
        d.write_bool(self.use_cc);
    }

    /// The full adaptive state as 31 words: the six trackers' raw words
    /// in declaration order followed by the `use_cc` flag — the same
    /// field order [`digest_into`](Self::digest_into) folds.
    pub fn to_raw(&self) -> [u64; 31] {
        let mut out = [0u64; 31];
        let trackers = [
            &self.freq_sybil,
            &self.freq_normal,
            &self.ratio_sybil,
            &self.ratio_normal,
            &self.cc_sybil,
            &self.cc_normal,
        ];
        let (words, flag) = out.split_at_mut(30);
        for (chunk, t) in words.chunks_exact_mut(5).zip(trackers) {
            chunk.copy_from_slice(&t.to_raw());
        }
        flag.copy_from_slice(&[u64::from(self.use_cc)]);
        out
    }

    /// Rebuild adaptive state from [`to_raw`](Self::to_raw) words.
    pub fn from_raw(raw: [u64; 31]) -> Self {
        let (body, flag) = raw.split_at(30);
        let mut words = [[0u64; 5]; 6];
        for (dst, src) in words.iter_mut().flat_map(|w| w.iter_mut()).zip(body) {
            *dst = *src;
        }
        let [freq_s, freq_n, ratio_s, ratio_n, cc_s, cc_n] = words;
        AdaptiveThresholds {
            freq_sybil: QuantileTracker::from_raw(freq_s),
            freq_normal: QuantileTracker::from_raw(freq_n),
            ratio_sybil: QuantileTracker::from_raw(ratio_s),
            ratio_normal: QuantileTracker::from_raw(ratio_n),
            cc_sybil: QuantileTracker::from_raw(cc_s),
            cc_normal: QuantileTracker::from_raw(cc_n),
            use_cc: flag.iter().copied().any(|w| w != 0),
        }
    }

    /// The current live rule.
    pub fn current_rule(&self) -> ThresholdClassifier {
        ThresholdClassifier {
            min_freq: 0.5 * (self.freq_sybil.value() + self.freq_normal.value()),
            max_out_ratio: 0.5 * (self.ratio_sybil.value() + self.ratio_normal.value()),
            max_cc: if self.use_cc {
                0.5 * (self.cc_sybil.value() + self.cc_normal.value())
            } else {
                f64::INFINITY
            },
        }
    }
}

impl Classifier for AdaptiveThresholds {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        self.current_rule().is_sybil(f)
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        self.current_rule().score(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_converges_to_quantile() {
        let mut t = QuantileTracker::new(0.9, 0.05, 0.0);
        // Uniform 0..100 stream (deterministic scramble).
        for i in 0..20_000u64 {
            let x = ((i * 48_271) % 100) as f64;
            t.observe(x);
        }
        assert!(
            (t.value() - 90.0).abs() < 10.0,
            "p90 estimate {}",
            t.value()
        );
        assert_eq!(t.count(), 20_000);
    }

    #[test]
    #[should_panic(expected = "q must be in (0,1)")]
    fn tracker_rejects_bad_quantile() {
        QuantileTracker::new(0.0, 0.1, 0.0);
    }

    fn fv(freq: f64, ratio: f64, cc: f64) -> FeatureVector {
        FeatureVector {
            inv_freq_1h: freq,
            inv_freq_400h: 0.0,
            outgoing_accept_ratio: ratio,
            incoming_accept_ratio: 1.0,
            clustering_coefficient: cc,
        }
    }

    #[test]
    fn thresholds_follow_attacker_drift() {
        let base = ThresholdClassifier {
            min_freq: 20.0,
            max_out_ratio: 0.5,
            max_cc: f64::INFINITY,
        };
        let mut ad = AdaptiveThresholds::from_rule(&base, 0.05);
        // Phase 1: classic fast sybils at 40/h, normals at 2/h.
        for i in 0..3000 {
            let j = (i % 10) as f64 * 0.1;
            ad.feedback(&fv(40.0 + j, 0.2, 0.01), true);
            ad.feedback(&fv(2.0 + j, 0.8, 0.05), false);
        }
        let rule1 = ad.current_rule();
        assert!(rule1.min_freq > 2.0 && rule1.min_freq < 40.0);
        assert!(ad.is_sybil(&fv(40.0, 0.2, 0.0)));
        assert!(!ad.is_sybil(&fv(2.0, 0.8, 0.0)));
        // Phase 2: attackers slow to 12/h to duck under the cut.
        for i in 0..6000 {
            let j = (i % 10) as f64 * 0.05;
            ad.feedback(&fv(12.0 + j, 0.2, 0.01), true);
            ad.feedback(&fv(2.0 + j, 0.8, 0.05), false);
        }
        let rule2 = ad.current_rule();
        assert!(
            rule2.min_freq < rule1.min_freq,
            "threshold must drift down: {} -> {}",
            rule1.min_freq,
            rule2.min_freq
        );
        assert!(ad.is_sybil(&fv(12.0, 0.2, 0.0)), "slowed sybil still caught");
        assert!(!ad.is_sybil(&fv(2.0, 0.8, 0.0)));
    }

    #[test]
    fn raw_round_trip_is_digest_identical() {
        let base = ThresholdClassifier {
            min_freq: 20.0,
            max_out_ratio: 0.5,
            max_cc: 0.1,
        };
        let mut ad = AdaptiveThresholds::from_rule(&base, 0.05);
        for i in 0..100 {
            ad.feedback(&fv(30.0 + i as f64, 0.2, 0.01), i % 2 == 0);
        }
        let back = AdaptiveThresholds::from_raw(ad.to_raw());
        let digest = |a: &AdaptiveThresholds| {
            let mut d = crate::digest::Digest64::new();
            a.digest_into(&mut d);
            d.finish()
        };
        assert_eq!(digest(&ad), digest(&back));

        let t = QuantileTracker::new(0.9, 0.05, -3.5);
        let tb = QuantileTracker::from_raw(t.to_raw());
        let tdigest = |t: &QuantileTracker| {
            let mut d = crate::digest::Digest64::new();
            t.digest_into(&mut d);
            d.finish()
        };
        assert_eq!(tdigest(&t), tdigest(&tb));
    }

    #[test]
    fn cc_disabled_rule_keeps_cc_disabled() {
        let base = ThresholdClassifier {
            min_freq: 20.0,
            max_out_ratio: 0.5,
            max_cc: f64::INFINITY,
        };
        let ad = AdaptiveThresholds::from_rule(&base, 0.05);
        assert!(ad.current_rule().max_cc.is_infinite());
    }
}
