//! L2-regularized logistic regression (batch gradient descent).
//!
//! The second related-work baseline family (§4). Unlike the SVM it yields
//! calibrated probabilities, which the `classifier_zoo` experiment uses
//! for its ROC comparison.

use crate::svm::Scaler;
use crate::Classifier;
use serde::{Deserialize, Serialize};
use sybil_features::FeatureVector;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            learning_rate: 0.5,
            l2: 1e-4,
            epochs: 500,
        }
    }
}

/// A trained logistic-regression classifier with built-in
/// standardization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogisticRegression {
    scaler: Scaler,
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fit from raw feature rows and labels (`true` = Sybil).
    pub fn train(rows: &[Vec<f64>], labels: &[bool], params: &LogisticParams) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "cannot train on no data");
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "need both classes to train"
        );
        let scaler = Scaler::fit(rows);
        let x = scaler.transform_all(rows);
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let d = x[0].len();
        let n = x.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..params.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (xi, &yi) in x.iter().zip(&y) {
                let p = sigmoid(dot(&w, xi) + b);
                let err = p - yi;
                for (g, &xij) in gw.iter_mut().zip(xi) {
                    *g += err * xij;
                }
                gb += err;
            }
            for (wj, gj) in w.iter_mut().zip(&gw) {
                *wj -= params.learning_rate * (gj / n + params.l2 * *wj);
            }
            b -= params.learning_rate * gb / n;
        }
        LogisticRegression {
            scaler,
            weights: w,
            bias: b,
        }
    }

    /// Fit directly from [`FeatureVector`]s.
    pub fn train_features(
        features: &[FeatureVector],
        labels: &[bool],
        params: &LogisticParams,
    ) -> Self {
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        Self::train(&rows, labels, params)
    }

    /// P(Sybil | features).
    pub fn probability(&self, f: &FeatureVector) -> f64 {
        let x = self.scaler.transform(&f.as_array());
        sigmoid(dot(&self.weights, &x) + self.bias)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LogisticRegression {
    fn is_sybil(&self, f: &FeatureVector) -> bool {
        self.probability(f) > 0.5
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        self.probability(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(freq: f64, ratio: f64) -> FeatureVector {
        FeatureVector {
            inv_freq_1h: freq,
            inv_freq_400h: freq * 8.0,
            outgoing_accept_ratio: ratio,
            incoming_accept_ratio: 1.0,
            clustering_coefficient: 0.02,
        }
    }

    fn separable() -> (Vec<FeatureVector>, Vec<bool>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let j = (i % 10) as f64 * 0.2;
            features.push(fv(30.0 + j, 0.25));
            labels.push(true);
            features.push(fv(2.0 + j, 0.75));
            labels.push(false);
        }
        (features, labels)
    }

    #[test]
    fn classifies_separable_data() {
        let (features, labels) = separable();
        let lr = LogisticRegression::train_features(&features, &labels, &Default::default());
        for (f, &l) in features.iter().zip(&labels) {
            assert_eq!(lr.is_sybil(f), l);
        }
    }

    #[test]
    fn probabilities_are_calibrated_extremes() {
        let (features, labels) = separable();
        let lr = LogisticRegression::train_features(&features, &labels, &Default::default());
        assert!(lr.probability(&fv(60.0, 0.1)) > 0.95);
        assert!(lr.probability(&fv(0.5, 0.9)) < 0.05);
        let p = lr.probability(&fv(16.0, 0.5)); // midpoint-ish
        assert!((0.01..0.99).contains(&p), "midpoint p {p}");
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn single_class_rejected() {
        let (features, _) = separable();
        LogisticRegression::train_features(
            &features,
            &vec![false; features.len()],
            &Default::default(),
        );
    }
}
