//! Checked `usize` → `u32` conversions for the id-packing contract.
//!
//! The serving substrate moves account ids, per-window counts, and queue
//! depths as `u32` end to end: node ids pack two-per-`u64` in the mirror
//! delta, CSR offsets are `u32`, and the 5M-account scale target leaves
//! 800× headroom below `u32::MAX`. A bare `as u32` at any of those
//! boundaries would truncate silently if the invariant ever broke —
//! `sybil-lint` rule S115 rejects such casts on the hot path. These
//! helpers are the sanctioned replacements:
//!
//! * [`count_u32`] for fallible boundaries (config, file ingest), where
//!   the caller has a `Result` channel to surface [`Error::IdOverflow`];
//! * [`saturating_u32`] for infallible counters (sliding-window peaks),
//!   where clamping at `u32::MAX` is the documented behavior and strictly
//!   better than wrapping.

use crate::error::Error;

/// Convert a count to `u32`, failing with [`Error::IdOverflow`] when it
/// does not fit. `what` names the quantity for the error message.
pub fn count_u32(n: usize, what: &'static str) -> Result<u32, Error> {
    u32::try_from(n).map_err(|_| Error::IdOverflow {
        what,
        value: n as u64,
    })
}

/// Convert a count to `u32`, clamping to `u32::MAX` on overflow.
///
/// For monotone gauges (peak window occupancy, high-water marks) a
/// clamped ceiling is exact until 4.29 billion and stays a valid upper
/// bound after, whereas `as u32` would wrap to a small — and wrong —
/// value. Use [`count_u32`] instead wherever a `Result` can propagate.
#[inline]
pub fn saturating_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_counts_convert_exactly() {
        assert_eq!(count_u32(0, "zero").unwrap(), 0);
        assert_eq!(count_u32(123_456, "count").unwrap(), 123_456);
        assert_eq!(
            count_u32(u32::MAX as usize, "max").unwrap(),
            u32::MAX
        );
        assert_eq!(saturating_u32(77), 77);
        assert_eq!(saturating_u32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    fn overflow_is_a_typed_error_not_a_truncation() {
        let too_big = u32::MAX as usize + 1;
        let err = count_u32(too_big, "request log index").unwrap_err();
        match err {
            Error::IdOverflow { what, value } => {
                assert_eq!(what, "request log index");
                assert_eq!(value, too_big as u64);
            }
            other => panic!("expected IdOverflow, got {other:?}"),
        }
        // The Display form names the quantity and the value, so a CLI
        // surface shows *which* id space overflowed.
        let msg = count_u32(too_big, "request log index")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("request log index"), "{msg}");
        assert!(msg.contains("4294967296"), "{msg}");
    }

    #[test]
    fn saturating_clamps_instead_of_wrapping() {
        let too_big = u32::MAX as usize + 1;
        // `too_big as u32` would wrap to 0; the clamp keeps an upper bound.
        assert_eq!(saturating_u32(too_big), u32::MAX);
        assert_eq!(saturating_u32(usize::MAX), u32::MAX);
    }
}
