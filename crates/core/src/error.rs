//! The workspace error type.
//!
//! Fallible public APIs across the workspace return [`Error`] (or a
//! crate-local error that converts into it) instead of `String`: callers
//! can match on the failure class, the message formatting lives in one
//! `Display` impl, and lint rule S107 keeps stringly-typed `Result<_,
//! String>` signatures from creeping back in. Hand-rolled (no `thiserror`
//! dependency) but shaped the same way: one variant per failure class,
//! `From` impls for the source errors, `source()` wired through.

use std::fmt;

/// What went wrong, by failure class.
#[derive(Debug)]
pub enum Error {
    /// A configuration field failed validation.
    InvalidConfig {
        /// The offending field, e.g. `"check_every"`.
        field: &'static str,
        /// Why the value is rejected.
        message: String,
    },
    /// A structural graph operation failed (self-loop, duplicate edge,
    /// unknown node).
    Graph(osn_graph::GraphError),
    /// An edge-list read failed (I/O, parse, or bad edge).
    Read(osn_graph::io::ReadError),
    /// An underlying I/O failure outside the edge-list reader.
    Io(std::io::Error),
    /// A count or id exceeded the u32 range the serving substrate's
    /// id-packing contract requires (node ids, per-window counts, and
    /// queue depths all travel as `u32` end to end; see
    /// [`crate::ids`]).
    IdOverflow {
        /// What was being converted, e.g. `"request log index"`.
        what: &'static str,
        /// The out-of-range value.
        value: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Read(e) => write!(f, "read error: {e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::IdOverflow { what, value } => {
                write!(f, "id overflow: {what} = {value} does not fit in u32")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidConfig { .. } => None,
            Error::Graph(e) => Some(e),
            Error::Read(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::IdOverflow { .. } => None,
        }
    }
}

impl From<osn_graph::GraphError> for Error {
    fn from(e: osn_graph::GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<osn_graph::io::ReadError> for Error {
    fn from(e: osn_graph::io::ReadError) -> Self {
        Error::Read(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = Error::InvalidConfig {
            field: "check_every",
            message: "must be ≥ 1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("check_every"));
        assert!(s.contains("must be ≥ 1"));
    }

    #[test]
    fn from_graph_error_preserves_source() {
        use std::error::Error as _;
        let e: Error = osn_graph::GraphError::SelfLoop(osn_graph::NodeId(3)).into();
        assert!(matches!(e, Error::Graph(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn from_io_error_round_trips() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
