//! Classifier evaluation: confusion matrices (Table 1), k-fold
//! cross-validation, ROC curves.

use crate::Classifier;
use serde::{Deserialize, Serialize};
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureVector;

/// Binary confusion matrix with the paper's Table 1 orientation:
/// rows = true class, columns = predicted class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True Sybil predicted Sybil.
    pub tp: usize,
    /// True Sybil predicted non-Sybil.
    pub fn_: usize,
    /// True non-Sybil predicted Sybil.
    pub fp: usize,
    /// True non-Sybil predicted non-Sybil.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Record one example.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge another matrix into this one.
    pub(crate) fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fn_ += other.fn_;
        self.fp += other.fp;
        self.tn += other.tn;
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fn_ + self.fp + self.tn
    }

    /// Fraction of true Sybils predicted Sybil (Table 1 row 1 col 1).
    pub fn sybil_recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Fraction of true non-Sybils predicted Sybil (Table 1 row 2 col 1).
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Fraction of true non-Sybils predicted non-Sybil.
    pub fn normal_recall(&self) -> f64 {
        ratio(self.tn, self.fp + self.tn)
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Precision on the Sybil class.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 on the Sybil class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.sybil_recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Evaluate a trained classifier on (a slice of) a dataset.
pub fn evaluate<C: Classifier>(
    clf: &C,
    features: &[FeatureVector],
    labels: &[bool],
) -> ConfusionMatrix {
    assert_eq!(features.len(), labels.len());
    let mut m = ConfusionMatrix::default();
    for (f, &l) in features.iter().zip(labels) {
        m.record(l, clf.is_sybil(f));
    }
    m
}

/// k-fold cross-validation (the paper uses 5 folds on the 1000+1000
/// sample): `train` receives the training split and returns a classifier;
/// the returned matrix aggregates every fold's held-out predictions.
///
/// The dataset should be shuffled beforehand; folds are contiguous ranges.
///
/// Folds are independent, so they train concurrently on
/// [`osn_graph::par::num_threads`] threads (`RENREN_THREADS` overrides);
/// `train` therefore takes a `Fn` closure rather than `FnMut`. Each fold's
/// classifier is trained and evaluated entirely within one worker, and the
/// integer confusion counts merge in fold order, so the result is
/// identical at any thread count.
pub fn cross_validate<C, F>(ds: &GroundTruth, k: usize, train: F) -> ConfusionMatrix
where
    C: Classifier,
    F: Fn(&GroundTruth) -> C + Sync,
{
    let folds = ds.fold_ranges(k);
    let per_fold = osn_graph::par::map_slice(&folds, |test_range| {
        let mut train_ds = GroundTruth::default();
        for i in 0..ds.len() {
            if !test_range.contains(&i) {
                train_ds.features.push(ds.features[i]);
                train_ds.labels.push(ds.labels[i]);
                train_ds.nodes.push(ds.nodes[i]);
            }
        }
        let clf = train(&train_ds);
        evaluate(
            &clf,
            &ds.features[test_range.clone()],
            &ds.labels[test_range.clone()],
        )
    });
    let mut total = ConfusionMatrix::default();
    for m in &per_fold {
        total.merge(m);
    }
    total
}

/// ROC curve points `(false-positive-rate, true-positive-rate)` from the
/// classifier's scores, sorted by increasing FPR, plus the AUC.
pub fn roc_curve<C: Classifier>(
    clf: &C,
    features: &[FeatureVector],
    labels: &[bool],
) -> (Vec<(f64, f64)>, f64) {
    let mut scored: Vec<(f64, bool)> = features
        .iter()
        .zip(labels)
        .map(|(f, &l)| (clf.score(f), l))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0)); // descending score
    let pos = labels.iter().filter(|&&l| l).count().max(1) as f64;
    let neg = labels.iter().filter(|&&l| !l).count().max(1) as f64;
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0.0, 0.0);
    let mut i = 0;
    while i < scored.len() {
        // Process ties together so the curve is threshold-consistent.
        let s = scored[i].0;
        while i < scored.len() && scored[i].0 == s {
            if scored[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push((fp / neg, tp / pos));
    }
    // Trapezoid AUC.
    let auc = curve
        .windows(2)
        .map(|w| (w[1].0 - w[0].0) * 0.5 * (w[0].1 + w[1].1))
        .sum();
    (curve, auc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::NodeId;

    struct Above(f64);
    impl Classifier for Above {
        fn is_sybil(&self, f: &FeatureVector) -> bool {
            f.inv_freq_1h > self.0
        }
        fn score(&self, f: &FeatureVector) -> f64 {
            f.inv_freq_1h
        }
    }

    fn fv(freq: f64) -> FeatureVector {
        FeatureVector {
            inv_freq_1h: freq,
            inv_freq_400h: 0.0,
            outgoing_accept_ratio: 0.0,
            incoming_accept_ratio: 0.0,
            clustering_coefficient: 0.0,
        }
    }

    #[test]
    fn matrix_rates() {
        let mut m = ConfusionMatrix::default();
        m.record(true, true);
        m.record(true, false);
        m.record(false, false);
        m.record(false, false);
        m.record(false, true);
        assert_eq!(m.total(), 5);
        assert_eq!(m.sybil_recall(), 0.5);
        assert!((m.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.normal_recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert_eq!(m.precision(), 0.5);
        assert!(m.f1() > 0.0);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.sybil_recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn evaluate_counts() {
        let clf = Above(10.0);
        let features = vec![fv(20.0), fv(5.0), fv(15.0), fv(1.0)];
        let labels = vec![true, true, false, false];
        let m = evaluate(&clf, &features, &labels);
        assert_eq!(m.tp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
    }

    #[test]
    fn cross_validation_covers_every_example() {
        let mut ds = GroundTruth::default();
        for i in 0..50 {
            ds.features.push(fv(if i % 2 == 0 { 30.0 } else { 2.0 }));
            ds.labels.push(i % 2 == 0);
            ds.nodes.push(NodeId(i));
        }
        let m = cross_validate(&ds, 5, |_| Above(10.0));
        assert_eq!(m.total(), 50);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn roc_perfect_classifier() {
        let features = vec![fv(30.0), fv(25.0), fv(2.0), fv(1.0)];
        let labels = vec![true, true, false, false];
        let (curve, auc) = roc_curve(&Above(10.0), &features, &labels);
        assert!((auc - 1.0).abs() < 1e-12, "auc {auc}");
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn roc_random_classifier_auc_half() {
        // Same score for everything -> a single diagonal step, AUC 0.5.
        let features = vec![fv(5.0); 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let (_, auc) = roc_curve(&Above(f64::INFINITY), &features, &labels);
        assert!((auc - 0.5).abs() < 1e-12, "auc {auc}");
    }
}

/// Solo ROC AUC of each behavioral feature (threshold-free separability):
/// returns `(feature_name, auc)` pairs in `FeatureVector::NAMES` order.
/// AUC is computed in the direction that scores Sybils higher (ratios and
/// clustering are inverted), so 0.5 = uninformative, 1.0 = perfect.
pub fn per_feature_auc(features: &[FeatureVector], labels: &[bool]) -> Vec<(&'static str, f64)> {
    struct OneFeature {
        idx: usize,
        invert: bool,
    }
    impl Classifier for OneFeature {
        fn is_sybil(&self, f: &FeatureVector) -> bool {
            self.score(f) > 0.0
        }
        fn score(&self, f: &FeatureVector) -> f64 {
            let v = f.as_array()[self.idx];
            if self.invert {
                -v
            } else {
                v
            }
        }
    }
    FeatureVector::NAMES
        .iter()
        .enumerate()
        .map(|(idx, &name)| {
            // Sybils send more (0,1) but get accepted less (2), accept more
            // incoming (3), and cluster less (4).
            let invert = matches!(idx, 2 | 4);
            let clf = OneFeature { idx, invert };
            let (_, auc) = roc_curve(&clf, features, labels);
            (name, auc)
        })
        .collect()
}

#[cfg(test)]
mod per_feature_tests {
    use super::*;

    #[test]
    fn informative_features_score_high_and_noise_scores_half() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let noise = (i % 10) as f64; // same distribution in both classes
            features.push(FeatureVector {
                inv_freq_1h: 40.0 + noise,
                inv_freq_400h: noise, // identical across classes
                outgoing_accept_ratio: 0.2,
                incoming_accept_ratio: 1.0,
                clustering_coefficient: 0.001,
            });
            labels.push(true);
            features.push(FeatureVector {
                inv_freq_1h: 2.0 + noise,
                inv_freq_400h: noise,
                outgoing_accept_ratio: 0.8,
                incoming_accept_ratio: 0.6,
                clustering_coefficient: 0.05,
            });
            labels.push(false);
        }
        let aucs = per_feature_auc(&features, &labels);
        let get = |name: &str| aucs.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(get("inv_freq_1h") > 0.99);
        assert!(get("outgoing_accept_ratio") > 0.99);
        assert!(get("incoming_accept_ratio") > 0.99);
        assert!(get("clustering_coefficient") > 0.99);
        // The deliberately class-independent feature is uninformative.
        assert!((get("inv_freq_400h") - 0.5).abs() < 0.05);
    }
}
