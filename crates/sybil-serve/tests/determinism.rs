//! Shard-determinism suite: the sharded engine's `DeploymentReport` must
//! be byte-identical (as serialized JSON) to the sequential `replay()` for
//! every shard count, every `RENREN_THREADS` value, and across repeated
//! runs — on both simulator-generated and random synthetic logs. The
//! same contract covers the observability layer: the `logical` section
//! of the metrics snapshot must not move by a byte either.

use osn_graph::{par, NodeId, TemporalGraph, Timestamp};
use osn_sim::{
    simulate, Account, AccountKind, Gender, Profile, RequestLog, RequestOutcome, RequestRecord,
    SimConfig, SimOutput, ToolKind,
};
use proptest::prelude::*;
use sybil_core::realtime::{replay, replay_observed, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession};

/// One request spec: (from, to, sent_h, Some((answered_after_h, accepted))).
type RequestSpec = (u32, u32, u64, Option<(u64, bool)>);

/// Build a SimOutput from raw request tuples; accounts `0..sybils` are
/// Sybils, the rest normal.
fn synthetic(n: usize, sybils: usize, requests: &[RequestSpec]) -> SimOutput {
    let normal = Account {
        kind: AccountKind::Normal,
        profile: Profile::new(Gender::Male, 0.4),
        created_at: Timestamp::ZERO,
        banned_at: None,
        accept_tendency: 0.7,
        sociability: 1.0,
    };
    let mut accounts = vec![normal.clone(); n];
    for a in accounts.iter_mut().take(sybils) {
        a.kind = AccountKind::Sybil {
            attacker: 0,
            tool: ToolKind::MarketingAssistant,
        };
    }
    let mut graph = TemporalGraph::with_nodes(n);
    let mut log = RequestLog::new();
    let mut rows: Vec<RequestSpec> = requests.to_vec();
    rows.sort_by_key(|r| r.2);
    for &(from, to, sent_h, decision) in &rows {
        if from == to {
            continue;
        }
        let idx = log.push(RequestRecord {
            from: NodeId(from),
            to: NodeId(to),
            sent_at: Timestamp::from_hours(sent_h),
            outcome: RequestOutcome::Pending,
        });
        if let Some((after_h, accepted)) = decision {
            let t = Timestamp::from_hours(sent_h + after_h);
            if accepted {
                log.resolve(idx, RequestOutcome::Accepted(t));
                let _ = graph.add_edge(NodeId(from), NodeId(to), t);
            } else {
                log.resolve(idx, RequestOutcome::Rejected(t));
            }
        }
    }
    SimOutput {
        config: SimConfig::tiny(0),
        graph,
        accounts,
        log,
        engine_stats: Default::default(),
    }
}

/// A permissive config so detections, re-checks, audits, and adaptive
/// feedback all fire on small random logs.
fn eager_cfg(adaptive: bool) -> RealtimeConfig {
    RealtimeConfig {
        warmup_requests: 4,
        check_every: 1,
        trailing_window_h: 1,
        min_decided: 2,
        min_friends: 2,
        rule: ThresholdClassifier {
            max_out_ratio: 0.8,
            min_freq: 3.0,
            max_cc: f64::INFINITY,
        },
        adaptive,
        feedback_delay_h: 3,
        audit_every: 5,
    }
}

fn report_bytes(out: &SimOutput, cfg: &ServeConfig) -> String {
    let outcome = ServeSession::new(*cfg).run(out).expect("serve failed");
    serde_json::to_string(&outcome.report).unwrap()
}

/// Serialized `logical` section of an observed serve run (no clock;
/// wall spans are irrelevant to the contract under test).
fn serve_logical_bytes(out: &SimOutput, cfg: &ServeConfig) -> String {
    let mut reg = sybil_obs::Registry::new();
    ServeSession::new(*cfg)
        .metrics(&mut reg)
        .run(out)
        .expect("serve failed");
    serde_json::to_string(&reg.snapshot().logical).unwrap()
}

/// The logical metrics must be byte-identical at every shard count and
/// agree with the sequential replay's counters key-for-key (the serve
/// snapshot adds only the engine-specific `epochs` counter on top).
fn assert_logical_metrics_agree(out: &SimOutput, detect: RealtimeConfig, epoch_hours: u64) {
    let mut rreg = sybil_obs::Registry::new();
    replay_observed(out, &detect, &mut rreg, None);
    let replay_logical = rreg.snapshot().logical;
    let mut baseline: Option<String> = None;
    for shards in [1usize, 2, 8] {
        let cfg = ServeConfig {
            shards,
            epoch_hours,
            detect,
            rotate_floor: 0,
        };
        let bytes = serve_logical_bytes(out, &cfg);
        match &baseline {
            None => baseline = Some(bytes.clone()),
            Some(b) => assert_eq!(
                b, &bytes,
                "logical metrics moved between shard counts (at {shards})"
            ),
        }
        let mut reg = sybil_obs::Registry::new();
        ServeSession::new(cfg)
            .metrics(&mut reg)
            .run(out)
            .expect("serve failed");
        let serve_logical = reg.snapshot().logical;
        for (k, v) in &replay_logical {
            assert_eq!(
                serve_logical.get(k),
                Some(v),
                "{shards}-shard serve disagrees with replay on logical metric {k:?}"
            );
        }
    }
}

/// Serve at shard counts 1, 2, 8 (twice each) and compare every run, plus
/// the sequential replay, as serialized bytes.
fn assert_all_engines_agree(out: &SimOutput, detect: RealtimeConfig, epoch_hours: u64) {
    let sequential = serde_json::to_string(&replay(out, &detect)).unwrap();
    for shards in [1usize, 2, 8] {
        let cfg = ServeConfig {
            shards,
            epoch_hours,
            detect,
            rotate_floor: 0,
        };
        let a = report_bytes(out, &cfg);
        let b = report_bytes(out, &cfg);
        assert_eq!(a, b, "{shards}-shard serve must be reproducible");
        assert_eq!(
            a, sequential,
            "{shards}-shard serve diverged from sequential replay"
        );
    }
}

/// Run `body` with `RENREN_THREADS` pinned, restoring the prior value.
/// Env vars are process-global; every test in this binary that touches
/// them funnels through this one lock.
fn with_threads_env(value: &str, body: impl FnOnce()) {
    use std::sync::{Mutex, OnceLock};
    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let _guard = ENV_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
    let prior = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, value);
    body();
    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}

/// End-to-end on a real simulated log, static rule.
#[test]
fn simulated_log_static_rule_is_shard_invariant() {
    let out = simulate(SimConfig::tiny(31));
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        ..RealtimeConfig::default()
    };
    assert_all_engines_agree(&out, detect, 48);
}

/// End-to-end on a real simulated log with adaptive feedback and audits.
#[test]
fn simulated_log_adaptive_rule_is_shard_invariant() {
    let out = simulate(SimConfig::tiny(32));
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    // Epoch shorter than the 48h feedback delay exercises the barrier
    // redistribution path repeatedly.
    assert_all_engines_agree(&out, detect, 12);
}

/// `shards: 0` resolves the count from `RENREN_THREADS`; the report must
/// not depend on it.
#[test]
fn auto_shard_count_from_env_is_invariant() {
    let out = simulate(SimConfig::tiny(33));
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let cfg = ServeConfig {
        shards: 0,
        epoch_hours: 24,
        detect,
        rotate_floor: 0,
    };
    let mut reports = Vec::new();
    for threads in ["1", "2", "8"] {
        with_threads_env(threads, || reports.push(report_bytes(&out, &cfg)));
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
    with_threads_env("1", || {
        assert_eq!(
            reports[0],
            serde_json::to_string(&replay(&out, &detect)).unwrap()
        );
    });
}

/// The headline observability contract on a real simulated log: the
/// serialized logical section is byte-identical across
/// `RENREN_THREADS` ∈ {1, 8} × shards ∈ {1, 2, 8}, and matches the
/// sequential replay's counters.
#[test]
fn logical_metrics_are_thread_and_shard_invariant() {
    let out = simulate(SimConfig::tiny(34));
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let mut all: Vec<String> = Vec::new();
    for threads in ["1", "8"] {
        with_threads_env(threads, || {
            assert_logical_metrics_agree(&out, detect, 12);
            for shards in [1usize, 2, 8] {
                let cfg = ServeConfig {
                    shards,
                    epoch_hours: 12,
                    detect,
                    rotate_floor: 0,
                };
                all.push(serve_logical_bytes(&out, &cfg));
            }
        });
    }
    for b in &all[1..] {
        assert_eq!(&all[0], b, "logical metrics moved across threads × shards");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random event logs, static rule: byte-identical reports at 1, 2 and
    /// 8 shards and across two runs at the same count.
    #[test]
    fn random_logs_static(
        n in 3usize..20,
        reqs in prop::collection::vec(
            (0u32..20, 0u32..20, 0u64..96, 0u64..8, (any::<bool>(), any::<bool>())),
            0..120
        )
    ) {
        let rows: Vec<RequestSpec> = reqs
            .iter()
            .map(|&(f, t, h, after, (answered, accepted))| {
                let d = answered.then_some((after, accepted));
                (f % n as u32, t % n as u32, h, d)
            })
            .collect();
        let out = synthetic(n, n / 3, &rows);
        assert_all_engines_agree(&out, eager_cfg(false), 7);
    }

    /// Random event logs with adaptive feedback, audits, and a short
    /// feedback delay (the hardest barrier-timing case: epoch clamped to
    /// the 3h delay).
    #[test]
    fn random_logs_adaptive(
        n in 3usize..16,
        reqs in prop::collection::vec(
            (0u32..16, 0u32..16, 0u64..72, 0u64..6, (any::<bool>(), any::<bool>())),
            0..100
        )
    ) {
        let rows: Vec<RequestSpec> = reqs
            .iter()
            .map(|&(f, t, h, after, (answered, accepted))| {
                let d = answered.then_some((after, accepted));
                (f % n as u32, t % n as u32, h, d)
            })
            .collect();
        let out = synthetic(n, n / 2, &rows);
        assert_all_engines_agree(&out, eager_cfg(true), 48);
    }

    /// Random adaptive logs: logical metric snapshots are bit-identical
    /// across shard counts and match the sequential replay's counters —
    /// the eager config drives every counter (checks, detections,
    /// feedback, audits) on small inputs.
    #[test]
    fn random_logs_logical_metrics(
        n in 3usize..16,
        reqs in prop::collection::vec(
            (0u32..16, 0u32..16, 0u64..72, 0u64..6, (any::<bool>(), any::<bool>())),
            0..100
        )
    ) {
        let rows: Vec<RequestSpec> = reqs
            .iter()
            .map(|&(f, t, h, after, (answered, accepted))| {
                let d = answered.then_some((after, accepted));
                (f % n as u32, t % n as u32, h, d)
            })
            .collect();
        let out = synthetic(n, n / 2, &rows);
        assert_logical_metrics_agree(&out, eager_cfg(true), 7);
    }

    /// Random adaptive logs under forced tiny rotation floors: with
    /// `rotate_floor` at 1, 2 or 8 edges, almost every barrier rotates the
    /// coordinator's snapshot through the incremental `merge_delta` path
    /// (instead of the default 1024-edge floor that small logs never hit).
    /// Rotation timing is supposed to be value-neutral; this pins it.
    #[test]
    fn random_logs_tiny_rotation_floors(
        n in 3usize..16,
        reqs in prop::collection::vec(
            (0u32..16, 0u32..16, 0u64..72, 0u64..6, (any::<bool>(), any::<bool>())),
            0..100
        ),
        floor_ix in 0usize..3
    ) {
        let floor = [1usize, 2, 8][floor_ix];
        let rows: Vec<RequestSpec> = reqs
            .iter()
            .map(|&(f, t, h, after, (answered, accepted))| {
                let d = answered.then_some((after, accepted));
                (f % n as u32, t % n as u32, h, d)
            })
            .collect();
        let out = synthetic(n, n / 2, &rows);
        let detect = eager_cfg(true);
        let sequential = serde_json::to_string(&replay(&out, &detect)).unwrap();
        for shards in [1usize, 2, 8] {
            let cfg = ServeConfig {
                shards,
                epoch_hours: 48,
                detect,
                rotate_floor: floor,
            };
            let bytes = report_bytes(&out, &cfg);
            prop_assert_eq!(
                &bytes, &sequential,
                "{}-shard serve with rotate_floor {} diverged from replay",
                shards, floor
            );
        }
    }
}
