//! The epoch-barrier coordinator: slice the event stream into epochs, run
//! every shard over each slice in parallel, merge staged effects
//! deterministically at the barrier.
//!
//! The determinism argument, end to end:
//!
//! 1. [`EventStream`] gives every event a global `seq` in exactly the
//!    sequential replay's processing order.
//! 2. Within an epoch, each shard applies owned-account transitions in
//!    event order and stages detections/feedback tagged with `seq`. All
//!    shared inputs a check reads are either owned by that shard,
//!    replicated identically on every shard (the audit cursor and
//!    adaptive replica — all shards scan all events), or read-only for
//!    the epoch (the coordinator's edge mirror plus the seq-tagged epoch
//!    index, restricted to edges created at or before the checking
//!    event), so no value depends on cross-shard timing.
//! 3. At the barrier the coordinator sorts detections by `(timestamp,
//!    seq)` (account ownership makes `seq` already unique) and feedback by
//!    `(seq, intra)`, recovering the sequential emission order; feedback
//!    is redistributed to every replica before the next epoch begins.
//! 4. Feedback staged in epoch *k* is never due before epoch *k+1*
//!    because the epoch length is clamped to the verification delay — so
//!    deferring its delivery to the barrier loses nothing.
//!
//! Latency sums are accumulated in merged detection order and the final
//! rule is read off shard 0's replica, so the assembled
//! [`DeploymentReport`] is byte-identical to [`replay`]'s at every shard
//! and thread count.

use crate::mirror::GraphMirror;
use crate::queue::QueueFull;
use crate::shard::{ShardState, TaggedDetection, TaggedFeedback};
use osn_graph::par;
use osn_sim::stream::EpochBatches;
use osn_sim::SimOutput;
use sybil_core::realtime::{DeploymentReport, RealtimeConfig, ReplayCounters};

/// Configuration of the sharded serving engine.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker shard count; 0 means "use [`par::num_threads`]" (the
    /// `RENREN_THREADS` environment override).
    pub shards: usize,
    /// Barrier cadence in simulated hours. Bounds the per-epoch event
    /// buffer; clamped to `[1, feedback_delay_h]` when adaptive feedback
    /// is on (see the module docs for why).
    pub epoch_hours: u64,
    /// The detector configuration, shared with the sequential
    /// [`replay`].
    pub detect: RealtimeConfig,
    /// Snapshot-rotation floor in edges; 0 selects the engine default
    /// (1024). Rotation timing is value-neutral, so this only trades
    /// rotation frequency against delta-probe length — tests force tiny
    /// floors to exercise many incremental rotations.
    pub rotate_floor: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 0,
            epoch_hours: 48,
            detect: RealtimeConfig::default(),
            rotate_floor: 0,
        }
    }
}

impl ServeConfig {
    /// Engine defaults (ambient shard count, 48 h epochs) around a given
    /// detector configuration.
    pub fn for_detect(detect: RealtimeConfig) -> Self {
        ServeConfig {
            detect,
            ..ServeConfig::default()
        }
    }
}

/// Why the serving engine could not produce a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A shard staged more effects than its epoch-invariant bound — an
    /// engine bug, surfaced instead of silently growing the queue.
    QueueOverflow(QueueFull),
    /// `adaptive` with `feedback_delay_h == 0` cannot be sharded: feedback
    /// would be due within the epoch that generated it, and the sequential
    /// engine would apply it between adjacent events.
    ZeroFeedbackDelay,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueOverflow(q) => write!(f, "shard effect {q}"),
            ServeError::ZeroFeedbackDelay => {
                write!(f, "adaptive serving requires feedback_delay_h ≥ 1")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueueFull> for ServeError {
    fn from(q: QueueFull) -> Self {
        ServeError::QueueOverflow(q)
    }
}

/// A monotonic-seconds source injected by callers that want timing
/// ([`serve_timed`]). The engine never reads a clock itself, so timing
/// stays a benchmark concern.
pub type Clock<'a> = &'a (dyn Fn() -> f64 + Sync);

/// Timing breakdown of a [`serve_timed`] run.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// End-to-end seconds, by the injected clock.
    pub wall_s: f64,
    /// Modeled parallel critical path: per epoch, the sequential
    /// coordinator work plus the *slowest* shard's busy time. Equals
    /// wall-clock when every shard has its own core; on fewer cores
    /// (where shards run serially) it reports what wall-clock would be
    /// with enough cores, exactly.
    pub critical_path_s: f64,
    /// Total busy seconds per shard across all epochs.
    pub shard_busy_s: Vec<f64>,
}

/// Run the sharded streaming detector over a simulation's request log.
/// The returned report is byte-identical to `replay(out, &cfg.detect)`
/// for every shard count ≥ 1.
pub fn serve(out: &SimOutput, cfg: &ServeConfig) -> Result<DeploymentReport, ServeError> {
    serve_timed(out, cfg, &|| 0.0).map(|(report, _)| report)
}

/// [`serve`] with an injected clock, returning the timing breakdown
/// alongside the report. Used by the `serve_throughput` bench.
pub fn serve_timed(
    out: &SimOutput,
    cfg: &ServeConfig,
    clock: Clock<'_>,
) -> Result<(DeploymentReport, ServeStats), ServeError> {
    serve_inner(out, cfg, clock, None)
}

/// [`serve_timed`] with metrics: shard work tallies (drained at each
/// epoch barrier in shard-id order) land in `obs`'s *logical* section
/// under the same keys as the sequential `replay_observed` — and with
/// equal values, at every shard and thread count. Per-shard quantities
/// (staging-queue high-water marks, per-shard check counts) land in the
/// *sharded* section keyed `shard{N}.{name}`; per-epoch wall timing (from
/// the injected clock) in the `epoch` span.
pub fn serve_observed(
    out: &SimOutput,
    cfg: &ServeConfig,
    clock: Clock<'_>,
    obs: &mut sybil_obs::Registry,
) -> Result<(DeploymentReport, ServeStats), ServeError> {
    serve_inner(out, cfg, clock, Some(obs))
}

/// The one coordinator loop behind [`serve_timed`] and
/// [`serve_observed`].
fn serve_inner(
    out: &SimOutput,
    cfg: &ServeConfig,
    clock: Clock<'_>,
    mut obs: Option<&mut sybil_obs::Registry>,
) -> Result<(DeploymentReport, ServeStats), ServeError> {
    let rt = cfg.detect.sanitized();
    if rt.adaptive && rt.feedback_delay_h == 0 {
        return Err(ServeError::ZeroFeedbackDelay);
    }
    let shards_n = if cfg.shards == 0 {
        par::num_threads()
    } else {
        cfg.shards
    }
    .max(1);
    let epoch_h = if rt.adaptive {
        cfg.epoch_hours.clamp(1, rt.feedback_delay_h)
    } else {
        cfg.epoch_hours.max(1)
    };
    let epoch_s = epoch_h * 3600;

    let n = out.accounts.len();
    let mut shards: Vec<ShardState> = (0..shards_n)
        .map(|s| ShardState::new(s, shards_n, n, &rt))
        .collect();
    let mut mirror = GraphMirror::new(n, cfg.rotate_floor);

    // Pull-based epoch slicing: at most one epoch of events is buffered,
    // and no decision-index array proportional to the log is built (see
    // `osn_sim::stream::PullStream`).
    let mut batches = EpochBatches::new(&out.log, epoch_s);
    // Feedback staged last epoch, merged, awaiting redistribution.
    let mut carry_feedback: Vec<TaggedFeedback> = Vec::new();
    // All detections so far, in global stream order.
    let mut tagged: Vec<TaggedDetection> = Vec::new();
    let mut stats = ServeStats {
        shard_busy_s: vec![0.0; shards_n],
        ..ServeStats::default()
    };
    let mut epochs_wall_s = 0.0f64;
    // Logical totals, folded from per-shard tallies at each barrier.
    let mut totals = ReplayCounters::default();
    let mut epochs: u64 = 0;
    let t_start = clock();

    while let Some((events, details)) = batches.next_epoch() {
        let feed = std::mem::take(&mut carry_feedback);
        let t_epoch = clock();
        // Sequential prepass: collect the epoch's new edges, seq-tagged,
        // so shards can read them without maintaining their own mirrors.
        let eidx = mirror.index_epoch(events, details);
        let results = par::map_owned(std::mem::take(&mut shards), |mut s| {
            let t0 = clock();
            let staged = s.run_epoch(events, details, out, &feed, &mirror, &eidx);
            let busy = clock() - t0;
            staged.map(|e| (s, e, busy))
        });

        epochs += 1;
        totals.events_processed += events.len() as u64;
        let mut epoch_dets: Vec<TaggedDetection> = Vec::new();
        let mut epoch_fb: Vec<TaggedFeedback> = Vec::new();
        let (mut busy_sum, mut busy_max) = (0.0f64, 0.0f64);
        for r in results {
            let (mut s, eout, busy) = r?;
            let sid = shards.len();
            stats.shard_busy_s[sid] += busy;
            busy_sum += busy;
            busy_max = busy_max.max(busy);
            // Drain this shard's tallies (`map_owned` preserves input
            // order, so this fold runs in shard-id order every time).
            let sobs = std::mem::take(&mut s.obs);
            totals.checks_run += sobs.checks_run;
            totals.detections += sobs.detections;
            totals.features_computed += sobs.features_computed;
            totals.audits_sampled += sobs.audits_sampled;
            // The adaptive replica applies the same feedback on every
            // shard; shard 0's count is the sequential engine's count.
            if sid == 0 {
                totals.feedback_applied += sobs.feedback_applied;
            }
            if let Some(reg) = obs.as_deref_mut() {
                reg.add_sharded(sid, "checks_run", sobs.checks_run);
                reg.max_sharded(sid, "det_queue_hwm", eout.detections.len() as u64);
                reg.max_sharded(sid, "fb_queue_hwm", eout.feedback.len() as u64);
            }
            shards.push(s);
            epoch_dets.extend(eout.detections.into_items());
            epoch_fb.extend(eout.feedback.into_items());
        }
        // Coordinator work is everything in the epoch that is not shard
        // busy time; the critical path pays it plus the slowest shard.
        let epoch_wall = clock() - t_epoch;
        let coord = (epoch_wall - busy_sum).max(0.0);
        stats.critical_path_s += coord + busy_max;
        epochs_wall_s += epoch_wall;
        if let Some(reg) = obs.as_deref_mut() {
            let sid = reg.span("epoch");
            reg.record_span(sid, epoch_wall);
        }
        // Deterministic merge: (timestamp, seq) recovers the sequential
        // emission order (seq is unique; account ownership partitions the
        // stream, so no two shards stage the same seq+kind).
        epoch_dets.sort_by_key(|d| (d.detection.at, d.seq));
        tagged.extend(epoch_dets);
        epoch_fb.sort_by_key(|f| (f.seq, f.intra));
        carry_feedback = epoch_fb;
        mirror.absorb(eidx);
    }

    let report = assemble(out, &rt, &shards, &tagged);
    stats.wall_s = clock() - t_start;
    // Stream buffering and final assembly are sequential coordinator
    // work: everything outside the per-epoch windows joins the path.
    stats.critical_path_s += (stats.wall_s - epochs_wall_s).max(0.0);
    if let Some(reg) = obs {
        totals.export(reg);
        let id = reg.counter("epochs");
        reg.add(id, epochs);
    }
    Ok((report, stats))
}

/// Fold merged detections and final shard states into the report, in the
/// exact arithmetic order the sequential engine used.
fn assemble(
    out: &SimOutput,
    rt: &RealtimeConfig,
    shards: &[ShardState],
    tagged: &[TaggedDetection],
) -> DeploymentReport {
    let mut report = DeploymentReport {
        final_rule: rt.rule,
        ..Default::default()
    };
    for td in tagged {
        let d = td.detection;
        report.detections.push(d);
        if d.correct {
            report.true_positives += 1;
            // Same accumulation order as the sequential loop: global
            // detection order, one running f64 sum.
            report.mean_latency_h +=
                d.at.as_hours() - out.accounts[d.account.index()].created_at.as_hours();
        } else {
            report.false_positives += 1;
        }
    }
    let shards_n = shards.len();
    for (i, a) in out.accounts.iter().enumerate() {
        if a.is_sybil() {
            let st = &shards[i % shards_n].states[i / shards_n];
            if st.sent as usize >= rt.warmup_requests && !st.detected {
                report.missed += 1;
            }
        }
    }
    if report.true_positives > 0 {
        report.mean_latency_h /= report.true_positives as f64;
    }
    report.final_rule = if rt.adaptive {
        // Every replica applied the identical feedback sequence; in debug
        // builds, spot-check the invariant on the audit cursor.
        debug_assert!(shards
            .windows(2)
            .all(|w| w[0].audit_cursor == w[1].audit_cursor));
        shards[0].current_rule()
    } else {
        rt.rule
    };
    report.detections.sort_by_key(|d| d.at);
    report
}
