//! The epoch-barrier coordinator: slice the event stream into epochs, run
//! every shard over each slice in parallel, merge staged effects
//! deterministically at the barrier.
//!
//! The determinism argument, end to end:
//!
//! 1. [`EventStream`] gives every event a global `seq` in exactly the
//!    sequential replay's processing order.
//! 2. Within an epoch, each shard applies owned-account transitions in
//!    event order and stages detections/feedback tagged with `seq`. All
//!    shared inputs a check reads are either owned by that shard,
//!    replicated identically on every shard (the audit cursor and
//!    adaptive replica — all shards scan all events), or read-only for
//!    the epoch (the coordinator's edge mirror plus the seq-tagged epoch
//!    index, restricted to edges created at or before the checking
//!    event), so no value depends on cross-shard timing.
//! 3. At the barrier the coordinator sorts detections by `(timestamp,
//!    seq)` (account ownership makes `seq` already unique) and feedback by
//!    `(seq, intra)`, recovering the sequential emission order; feedback
//!    is redistributed to every replica before the next epoch begins.
//! 4. Feedback staged in epoch *k* is never due before epoch *k+1*
//!    because the epoch length is clamped to the verification delay — so
//!    deferring its delivery to the barrier loses nothing.
//!
//! Latency sums are accumulated in merged detection order and the final
//! rule is read off shard 0's replica, so the assembled
//! [`DeploymentReport`] is byte-identical to [`replay`]'s at every shard
//! and thread count.

use crate::fault::{
    ChaosError, EpochRecord, EpochRecordRef, FaultKind, FaultPlane, SessionCheckpoint, ShardFault,
};
use crate::mirror::GraphMirror;
use crate::queue::QueueFull;
use crate::shard::{EpochOutput, ShardObs, ShardState, TaggedDetection, TaggedFeedback};
use osn_graph::par;
use osn_sim::stream::EpochBatches;
use osn_sim::SimOutput;
use sybil_core::realtime::{DeploymentReport, RealtimeConfig, ReplayCounters};

/// Configuration of the sharded serving engine.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker shard count; 0 means "use [`par::num_threads`]" (the
    /// `RENREN_THREADS` environment override).
    pub shards: usize,
    /// Barrier cadence in simulated hours. Bounds the per-epoch event
    /// buffer; clamped to `[1, feedback_delay_h]` when adaptive feedback
    /// is on (see the module docs for why).
    pub epoch_hours: u64,
    /// The detector configuration, shared with the sequential
    /// [`replay`].
    pub detect: RealtimeConfig,
    /// Snapshot-rotation floor in edges; 0 selects the engine default
    /// (1024). Rotation timing is value-neutral, so this only trades
    /// rotation frequency against delta-probe length — tests force tiny
    /// floors to exercise many incremental rotations.
    pub rotate_floor: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 0,
            epoch_hours: 48,
            detect: RealtimeConfig::default(),
            rotate_floor: 0,
        }
    }
}

impl ServeConfig {
    /// Engine defaults (ambient shard count, 48 h epochs) around a given
    /// detector configuration.
    pub fn for_detect(detect: RealtimeConfig) -> Self {
        ServeConfig {
            detect,
            ..ServeConfig::default()
        }
    }
}

/// Why the serving engine could not produce a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A shard staged more effects than its epoch-invariant bound — an
    /// engine bug, surfaced instead of silently growing the queue. The
    /// carried [`QueueFull`] names the exact `(epoch, shard, seq)` site.
    QueueOverflow(QueueFull),
    /// `adaptive` with `feedback_delay_h == 0` cannot be sharded: feedback
    /// would be due within the epoch that generated it, and the sequential
    /// engine would apply it between adjacent events.
    ZeroFeedbackDelay,
    /// A fault-plane failure: an injected fault that could not be
    /// absorbed, a journal failure, or a crash replay that diverged.
    /// Always attributed — never a silent wrong answer.
    Chaos(ChaosError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueOverflow(q) => write!(f, "shard effect {q}"),
            ServeError::ZeroFeedbackDelay => {
                write!(f, "adaptive serving requires feedback_delay_h ≥ 1")
            }
            ServeError::Chaos(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueueFull> for ServeError {
    fn from(q: QueueFull) -> Self {
        ServeError::QueueOverflow(q)
    }
}

/// A monotonic-seconds source injected by callers that want timing
/// ([`ServeSession::clock`](crate::ServeSession::clock)). The engine
/// never reads a clock itself, so timing stays a benchmark concern.
pub type Clock<'a> = &'a (dyn Fn() -> f64 + Sync);

/// Timing breakdown of a serve run (zero when no clock was injected).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// End-to-end seconds, by the injected clock.
    pub wall_s: f64,
    /// Modeled parallel critical path: per epoch, the sequential
    /// coordinator work plus the *slowest* shard's busy time. Equals
    /// wall-clock when every shard has its own core; on fewer cores
    /// (where shards run serially) it reports what wall-clock would be
    /// with enough cores, exactly.
    pub critical_path_s: f64,
    /// Total busy seconds per shard across all epochs.
    pub shard_busy_s: Vec<f64>,
}

/// The one coordinator loop behind
/// [`ServeSession`](crate::ServeSession) — run it through the builder,
/// which owns the optional-capability wiring (clock, metrics, fault
/// plane / store). Generic over the fault plane so the production
/// instantiation (with [`NoFaults`](crate::NoFaults)) monomorphizes
/// every hook to an inlined no-op.
pub(crate) fn serve_inner<P: FaultPlane>(
    out: &SimOutput,
    cfg: &ServeConfig,
    clock: Clock<'_>,
    mut obs: Option<&mut sybil_obs::Registry>,
    plane: &mut P,
) -> Result<(DeploymentReport, ServeStats), ServeError> {
    let rt = cfg.detect.sanitized();
    if rt.adaptive && rt.feedback_delay_h == 0 {
        return Err(ServeError::ZeroFeedbackDelay);
    }
    let shards_n = if cfg.shards == 0 {
        par::num_threads()
    } else {
        cfg.shards
    }
    .max(1);
    let epoch_h = if rt.adaptive {
        cfg.epoch_hours.clamp(1, rt.feedback_delay_h)
    } else {
        cfg.epoch_hours.max(1)
    };
    let epoch_s = epoch_h * 3600;

    let n = out.accounts.len();
    let mut shards: Vec<ShardState> = (0..shards_n)
        .map(|s| ShardState::new(s, shards_n, n, &rt))
        .collect();
    let mut mirror = GraphMirror::new(n, cfg.rotate_floor);

    // Pull-based epoch slicing: at most one epoch of events is buffered,
    // and no decision-index array proportional to the log is built (see
    // `osn_sim::stream::PullStream`).
    let mut batches = EpochBatches::new(&out.log, epoch_s);
    // Feedback staged last epoch, merged, awaiting redistribution.
    let mut carry_feedback: Vec<TaggedFeedback> = Vec::new();
    // All detections so far, in global stream order.
    let mut tagged: Vec<TaggedDetection> = Vec::new();
    let mut stats = ServeStats {
        shard_busy_s: vec![0.0; shards_n],
        ..ServeStats::default()
    };
    let mut epochs_wall_s = 0.0f64;
    // Logical totals, folded from per-shard tallies at each barrier.
    let mut totals = ReplayCounters::default();
    let mut epochs: u64 = 0;
    let t_start = clock();

    // One branch per run, not per epoch: a disabled plane (production)
    // skips every chaos block below.
    let chaos = plane.enabled();

    // Warm restart: the plane may hand back the latest checkpoint plus
    // the journal tail written after it. Restore the barrier-time state,
    // replay the tail sequentially (same inputs, same merge keys, same
    // fold order as the live barrier), then skip the already-completed
    // epochs in the live loop below and continue mid-stream.
    let mut resume_skip = 0u64;
    if chaos {
        if let Some(resume) = plane.load_resume().map_err(ServeError::Chaos)? {
            let cp = resume.checkpoint;
            if cp.shards.len() != shards_n {
                // A checkpoint from a different shard topology cannot
                // resume this run.
                return Err(ServeError::Chaos(ChaosError {
                    epoch: cp.epochs,
                    shard: None,
                    fault_kind: FaultKind::Journal,
                }));
            }
            shards = cp
                .shards
                .iter()
                .enumerate()
                .map(|(s, snap)| ShardState::from_snapshot(s, shards_n, n, &rt, snap))
                .collect();
            mirror =
                GraphMirror::restore(n, cfg.rotate_floor, &cp.folded_edges, &cp.staged_edges);
            tagged = cp
                .tagged
                .into_iter()
                .map(|(seq, detection)| TaggedDetection { seq, detection })
                .collect();
            carry_feedback = cp.carry_feedback;
            totals = cp.totals;
            epochs = cp.epochs;
            for rec in &resume.tail {
                if rec.epoch != epochs {
                    // The tail must continue exactly where the
                    // checkpoint stopped, gap- and overlap-free.
                    return Err(ServeError::Chaos(ChaosError {
                        epoch: rec.epoch,
                        shard: None,
                        fault_kind: FaultKind::Journal,
                    }));
                }
                replay_tail_epoch(
                    plane,
                    rec,
                    out,
                    &mut shards,
                    &mut mirror,
                    &mut tagged,
                    &mut carry_feedback,
                    &mut totals,
                )?;
                epochs += 1;
            }
            resume_skip = epochs;
        }
    }

    while let Some((events, details)) = batches.next_epoch() {
        if resume_skip > 0 {
            // This epoch finished before the restart (restored from the
            // checkpoint or replayed from the journal tail): consume its
            // batch and move on.
            resume_skip -= 1;
            continue;
        }
        let feed = std::mem::take(&mut carry_feedback);
        let t_epoch = clock();
        let epoch_no = epochs;
        if chaos {
            // Write-ahead: the journal records the epoch's full input
            // *before* any shard touches it, so a mid-epoch crash can
            // always replay the in-flight epoch.
            plane
                .epoch_begin(EpochRecordRef {
                    epoch: epoch_no,
                    events,
                    details,
                    feedback: &feed,
                })
                .map_err(ServeError::Chaos)?;
        }
        // Sequential prepass: collect the epoch's new edges, seq-tagged,
        // so shards can read them without maintaining their own mirrors.
        let eidx = mirror.index_epoch(events, details);
        let clamps: Vec<Option<usize>> = if chaos {
            (0..shards_n).map(|s| plane.queue_clamp(epoch_no, s)).collect()
        } else {
            Vec::new()
        };
        // Barrier digests are per-shard work: each worker digests its own
        // state inside the parallel section (and inside its busy window)
        // instead of the coordinator folding all shards serially.
        let want_dig = chaos && plane.wants_digests(epoch_no);
        let mut results = par::map_owned(std::mem::take(&mut shards), |mut s| {
            let sid = s.id();
            let clamp = clamps.get(sid).copied().flatten();
            let t0 = clock();
            let staged =
                s.run_epoch(events, details, out, &feed, &mirror, &eidx, epoch_no, clamp);
            let dig = (want_dig && staged.is_ok()).then(|| s.digest());
            let busy = clock() - t0;
            staged.map(|e| (sid, s, e, busy, dig))
        });

        epochs += 1;
        totals.events_processed += events.len() as u64;
        if chaos {
            // Delivery-order fault: results may reach the barrier in any
            // order. The fold below is keyed by the shard-id tag, so a
            // permutation must be output-neutral.
            if let Some(ord) = plane.deliver_order(epoch_no, shards_n) {
                results = permute(results, &ord);
            }
        }
        // Collect arrivals; a crashed shard's result (or its overflow
        // error) dies with the crash and is replaced by journal replay.
        let mut arrived: Vec<(usize, ShardState, EpochOutput, f64, Option<u64>)> =
            Vec::with_capacity(shards_n);
        for r in results {
            match r {
                Ok((sid, s, eout, busy, dig)) => {
                    if chaos && plane.shard_fault(epoch_no, sid) == ShardFault::Crash {
                        continue;
                    }
                    arrived.push((sid, s, eout, busy, dig));
                }
                Err(q) => {
                    let crashed = chaos
                        && q.site.is_some_and(|site| {
                            plane.shard_fault(epoch_no, site.shard) == ShardFault::Crash
                        });
                    if !crashed {
                        return Err(ServeError::QueueOverflow(q));
                    }
                }
            }
        }
        if chaos && arrived.len() < shards_n {
            for sid in 0..shards_n {
                if plane.shard_fault(epoch_no, sid) == ShardFault::Crash {
                    let (s, eout, _) = rebuild_shard(
                        plane,
                        sid,
                        shards_n,
                        out,
                        &rt,
                        cfg.rotate_floor,
                        Some(epoch_no),
                    )?;
                    let Some(eout) = eout else {
                        return Err(ServeError::Chaos(ChaosError {
                            epoch: epoch_no,
                            shard: Some(sid),
                            fault_kind: FaultKind::Journal,
                        }));
                    };
                    let dig = want_dig.then(|| s.digest());
                    arrived.push((sid, s, eout, 0.0, dig));
                }
            }
        }
        let mut epoch_dets: Vec<TaggedDetection> = Vec::new();
        let mut epoch_fb: Vec<TaggedFeedback> = Vec::new();
        let mut epoch_digs: Vec<(usize, u64)> = Vec::new();
        let (mut busy_sum, mut busy_max) = (0.0f64, 0.0f64);
        // The fold is arrival-order-insensitive by construction: totals
        // are commutative integer adds, detections and feedback are
        // sorted below, and everything keyed (busy time, sharded
        // metrics, the shard-0 feedback rule) uses the shard-id tag.
        let mut merged: Vec<(usize, ShardState)> = Vec::with_capacity(shards_n);
        for (sid, mut s, eout, busy, dig) in arrived {
            if let Some(d) = dig {
                epoch_digs.push((sid, d));
            }
            stats.shard_busy_s[sid] += busy;
            busy_sum += busy;
            busy_max = busy_max.max(busy);
            let sobs = std::mem::take(&mut s.obs);
            totals.checks_run += sobs.checks_run;
            totals.detections += sobs.detections;
            totals.features_computed += sobs.features_computed;
            totals.audits_sampled += sobs.audits_sampled;
            // The adaptive replica applies the same feedback on every
            // shard; shard 0's count is the sequential engine's count.
            if sid == 0 {
                totals.feedback_applied += sobs.feedback_applied;
            }
            if let Some(reg) = obs.as_deref_mut() {
                reg.add_sharded(sid, "checks_run", sobs.checks_run);
                reg.max_sharded(sid, "det_queue_hwm", eout.detections.len() as u64);
                reg.max_sharded(sid, "fb_queue_hwm", eout.feedback.len() as u64);
            }
            merged.push((sid, s));
            epoch_dets.extend(eout.detections.into_items());
            epoch_fb.extend(eout.feedback.into_items());
        }
        merged.sort_by_key(|(sid, _)| *sid);
        shards.extend(merged.into_iter().map(|(_, s)| s));
        // Coordinator work is everything in the epoch that is not shard
        // busy time; the critical path pays it plus the slowest shard.
        let epoch_wall = clock() - t_epoch;
        let coord = (epoch_wall - busy_sum).max(0.0);
        stats.critical_path_s += coord + busy_max;
        epochs_wall_s += epoch_wall;
        if let Some(reg) = obs.as_deref_mut() {
            let sid = reg.span("epoch");
            reg.record_span(sid, epoch_wall);
        }
        // Deterministic merge: (timestamp, seq) recovers the sequential
        // emission order (seq is unique; account ownership partitions the
        // stream, so no two shards stage the same seq+kind).
        epoch_dets.sort_by_key(|d| (d.detection.at, d.seq));
        tagged.extend(epoch_dets);
        epoch_fb.sort_by_key(|f| (f.seq, f.intra));
        carry_feedback = epoch_fb;
        mirror.absorb(eidx);
        if chaos {
            epoch_digs.sort_by_key(|&(sid, _)| sid);
            let digests: Option<Vec<u64>> =
                want_dig.then(|| epoch_digs.iter().map(|&(_, d)| d).collect());
            plane
                .epoch_commit(epoch_no, digests.as_deref())
                .map_err(ServeError::Chaos)?;
            if plane.wants_checkpoint(epoch_no) {
                // Post-commit, post-fold: the checkpoint captures
                // exactly the state the next epoch starts from, so a
                // restart resumes at this barrier.
                let cp = SessionCheckpoint {
                    epochs,
                    shards: shards.iter().map(ShardState::snapshot).collect(),
                    folded_edges: mirror.folded_edges(),
                    staged_edges: mirror.staged_edges().to_vec(),
                    tagged: tagged.iter().map(|t| (t.seq, t.detection)).collect(),
                    carry_feedback: carry_feedback.clone(),
                    totals,
                };
                plane.checkpoint(&cp).map_err(ServeError::Chaos)?;
            }
        }
    }

    if chaos {
        let final_digests: Vec<u64> = shards.iter().map(|s| s.digest()).collect();
        plane
            .run_end(epochs, &final_digests)
            .map_err(ServeError::Chaos)?;
    }
    let report = assemble(out, &rt, &shards, &tagged);
    stats.wall_s = clock() - t_start;
    // Stream buffering and final assembly are sequential coordinator
    // work: everything outside the per-epoch windows joins the path.
    stats.critical_path_s += (stats.wall_s - epochs_wall_s).max(0.0);
    if let Some(reg) = obs {
        totals.export(reg);
        let id = reg.counter("epochs");
        reg.add(id, epochs);
    }
    Ok((report, stats))
}

/// Re-run one journaled epoch on every shard during a warm restart: the
/// same inputs, merge keys, and fold order as the live barrier, so the
/// restored session reaches state byte-identical to the run that wrote
/// the journal. Obs tallies fold into `totals` exactly as live (shard
/// 0's feedback count only); per-shard registry metrics are *not*
/// replayed — a restarted process reports its own work, and the
/// byte-identity contract is on the [`DeploymentReport`]. Each shard's
/// reconstructed state is verified against the journal's committed
/// digest when one was recorded.
#[allow(clippy::too_many_arguments)]
fn replay_tail_epoch<P: FaultPlane>(
    plane: &mut P,
    rec: &EpochRecord,
    out: &SimOutput,
    shards: &mut [ShardState],
    mirror: &mut GraphMirror,
    tagged: &mut Vec<TaggedDetection>,
    carry_feedback: &mut Vec<TaggedFeedback>,
    totals: &mut ReplayCounters,
) -> Result<(), ServeError> {
    let feed = std::mem::take(carry_feedback);
    let eidx = mirror.index_epoch(&rec.events, &rec.details);
    totals.events_processed += rec.events.len() as u64;
    let mut epoch_dets: Vec<TaggedDetection> = Vec::new();
    let mut epoch_fb: Vec<TaggedFeedback> = Vec::new();
    for s in shards.iter_mut() {
        let sid = s.id();
        let eout = s
            .run_epoch(
                &rec.events,
                &rec.details,
                out,
                &feed,
                mirror,
                &eidx,
                rec.epoch,
                None,
            )
            .map_err(|_| {
                // The original epoch ran inside its invariant bounds; a
                // replay that overflows them has diverged.
                ServeError::Chaos(ChaosError {
                    epoch: rec.epoch,
                    shard: Some(sid),
                    fault_kind: FaultKind::ReplayDivergence,
                })
            })?;
        let sobs = std::mem::take(&mut s.obs);
        totals.checks_run += sobs.checks_run;
        totals.detections += sobs.detections;
        totals.features_computed += sobs.features_computed;
        totals.audits_sampled += sobs.audits_sampled;
        if sid == 0 {
            totals.feedback_applied += sobs.feedback_applied;
        }
        if let Some(want) = plane.committed_digest(rec.epoch, sid) {
            if s.digest() != want {
                return Err(ServeError::Chaos(ChaosError {
                    epoch: rec.epoch,
                    shard: Some(sid),
                    fault_kind: FaultKind::ReplayDivergence,
                }));
            }
        }
        epoch_dets.extend(eout.detections.into_items());
        epoch_fb.extend(eout.feedback.into_items());
    }
    epoch_dets.sort_by_key(|d| (d.detection.at, d.seq));
    tagged.extend(epoch_dets);
    epoch_fb.sort_by_key(|f| (f.seq, f.intra));
    *carry_feedback = epoch_fb;
    mirror.absorb(eidx);
    Ok(())
}

/// Reorder `items` according to `ord` (a permutation of `0..len`).
/// Malformed orders degrade gracefully: out-of-range or repeated indices
/// are skipped and unpicked items keep their relative order at the end,
/// so a buggy plane can at worst deliver the identity ordering late,
/// never lose a shard result.
fn permute<T>(items: Vec<T>, ord: &[usize]) -> Vec<T> {
    if ord.len() != items.len() {
        return items;
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut picked = Vec::with_capacity(slots.len());
    for &i in ord {
        if let Some(slot) = slots.get_mut(i) {
            if let Some(v) = slot.take() {
                picked.push(v);
            }
        }
    }
    for slot in &mut slots {
        if let Some(v) = slot.take() {
            picked.push(v);
        }
    }
    picked
}

/// Rebuild shard `sid` from the plane's write-ahead journal: a fresh
/// [`ShardState`] and a fresh recovery mirror replay journaled epochs in
/// order, which reconstructs byte-identical `realtime::state` because
/// `run_epoch` is a pure function of (state, epoch inputs) and the
/// journal captured exactly those inputs.
///
/// With `crash_epoch = Some(k)`: epochs `0..k` are replayed with their
/// re-staged outputs discarded (the original barriers already merged
/// them) and their post-epoch digests verified against the journal's
/// commits; epoch `k` is then re-run for real and its output returned as
/// the crashed shard's contribution. With `None`, the whole journal is
/// replayed (the journal round-trip check).
///
/// Every failure is typed: a missing record is
/// [`FaultKind::Journal`], a digest mismatch or replay overflow is
/// [`FaultKind::ReplayDivergence`].
fn rebuild_shard<P: FaultPlane>(
    plane: &mut P,
    sid: usize,
    shards_n: usize,
    out: &SimOutput,
    rt: &RealtimeConfig,
    rotate_floor: usize,
    crash_epoch: Option<u64>,
) -> Result<(ShardState, Option<EpochOutput>, u64), ServeError> {
    let n = out.accounts.len();
    let mut s = ShardState::new(sid, shards_n, n, rt);
    let mut rmirror = GraphMirror::new(n, rotate_floor);
    let mut replayed = 0u64;
    let mut e = 0u64;
    loop {
        let Some(rec) = plane.replay_epoch(e).map_err(ServeError::Chaos)? else {
            if let Some(k) = crash_epoch {
                // Write-ahead contract broken: the crashed epoch's begin
                // record must exist before the epoch ran.
                return Err(ServeError::Chaos(ChaosError {
                    epoch: k,
                    shard: Some(sid),
                    fault_kind: FaultKind::Journal,
                }));
            }
            break;
        };
        let eidx = rmirror.index_epoch(&rec.events, &rec.details);
        let eout = s
            .run_epoch(
                &rec.events,
                &rec.details,
                out,
                &rec.feedback,
                &rmirror,
                &eidx,
                e,
                None,
            )
            .map_err(|_| {
                // The original epoch ran inside its invariant bounds; a
                // replay that overflows them has diverged.
                ServeError::Chaos(ChaosError {
                    epoch: e,
                    shard: Some(sid),
                    fault_kind: FaultKind::ReplayDivergence,
                })
            })?;
        replayed += 1;
        if crash_epoch == Some(e) {
            // The in-flight epoch: keep the re-run output and tallies as
            // the crashed shard's contribution to the current barrier.
            return Ok((s, Some(eout), replayed));
        }
        // A completed epoch: its effects were already merged at the
        // original barrier — discard the re-staged copies, then verify
        // the reconstructed state against the committed digest.
        drop(eout);
        s.obs = ShardObs::default();
        rmirror.absorb(eidx);
        if let Some(want) = plane.committed_digest(e, sid) {
            if s.digest() != want {
                return Err(ServeError::Chaos(ChaosError {
                    epoch: e,
                    shard: Some(sid),
                    fault_kind: FaultKind::ReplayDivergence,
                }));
            }
        }
        e += 1;
    }
    Ok((s, None, replayed))
}

/// Replay shard `sid`'s entire history out of `plane`'s journal and
/// return the digest of the reconstructed `realtime::state` — the
/// journal round-trip check. Comparing the result against the digest the
/// live run committed at its final barrier proves the on-disk journal
/// alone reaches byte-identical state. Shard resolution follows the
/// engine's: `cfg.shards == 0` means the ambient thread count.
pub fn replay_shard<P: FaultPlane>(
    plane: &mut P,
    sid: usize,
    out: &SimOutput,
    cfg: &ServeConfig,
) -> Result<u64, ServeError> {
    let rt = cfg.detect.sanitized();
    let shards_n = if cfg.shards == 0 {
        par::num_threads()
    } else {
        cfg.shards
    }
    .max(1);
    let (s, _, _) = rebuild_shard(plane, sid, shards_n, out, &rt, cfg.rotate_floor, None)?;
    Ok(s.digest())
}

/// Fold merged detections and final shard states into the report, in the
/// exact arithmetic order the sequential engine used.
fn assemble(
    out: &SimOutput,
    rt: &RealtimeConfig,
    shards: &[ShardState],
    tagged: &[TaggedDetection],
) -> DeploymentReport {
    let mut report = DeploymentReport {
        final_rule: rt.rule,
        ..Default::default()
    };
    for td in tagged {
        let d = td.detection;
        report.detections.push(d);
        if d.correct {
            report.true_positives += 1;
            // Same accumulation order as the sequential loop: global
            // detection order, one running f64 sum.
            report.mean_latency_h +=
                d.at.as_hours() - out.accounts[d.account.index()].created_at.as_hours();
        } else {
            report.false_positives += 1;
        }
    }
    let shards_n = shards.len();
    for (i, a) in out.accounts.iter().enumerate() {
        if a.is_sybil() {
            let st = &shards[i % shards_n].states[i / shards_n];
            if st.sent as usize >= rt.warmup_requests && !st.detected {
                report.missed += 1;
            }
        }
    }
    if report.true_positives > 0 {
        report.mean_latency_h /= report.true_positives as f64;
    }
    report.final_rule = if rt.adaptive {
        // Every replica applied the identical feedback sequence; in debug
        // builds, spot-check the invariant on the audit cursor.
        debug_assert!(shards
            .windows(2)
            .all(|w| w[0].audit_cursor == w[1].audit_cursor));
        shards[0].current_rule()
    } else {
        rt.rule
    };
    report.detections.sort_by_key(|d| d.at);
    report
}
