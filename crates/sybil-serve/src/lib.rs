//! # sybil-serve — sharded streaming Sybil detection engine
//!
//! The paper's deployed detector (§2.3, §5) was an *online* system
//! consuming Renren's live friend-request stream. This crate is the
//! serving-scale counterpart of the sequential
//! [`replay`](sybil_core::realtime::replay): the merged send/decision
//! stream is processed by `N` worker shards partitioned by account id,
//! each owning its accounts' running state ([`AccountState`] from
//! `sybil_core::realtime::state`). Clustering features are served from
//! the coordinator's single accepted-edge mirror — a rotating
//! [`CsrSnapshot`](osn_graph::CsrSnapshot) plus an unfolded delta and a
//! seq-tagged index of the running epoch's edges — lent to shards
//! read-only, so per-shard cost is owned-account work, not edge
//! bookkeeping.
//!
//! Cross-shard effects — detections and verification feedback — are
//! staged in bounded SPSC [`queue::DeltaQueue`]s and merged
//! deterministically at epoch barriers. The headline invariant: the
//! [`DeploymentReport`](sybil_core::realtime::DeploymentReport) this
//! engine produces is **byte-identical** to the sequential replay's at
//! every shard count and every `RENREN_THREADS` value. See `engine` for
//! the argument and DESIGN.md §"Serving architecture" for the prose
//! version.
//!
//! The one entry point is the [`ServeSession`] builder: construct with a
//! [`ServeConfig`], chain on the optional capabilities (clock, metrics,
//! fault/persistence plane), and [`run`](ServeSession::run). With a
//! persistence plane (`sybil-store`'s `StorePlane`) the session also
//! checkpoints at epoch barriers and warm-restarts mid-stream — see
//! `session` and DESIGN.md §"Persistence & warm restart".

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod fault;
mod mirror;
pub mod queue;
mod session;
mod shard;

pub use engine::{replay_shard, Clock, ServeConfig, ServeError, ServeStats};
pub use fault::{
    ChaosError, FaultKind, FaultPlane, NoFaults, ResumeState, SessionCheckpoint, ShardSnapshot,
};
pub use session::{ServeOutcome, ServeSession};
