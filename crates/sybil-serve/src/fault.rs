//! The fault plane: every chaos decision point the epoch-barrier
//! coordinator consults, as one trait with no-op defaults.
//!
//! Production serving runs with [`NoFaults`] — every hook is an inlined
//! empty default, the coordinator gates all per-epoch chaos bookkeeping
//! behind [`FaultPlane::enabled`], and the monomorphized `serve()` path
//! is the same code it was before the plane existed. The `sybil-chaos`
//! crate provides the other implementation: a seeded `FaultSchedule`
//! answering these hooks plus a write-ahead epoch journal behind
//! [`epoch_begin`](FaultPlane::epoch_begin) /
//! [`epoch_commit`](FaultPlane::epoch_commit).
//!
//! The hooks sit at the coordinator's *existing* decision points, in
//! epoch order:
//!
//! 1. [`epoch_begin`](FaultPlane::epoch_begin) — before any shard runs,
//!    with the epoch's full input (events, details, carried feedback):
//!    the write-ahead journal point.
//! 2. [`queue_clamp`](FaultPlane::queue_clamp) — per shard, a capacity
//!    override for the staging [`DeltaQueue`](crate::queue::DeltaQueue)s
//!    (overflow injection).
//! 3. [`shard_fault`](FaultPlane::shard_fault) — per shard, whether this
//!    epoch's result arrives late ([`ShardFault::Stall`], absorbed by the
//!    barrier) or not at all ([`ShardFault::Crash`], triggering journal
//!    replay).
//! 4. [`deliver_order`](FaultPlane::deliver_order) — a permutation of
//!    barrier arrival order (the merge is keyed by shard id, so any
//!    permutation must be output-neutral).
//! 5. [`epoch_commit`](FaultPlane::epoch_commit) — after the merge, with
//!    per-shard state digests when requested: the journal's commit point.
//!
//! Crash recovery reads journaled epochs back through
//! [`replay_epoch`](FaultPlane::replay_epoch) and verifies each replayed
//! epoch against [`committed_digest`](FaultPlane::committed_digest); any
//! mismatch is a typed [`ChaosError`], never silent divergence.
//!
//! Workspace lint rule S118 pins the production side of this contract:
//! no IO effect may be reachable from the no-op hook implementations
//! below — journal writes are legal only behind the chaos plane's
//! barrier hooks.

use osn_graph::{NodeId, Timestamp};
use osn_sim::stream::{EventDetail, StreamEvent};
use sybil_core::realtime::state::AccountState;
use sybil_core::realtime::{Detection, ReplayCounters};
use sybil_features::FeatureVector;

pub use crate::shard::TaggedFeedback as FeedbackRecord;

/// What kind of fault (or recovery failure) an error is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A shard's epoch result was delayed; absorbed at the barrier.
    Stall,
    /// A staging-queue capacity clamp forced an overflow.
    QueueOverflow,
    /// An epoch barrier fired late (logical delay, absorbed).
    BarrierDelay,
    /// Shard results arrived at the barrier out of order.
    BarrierReorder,
    /// A shard lost its in-memory state mid-epoch.
    Crash,
    /// Journal replay reconstructed state whose digest disagrees with
    /// the digest committed at the original barrier.
    ReplayDivergence,
    /// The journal itself failed (unwritable, unreadable, or missing the
    /// record recovery needed).
    Journal,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Stall => "stall",
            FaultKind::QueueOverflow => "queue-overflow",
            FaultKind::BarrierDelay => "barrier-delay",
            FaultKind::BarrierReorder => "barrier-reorder",
            FaultKind::Crash => "crash",
            FaultKind::ReplayDivergence => "replay-divergence",
            FaultKind::Journal => "journal",
        };
        f.write_str(s)
    }
}

/// A typed, attributable chaos failure: which epoch, which shard (when
/// the fault is shard-scoped), and what kind. The engine's headline
/// chaos invariant is that every fault schedule yields either output
/// byte-identical to the fault-free run or exactly this error — never
/// silent divergence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosError {
    /// Epoch (0-based barrier count) the fault surfaced in.
    pub epoch: u64,
    /// Affected shard; `None` for coordinator-level faults (barrier and
    /// journal failures).
    pub shard: Option<usize>,
    /// What the failure is attributed to.
    pub fault_kind: FaultKind,
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.shard {
            Some(s) => write!(
                f,
                "chaos fault at epoch {}, shard {}: {}",
                self.epoch, s, self.fault_kind
            ),
            None => write!(f, "chaos fault at epoch {}: {}", self.epoch, self.fault_kind),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Per-shard fault decision for one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFault {
    /// No fault: the shard's result merges normally.
    Healthy,
    /// The result arrives this many logical epochs late. The barrier
    /// waits (the merge is all-or-nothing), so a stall is absorbed —
    /// it costs recovery latency, never output bytes.
    Stall(u32),
    /// The shard's in-memory state is lost mid-epoch; the coordinator
    /// rebuilds it by replaying the write-ahead journal.
    Crash,
}

/// Borrowed view of one epoch's full input, handed to the write-ahead
/// hook before any shard runs. Everything a crashed shard needs to
/// re-run the epoch is here: the event slice, its parallel detail
/// slice, and the barrier-merged feedback carried in from earlier
/// epochs.
#[derive(Clone, Copy)]
pub struct EpochRecordRef<'a> {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// The epoch's event slice, in global stream order.
    pub events: &'a [StreamEvent],
    /// Parallel per-event details (endpoints, outcomes).
    pub details: &'a [EventDetail],
    /// Feedback merged at the previous barrier, in `(seq, intra)` order.
    pub feedback: &'a [FeedbackRecord],
}

/// Owned epoch input decoded back out of the journal for replay.
#[derive(Clone, Default)]
pub struct EpochRecord {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// The epoch's events.
    pub events: Vec<StreamEvent>,
    /// Parallel per-event details.
    pub details: Vec<EventDetail>,
    /// Feedback delivered at this epoch's start.
    pub feedback: Vec<FeedbackRecord>,
}

/// Byte-exact snapshot of one shard's full logical state at an epoch
/// barrier — everything [`digest`](crate::engine)-relevant: owned account
/// states, the replicated adaptive thresholds (as raw IEEE-754 bit
/// words, so persistence round-trips exactly), the pending feedback
/// replica, and the audit bookkeeping. Derived fields (ownership masks,
/// kernel scratch) are rebuilt on restore, not persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSnapshot {
    /// Owned accounts' states, in local-slot order.
    pub states: Vec<AccountState>,
    /// `AdaptiveThresholds::to_raw` words (six trackers + `use_cc`).
    pub adaptive: [u64; 31],
    /// Pending feedback replica: `(due, features, truth)` in global order.
    pub feedback_queue: Vec<(Timestamp, FeatureVector, bool)>,
    /// Sends until the next audit sample.
    pub sends_until_audit: u64,
    /// Deterministic audit pointer.
    pub audit_cursor: u64,
}

/// Everything a warm restart needs to resume the coordinator loop from
/// an epoch barrier: per-shard state, the edge mirror (folded and staged
/// halves separately, so rotation timing resumes exactly), the merged
/// detections so far, the feedback awaiting redistribution, and the
/// logical totals. Taken at the *end* of an epoch, so `epochs` is the
/// number of completed epochs and the next live epoch is `epochs`.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCheckpoint {
    /// Completed epochs at checkpoint time.
    pub epochs: u64,
    /// One snapshot per shard, in shard-id order.
    pub shards: Vec<ShardSnapshot>,
    /// Edges folded into the mirror's CSR snapshot, ordered by
    /// `(time, low id, high id)` so one merge re-fold restores it.
    pub folded_edges: Vec<(NodeId, NodeId, Timestamp)>,
    /// Edges still staged in the mirror's delta, in stream order.
    pub staged_edges: Vec<(NodeId, NodeId, Timestamp)>,
    /// Merged detections so far as `(seq, detection)`, in global order.
    pub tagged: Vec<(u64, Detection)>,
    /// Feedback staged at the last barrier, awaiting redistribution.
    pub carry_feedback: Vec<FeedbackRecord>,
    /// Logical totals folded so far.
    pub totals: ReplayCounters,
}

/// What [`FaultPlane::load_resume`] hands the coordinator on a warm
/// restart: the latest checkpoint plus the journal tail — every epoch
/// journaled after the checkpoint, to be replayed sequentially before
/// live processing resumes.
pub struct ResumeState {
    /// The checkpoint to restore.
    pub checkpoint: SessionCheckpoint,
    /// Journaled epochs `checkpoint.epochs..`, in epoch order.
    pub tail: Vec<EpochRecord>,
}

/// The coordinator's chaos decision points. Every method has a no-op
/// default, so the production implementation is [`NoFaults`] — an empty
/// `impl` block — and a conforming chaos plane overrides exactly the
/// hooks it needs.
pub trait FaultPlane {
    /// Whether any hook may ever answer non-trivially. The coordinator
    /// skips all chaos bookkeeping (write-ahead records, clamp vectors,
    /// digests) when this is `false`, keeping the production path
    /// zero-cost.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Write-ahead hook: the epoch's full input, before any shard runs.
    fn epoch_begin(&mut self, _rec: EpochRecordRef<'_>) -> Result<(), ChaosError> {
        Ok(())
    }

    /// Staging-queue capacity override for `(epoch, shard)`; `None`
    /// leaves the engine's invariant-derived capacity in place.
    #[inline]
    fn queue_clamp(&self, _epoch: u64, _shard: usize) -> Option<usize> {
        None
    }

    /// The fault injected into `(epoch, shard)`, if any.
    #[inline]
    fn shard_fault(&self, _epoch: u64, _shard: usize) -> ShardFault {
        ShardFault::Healthy
    }

    /// A permutation of `0..shards` giving the order shard results reach
    /// the barrier this epoch; `None` keeps natural (shard-id) order.
    fn deliver_order(&self, _epoch: u64, _shards: usize) -> Option<Vec<usize>> {
        None
    }

    /// Whether [`epoch_commit`](Self::epoch_commit) wants per-shard
    /// state digests this epoch (digesting is O(state), so the plane
    /// opts in per epoch).
    #[inline]
    fn wants_digests(&self, _epoch: u64) -> bool {
        false
    }

    /// Barrier-commit hook, after the epoch's merge. `digests[s]` is
    /// shard `s`'s post-epoch state digest when requested.
    fn epoch_commit(&mut self, _epoch: u64, _digests: Option<&[u64]>) -> Result<(), ChaosError> {
        Ok(())
    }

    /// Read one journaled epoch back for crash replay. `Ok(None)` means
    /// the journal has no record for `epoch` (past its end).
    fn replay_epoch(&mut self, _epoch: u64) -> Result<Option<EpochRecord>, ChaosError> {
        Ok(None)
    }

    /// The state digest committed for `(epoch, shard)`, when one was
    /// journaled — replay verification compares against it.
    fn committed_digest(&mut self, _epoch: u64, _shard: usize) -> Option<u64> {
        None
    }

    /// End-of-run hook with the final per-shard state digests.
    fn run_end(&mut self, _epochs: u64, _digests: &[u64]) -> Result<(), ChaosError> {
        Ok(())
    }

    /// Whether [`checkpoint`](Self::checkpoint) wants the full session
    /// state after epoch `epoch`'s barrier (snapshotting is O(state), so
    /// the plane opts in per epoch).
    #[inline]
    fn wants_checkpoint(&self, _epoch: u64) -> bool {
        false
    }

    /// Persist a full session checkpoint (taken at an epoch barrier,
    /// after the merge and mirror fold). Only called when
    /// [`wants_checkpoint`](Self::wants_checkpoint) answered `true`.
    fn checkpoint(&mut self, _cp: &SessionCheckpoint) -> Result<(), ChaosError> {
        Ok(())
    }

    /// Warm-restart hook, consulted once before the coordinator loop
    /// starts: `Some` restores the checkpoint, replays the journal tail,
    /// and resumes mid-stream; `None` (the default) starts cold.
    fn load_resume(&mut self) -> Result<Option<ResumeState>, ChaosError> {
        Ok(None)
    }
}

/// The production fault plane: no faults, no journal, nothing. Lint rule
/// S118 enforces that no IO is reachable from these (default) hook
/// bodies.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultPlane for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_answers_every_hook_trivially() {
        let mut p = NoFaults;
        assert!(!p.enabled());
        assert_eq!(p.queue_clamp(0, 0), None);
        assert_eq!(p.shard_fault(3, 1), ShardFault::Healthy);
        assert_eq!(p.deliver_order(0, 8), None);
        assert!(!p.wants_digests(0));
        assert_eq!(p.epoch_commit(0, None), Ok(()));
        assert!(p.replay_epoch(0).unwrap().is_none());
        assert_eq!(p.committed_digest(0, 0), None);
        assert_eq!(p.run_end(0, &[]), Ok(()));
        assert!(!p.wants_checkpoint(0));
        let cp = SessionCheckpoint {
            epochs: 0,
            shards: Vec::new(),
            folded_edges: Vec::new(),
            staged_edges: Vec::new(),
            tagged: Vec::new(),
            carry_feedback: Vec::new(),
            totals: ReplayCounters::default(),
        };
        assert_eq!(p.checkpoint(&cp), Ok(()));
        assert!(p.load_resume().unwrap().is_none());
    }

    #[test]
    fn chaos_error_displays_attribution() {
        let e = ChaosError {
            epoch: 4,
            shard: Some(2),
            fault_kind: FaultKind::Crash,
        };
        assert_eq!(e.to_string(), "chaos fault at epoch 4, shard 2: crash");
        let e = ChaosError {
            epoch: 1,
            shard: None,
            fault_kind: FaultKind::Journal,
        };
        assert_eq!(e.to_string(), "chaos fault at epoch 1: journal");
    }
}
