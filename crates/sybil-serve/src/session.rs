//! The one serving entry point: [`ServeSession`].
//!
//! The engine used to expose a cartesian product of free functions —
//! `serve`, `serve_timed`, `serve_observed`, and the three
//! `serve_with_plane*` variants — one per combination of optional
//! capabilities. Each new capability doubled the surface. `ServeSession`
//! replaces all of them with a builder: construct with the config, chain
//! on exactly the capabilities this run wants, call
//! [`run`](ServeSession::run).
//!
//! ```
//! use sybil_serve::{ServeConfig, ServeSession};
//! # let out = osn_sim::simulate(osn_sim::SimConfig::tiny(7));
//! let outcome = ServeSession::new(ServeConfig::default())
//!     .run(&out)
//!     .expect("serve failed");
//! # let _ = outcome.report;
//! ```
//!
//! Capabilities:
//!
//! * [`clock`](ServeSession::clock) — a monotonic-seconds source; the
//!   returned [`ServeStats`] carry real timings instead of zeros.
//! * [`metrics`](ServeSession::metrics) — an observability registry;
//!   logical tallies land under the same keys (and with equal values) as
//!   the sequential `replay_observed`, per-shard quantities under
//!   `shard{N}.*`.
//! * [`plane`](ServeSession::plane) — a [`FaultPlane`]: chaos injection
//!   and the write-ahead epoch journal.
//! * [`store`](ServeSession::store) — a persistence plane (checkpoint
//!   writer + warm-restart source, e.g. `sybil-store`'s `StorePlane`).
//!   Same slot as `plane`: both are `FaultPlane` implementations, the
//!   session holds exactly one, and the last call wins.
//!
//! Every combination routes into the same monomorphized coordinator
//! loop, so the no-capability session compiles to exactly the code the
//! old bare `serve` did.

use crate::engine::{serve_inner, Clock, ServeConfig, ServeError, ServeStats};
use crate::fault::{FaultPlane, NoFaults};
use osn_sim::SimOutput;
use sybil_core::realtime::DeploymentReport;

/// What a serve run produced: the deployment report (byte-identical to
/// the sequential replay's for every shard count) plus the timing
/// breakdown (all zeros unless a [`clock`](ServeSession::clock) was
/// injected).
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The detector's deployment report.
    pub report: DeploymentReport,
    /// Timing breakdown by the injected clock.
    pub stats: ServeStats,
}

/// The session's one capability slot for a fault/persistence plane:
/// either the zero-cost production default or a caller-borrowed plane.
enum PlaneSlot<'a, P: FaultPlane> {
    /// No plane injected: run with [`NoFaults`] (every hook a no-op).
    Default,
    /// A caller-owned plane, borrowed for the run.
    Borrowed(&'a mut P),
}

/// Builder for one run of the sharded serving engine. See the
/// [module docs](self) for the capability list and an example.
pub struct ServeSession<'a, P: FaultPlane = NoFaults> {
    cfg: ServeConfig,
    clock: Option<Clock<'a>>,
    metrics: Option<&'a mut sybil_obs::Registry>,
    plane: PlaneSlot<'a, P>,
}

impl<'a> ServeSession<'a, NoFaults> {
    /// A session with no optional capabilities: no clock (stats report
    /// zeros), no metrics, the [`NoFaults`] plane.
    pub fn new(cfg: ServeConfig) -> Self {
        ServeSession {
            cfg,
            clock: None,
            metrics: None,
            plane: PlaneSlot::Default,
        }
    }
}

impl<'a, P: FaultPlane> ServeSession<'a, P> {
    /// Inject a monotonic-seconds source; [`ServeStats`] then carry real
    /// wall/critical-path/per-shard timings.
    pub fn clock(mut self, clock: Clock<'a>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attach an observability registry for logical and per-shard
    /// metrics (drained at each epoch barrier in shard-id order).
    pub fn metrics(mut self, reg: &'a mut sybil_obs::Registry) -> Self {
        self.metrics = Some(reg);
        self
    }

    /// Attach a fault plane: chaos injection, write-ahead journaling,
    /// checkpointing, warm restart. Replaces whatever plane the session
    /// held (there is exactly one plane slot).
    pub fn plane<Q: FaultPlane>(self, plane: &'a mut Q) -> ServeSession<'a, Q> {
        ServeSession {
            cfg: self.cfg,
            clock: self.clock,
            metrics: self.metrics,
            plane: PlaneSlot::Borrowed(plane),
        }
    }

    /// Attach a persistence plane (checkpoint store + warm-restart
    /// source). An intent-named alias for [`plane`](Self::plane): a
    /// store *is* a `FaultPlane`, and the session holds one plane — the
    /// last `plane`/`store` call wins.
    pub fn store<Q: FaultPlane>(self, store: &'a mut Q) -> ServeSession<'a, Q> {
        self.plane(store)
    }

    /// Run the sharded streaming detector over a simulation's request
    /// log. The report is byte-identical to `replay(out, &cfg.detect)`
    /// for every shard count ≥ 1 (and, with a persistence plane, for
    /// any kill/warm-restart split of the run).
    pub fn run(self, out: &SimOutput) -> Result<ServeOutcome, ServeError> {
        let zero = || 0.0;
        let clock: Clock<'_> = match self.clock {
            Some(c) => c,
            None => &zero,
        };
        let (report, stats) = match self.plane {
            PlaneSlot::Default => {
                serve_inner(out, &self.cfg, clock, self.metrics, &mut NoFaults)?
            }
            PlaneSlot::Borrowed(plane) => {
                serve_inner(out, &self.cfg, clock, self.metrics, plane)?
            }
        };
        Ok(ServeOutcome { report, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::{simulate, SimConfig};

    #[test]
    fn bare_session_matches_sequential_replay() {
        let out = simulate(SimConfig::tiny(3));
        let cfg = ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let outcome = ServeSession::new(cfg).run(&out).expect("serve failed");
        let seq = sybil_core::realtime::replay(&out, &cfg.detect);
        assert_eq!(
            serde_json::to_string(&outcome.report).unwrap(),
            serde_json::to_string(&seq).unwrap()
        );
        assert_eq!(outcome.stats.wall_s, 0.0);
    }

    #[test]
    fn capabilities_chain_without_changing_the_report() {
        let out = simulate(SimConfig::tiny(3));
        let cfg = ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let bare = ServeSession::new(cfg).run(&out).expect("serve failed");
        let t = std::time::Instant::now();
        let clock = move || t.elapsed().as_secs_f64();
        let mut reg = sybil_obs::Registry::new();
        let mut plane = NoFaults;
        let full = ServeSession::new(cfg)
            .clock(&clock)
            .metrics(&mut reg)
            .plane(&mut plane)
            .run(&out)
            .expect("serve failed");
        assert_eq!(
            serde_json::to_string(&bare.report).unwrap(),
            serde_json::to_string(&full.report).unwrap()
        );
        assert!(full.stats.wall_s > 0.0);
    }
}
