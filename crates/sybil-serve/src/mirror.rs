//! The coordinator's canonical edge mirror.
//!
//! Exactly one copy of the accepted-friendship state exists: the
//! coordinator maintains it sequentially (a packed-key set for pair
//! probes, a rotating [`CsrSnapshot`] plus unfolded-delta adjacency for
//! the marked-set clustering kernel) and lends it to every shard
//! read-only for the duration of an epoch. Edges accepted *within* the
//! running epoch live in a seq-tagged [`EpochIndex`] built in a cheap
//! sequential prepass, so a mid-epoch check at stream position `s` counts
//! exactly the edges the sequential engine had inserted by `s`:
//! `mirror ∪ {epoch edges with seq ≤ s}`.
//!
//! Keeping this state out of the shards is what makes the engine scale:
//! a shard's per-event cost for accounts it does not own is a counter and
//! a branch, not a hash-table write, so adding shards divides the check
//! work without multiplying the edge bookkeeping.

use osn_graph::{CsrSnapshot, NodeId, Timestamp};
use osn_sim::stream::{StreamEvent, StreamEventKind};
use osn_sim::SimOutput;
use std::collections::{HashMap, HashSet};
use sybil_core::realtime::state;

/// Rotate the snapshot once the unfolded delta reaches this many edges or
/// a quarter of the folded edge count, whichever is larger — geometric
/// growth keeps total rebuild work O(E) amortized.
const ROTATE_FLOOR: usize = 1024;

/// Canonical accepted-edge state as of the start of the current epoch.
pub(crate) struct GraphMirror {
    /// Every accepted friendship, as packed undirected keys.
    pub edges: HashSet<u64>,
    /// Folded prefix of the edge stream.
    pub snapshot: CsrSnapshot,
    /// Edges accepted since the last rotation, both directions, for
    /// marked probes alongside the snapshot kernel.
    pub delta_adj: HashMap<u32, Vec<u32>>,
    /// The same unfolded edges in stream order, staged for the next fold.
    delta_edges: Vec<(NodeId, NodeId, Timestamp)>,
}

/// New edges of the epoch being processed, tagged with the stream
/// position that created them.
pub(crate) struct EpochIndex {
    /// Seq-tagged adjacency (both directions) over this epoch's new edges.
    pub adj: HashMap<u32, Vec<(u32, u64)>>,
    /// The same edges in stream order, for [`GraphMirror::absorb`].
    new_edges: Vec<(NodeId, NodeId, Timestamp)>,
}

impl EpochIndex {
    /// Whether `a`–`b` was created in this epoch at or before `seq`.
    pub(crate) fn linked(&self, a: u32, b: u32, seq: u64) -> bool {
        self.adj
            .get(&a)
            .is_some_and(|l| l.iter().any(|&(v, s)| v == b && s <= seq))
    }
}

impl GraphMirror {
    pub fn new(num_accounts: usize) -> Self {
        GraphMirror {
            edges: HashSet::new(),
            snapshot: CsrSnapshot::empty(num_accounts),
            delta_adj: HashMap::new(),
            delta_edges: Vec::new(),
        }
    }

    /// Sequential prepass over one epoch's events: collect the accepts
    /// that create a new edge, in order, tagged with their seq.
    pub(crate) fn index_epoch(&self, events: &[StreamEvent], out: &SimOutput) -> EpochIndex {
        let mut idx = EpochIndex {
            adj: HashMap::new(),
            new_edges: Vec::new(),
        };
        for ev in events {
            let StreamEventKind::Decided(i) = ev.kind else {
                continue;
            };
            let r = out.log.get(i as usize);
            if !r.outcome.is_accepted() {
                continue;
            }
            let e = state::pack_edge(r.from, r.to);
            if self.edges.contains(&e) || idx.linked(r.from.0, r.to.0, u64::MAX) {
                continue;
            }
            idx.adj.entry(r.from.0).or_default().push((r.to.0, ev.seq));
            idx.adj.entry(r.to.0).or_default().push((r.from.0, ev.seq));
            idx.new_edges.push((r.from, r.to, ev.at));
        }
        idx
    }

    /// Whether `a`–`b` existed at epoch start (pair-probe path).
    pub(crate) fn pair_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&state::pack_edge(a, b))
    }

    /// Fold an epoch's new edges in after the barrier, rotating the
    /// snapshot when the delta outgrows the threshold. Rotation timing is
    /// value-neutral — a link counts the same from the snapshot, the
    /// delta, or the epoch index — and deterministic, since the delta is
    /// a pure function of the event stream.
    pub(crate) fn absorb(&mut self, idx: EpochIndex) {
        for &(u, v, t) in &idx.new_edges {
            self.edges.insert(state::pack_edge(u, v));
            self.delta_adj.entry(u.0).or_default().push(v.0);
            self.delta_adj.entry(v.0).or_default().push(u.0);
            self.delta_edges.push((u, v, t));
        }
        let threshold = ROTATE_FLOOR.max(self.snapshot.num_edges() / 4);
        if self.delta_edges.len() >= threshold {
            self.snapshot = self.snapshot.with_edges(&self.delta_edges);
            self.delta_edges.clear();
            self.delta_adj.clear();
        }
    }
}
