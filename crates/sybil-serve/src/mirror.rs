//! The coordinator's canonical edge mirror.
//!
//! Exactly one copy of the accepted-friendship state exists: the
//! coordinator maintains it sequentially and lends it to every shard
//! read-only for the duration of an epoch. Edges accepted *within* the
//! running epoch live in a seq-tagged [`EpochIndex`] built in a cheap
//! sequential prepass, so a mid-epoch check at stream position `s` counts
//! exactly the edges the sequential engine had inserted by `s`:
//! `mirror ∪ {epoch edges with seq ≤ s}`.
//!
//! # Compact layout
//!
//! Every structure here is flat and u32/u64-packed — no per-node `Vec`
//! allocations and no hash tables, so the mirror's footprint at millions
//! of accounts is a handful of arenas:
//!
//! * the [`CsrSnapshot`] itself doubles as the edge-membership index: its
//!   per-row sorted runs make a pair probe a row-local binary search
//!   (over a node's *degree*, a couple of cache lines) instead of the
//!   seed's global `HashSet<u64>` of packed keys;
//! * [`FlatDelta`] — edges accepted since the last snapshot rotation, as
//!   a generation-stamped head array plus one link arena (8 B/half-edge,
//!   O(1) clear by generation bump — no O(V) sweep at rotation), probed
//!   by short chain walks;
//! * [`EpochIndex`] — this epoch's new edges as one sorted
//!   `(node, neighbor, seq)` triple array with binary-search probes.
//!
//! Rotation folds the delta into the [`CsrSnapshot`] via
//! [`CsrSnapshot::merge_delta`], which re-materializes only the column
//! blocks containing grown rows (see `osn_graph::snapshot`). Because the
//! snapshot + delta *are* the edge set, rotation adds no second copy of
//! the edges and membership never touches a structure proportional to the
//! total edge count.
//!
//! Keeping this state out of the shards is what makes the engine scale:
//! a shard's per-event cost for accounts it does not own is a counter and
//! a branch, not a hash-table write, so adding shards divides the check
//! work without multiplying the edge bookkeeping.

use osn_graph::{CsrSnapshot, MergeScratch, NeighborScratch, NodeId, Timestamp};
use osn_sim::stream::{EventDetail, StreamEvent, StreamEventKind};
use sybil_core::realtime::state;

/// Default rotation floor: rotate the snapshot once the unfolded delta
/// reaches this many edges or the folded edge count, whichever is larger
/// — doubling keeps total rebuild traffic O(E) amortized (~2× the final
/// CSR). Overridable per engine run (tests force tiny floors to exercise
/// many rotations).
pub(crate) const ROTATE_FLOOR: usize = 1024;

/// Sentinel for "no link" in [`FlatDelta`] chains.
const NONE: u32 = u32::MAX;

/// Edges accepted since the last snapshot rotation, as per-node linked
/// chains threaded through one flat arena.
///
/// `heads[v]` is `(generation, first-link)` — valid only when the
/// generation matches the current one, so clearing after a rotation is a
/// generation bump, not an O(V) sweep. Chains iterate in reverse
/// insertion order, which is fine: the only consumer counts marked
/// neighbors, an order-free reduction.
pub(crate) struct FlatDelta {
    gen: u32,
    /// Per-node `(generation, first link index)`.
    heads: Vec<(u32, u32)>,
    /// Link arena: `(next link index, neighbor id)`.
    links: Vec<(u32, u32)>,
    /// The same edges in stream order, staged for the next fold.
    edges: Vec<(NodeId, NodeId, Timestamp)>,
}

impl FlatDelta {
    fn new(num_accounts: usize) -> Self {
        FlatDelta {
            gen: 1,
            heads: vec![(0, NONE); num_accounts],
            links: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Record an accepted edge (both directions).
    fn push(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        for (a, b) in [(u, v), (v, u)] {
            let head = &mut self.heads[a.index()];
            let first = if head.0 == self.gen { head.1 } else { NONE };
            *head = (self.gen, self.links.len() as u32);
            self.links.push((first, b.0));
        }
        self.edges.push((u, v, t));
    }

    /// Whether `a`–`b` is a staged delta edge. A chain walk over `a`'s
    /// delta neighbors — the delta is bounded by the rotation threshold,
    /// so chains stay short on average.
    #[inline]
    fn linked(&self, a: u32, b: u32) -> bool {
        let head = self.heads[a as usize];
        if head.0 != self.gen {
            return false;
        }
        let mut cur = head.1;
        while cur != NONE {
            let (next, nbr) = self.links[cur as usize];
            if nbr == b {
                return true;
            }
            cur = next;
        }
        false
    }

    /// Count delta neighbors of `u` in the marked set.
    #[inline]
    fn marked_count(&self, u: u32, scratch: &NeighborScratch) -> usize {
        let head = self.heads[u as usize];
        if head.0 != self.gen {
            return 0;
        }
        let mut count = 0;
        let mut cur = head.1;
        while cur != NONE {
            let (next, nbr) = self.links[cur as usize];
            count += usize::from(scratch.is_marked(nbr));
            cur = next;
        }
        count
    }

    /// Number of staged (undirected) edges.
    fn len(&self) -> usize {
        self.edges.len()
    }

    /// Drop all staged edges in O(1) by bumping the generation.
    fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Wrapped: stale heads could collide with the new generation.
            self.heads.fill((0, NONE));
            self.gen = 1;
        }
        self.links.clear();
        self.edges.clear();
    }
}

/// Canonical accepted-edge state as of the start of the current epoch.
/// `snapshot ∪ delta` *is* the accepted-edge set — there is no separate
/// membership structure to keep in sync or pay memory for.
pub(crate) struct GraphMirror {
    /// Folded prefix of the edge stream.
    pub snapshot: CsrSnapshot,
    /// Edges accepted since the last rotation.
    pub delta: FlatDelta,
    /// Rotation floor in force for this run (see [`ROTATE_FLOOR`]).
    rotate_floor: usize,
    /// Reused rotation buffers (the fold's working set is delta-sized;
    /// re-allocating it every rotation pays first-touch page faults on
    /// hundreds of megabytes at the million-account sizes).
    merge_scratch: MergeScratch,
    /// Reused [`Self::index_epoch`] candidate buffer.
    cand: Vec<(u64, u64, NodeId, NodeId, Timestamp)>,
    /// Recycled [`EpochIndex`] storage, taken back in [`Self::absorb`].
    spare_adj: Vec<(u32, u32, u64)>,
    /// Recycled new-edge storage, taken back in [`Self::absorb`].
    spare_edges: Vec<(NodeId, NodeId, Timestamp)>,
}

/// New edges of the epoch being processed, tagged with the stream
/// position that created them: one flat `(node, neighbor, seq)` array
/// sorted by `(node, neighbor)`, both directions present, each pair
/// unique (the prepass dedups repeat accepts, keeping the earliest seq).
pub(crate) struct EpochIndex {
    adj: Vec<(u32, u32, u64)>,
    /// The same edges in stream order, for [`GraphMirror::absorb`].
    new_edges: Vec<(NodeId, NodeId, Timestamp)>,
}

impl EpochIndex {
    /// Whether `a`–`b` was created in this epoch at or before `seq`.
    /// Binary search — O(log K) against the old linear row scan.
    #[inline]
    pub(crate) fn linked(&self, a: u32, b: u32, seq: u64) -> bool {
        self.adj
            .binary_search_by(|&(n, v, _)| (n, v).cmp(&(a, b)))
            .is_ok_and(|i| self.adj[i].2 <= seq)
    }

    /// Count epoch neighbors of `u` created at or before `seq` that are
    /// in the marked set.
    #[inline]
    pub(crate) fn marked_count_at(&self, u: u32, seq: u64, scratch: &NeighborScratch) -> usize {
        let lo = self.adj.partition_point(|&(n, _, _)| n < u);
        let hi = self.adj.partition_point(|&(n, _, _)| n <= u);
        self.adj[lo..hi]
            .iter()
            .filter(|&&(_, v, s)| s <= seq && scratch.is_marked(v))
            .count()
    }
}

impl GraphMirror {
    /// Mirror over `num_accounts` accounts. `rotate_floor` of 0 selects
    /// the default [`ROTATE_FLOOR`].
    pub fn new(num_accounts: usize, rotate_floor: usize) -> Self {
        GraphMirror {
            snapshot: CsrSnapshot::empty(num_accounts),
            delta: FlatDelta::new(num_accounts),
            rotate_floor: if rotate_floor == 0 {
                ROTATE_FLOOR
            } else {
                rotate_floor
            },
            merge_scratch: MergeScratch::default(),
            cand: Vec::new(),
            spare_adj: Vec::new(),
            spare_edges: Vec::new(),
        }
    }

    /// Sequential prepass over one epoch's events: collect the accepts
    /// that create a new edge, in order, tagged with their seq. `details`
    /// is the epoch slice's parallel [`EventDetail`] array, so the pass
    /// never touches the log.
    pub(crate) fn index_epoch(
        &mut self,
        events: &[StreamEvent],
        details: &[EventDetail],
    ) -> EpochIndex {
        debug_assert_eq!(events.len(), details.len());
        // Pass 1: every accepted decision, keyed by packed pair.
        // Candidates arrive in stream (seq) order; repeat accepts of one
        // pair within the epoch are removed by a keep-first sort pass —
        // no hash set needed. The candidate buffer (like the index's own
        // arrays, recycled through `absorb`) is reused across epochs.
        let cand = &mut self.cand;
        cand.clear();
        for (ev, d) in events.iter().zip(details) {
            if !matches!(ev.kind, StreamEventKind::Decided(_)) || !d.accepted {
                continue;
            }
            let (from, to) = (NodeId(d.from), NodeId(d.to));
            cand.push((state::pack_edge(from, to), ev.seq, from, to, ev.at));
        }
        // Keep-first dedup: sort by (pair, seq), drop repeats. Probing
        // the mirror *after* the sort visits snapshot blocks in ascending
        // node order — sequential, not scattered by stream arrival.
        cand.sort_unstable_by_key(|&(e, seq, ..)| (e, seq));
        cand.dedup_by_key(|&mut (e, ..)| e);
        let (snapshot, delta) = (&self.snapshot, &self.delta);
        cand.retain(|&(e, ..)| {
            // Probe the low endpoint's row: with candidates sorted by
            // packed key the walk is block-sequential.
            let (lo, hi) = ((e >> 32) as u32, e as u32);
            snapshot
                .neighbors_sorted(NodeId(lo))
                .binary_search(&hi)
                .is_err()
                && !delta.linked(lo, hi)
        });
        // Restore stream (seq) order for the fold.
        cand.sort_unstable_by_key(|&(_, seq, ..)| seq);

        let mut idx = EpochIndex {
            adj: std::mem::take(&mut self.spare_adj),
            new_edges: std::mem::take(&mut self.spare_edges),
        };
        idx.adj.reserve(2 * cand.len());
        idx.new_edges.reserve(cand.len());
        for &(_, seq, from, to, at) in cand.iter() {
            idx.adj.push((from.0, to.0, seq));
            idx.adj.push((to.0, from.0, seq));
            idx.new_edges.push((from, to, at));
        }
        idx.adj.sort_unstable_by_key(|&(n, v, _)| (n, v));
        debug_assert!(idx
            .adj
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        idx
    }

    /// Whether `a`–`b` existed at epoch start (pair-probe path): a
    /// row-local binary search of the snapshot plus a short delta chain
    /// walk.
    #[inline]
    pub(crate) fn pair_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.snapshot.has_edge(a, b) || self.delta.linked(a.0, b.0)
    }

    /// Count mirror-delta neighbors of `u` in the marked set (the probe
    /// companion to the snapshot's marked-set kernel).
    #[inline]
    pub(crate) fn delta_marked_count(&self, u: u32, scratch: &NeighborScratch) -> usize {
        self.delta.marked_count(u, scratch)
    }

    /// Folded (snapshot) edges as undirected `(u, v, t)` triples with
    /// `u < v`, sorted by `(t, u, v)`. That order makes a single
    /// [`CsrSnapshot::merge_delta_with`] re-fold legal (rows must extend
    /// in time order) and is a deterministic function of the edge *set*,
    /// so checkpoints of a restored mirror stay byte-stable.
    pub(crate) fn folded_edges(&self) -> Vec<(NodeId, NodeId, Timestamp)> {
        let mut edges = Vec::with_capacity(self.snapshot.num_edges());
        for u in 0..self.snapshot.num_nodes() as u32 {
            let n = NodeId(u);
            let nbrs = self.snapshot.neighbors_sorted(n);
            let times = self.snapshot.times_sorted(n);
            for (&v, &t) in nbrs.iter().zip(times) {
                if u < v {
                    edges.push((n, NodeId(v), t));
                }
            }
        }
        edges.sort_unstable_by_key(|&(u, v, t)| (t, u.0, v.0));
        edges
    }

    /// Edges staged in the delta (accepted since the last rotation), in
    /// stream order.
    pub(crate) fn staged_edges(&self) -> &[(NodeId, NodeId, Timestamp)] {
        &self.delta.edges
    }

    /// Rebuild a mirror from persisted [`Self::folded_edges`] /
    /// [`Self::staged_edges`] output: one merge re-folds the snapshot,
    /// then staged edges re-enter the delta. The fold/delta split is
    /// restored exactly as persisted, so rotation timing — and therefore
    /// every downstream probe — continues deterministically.
    pub(crate) fn restore(
        num_accounts: usize,
        rotate_floor: usize,
        folded: &[(NodeId, NodeId, Timestamp)],
        staged: &[(NodeId, NodeId, Timestamp)],
    ) -> Self {
        let mut m = GraphMirror::new(num_accounts, rotate_floor);
        if !folded.is_empty() {
            m.snapshot.merge_delta_with(folded, &mut m.merge_scratch);
        }
        for &(u, v, t) in staged {
            m.delta.push(u, v, t);
        }
        m
    }

    /// Fold an epoch's new edges in after the barrier, rotating the
    /// snapshot when the delta outgrows the threshold. Rotation timing is
    /// value-neutral — a link counts the same from the snapshot, the
    /// delta, or the epoch index — and deterministic, since the delta is
    /// a pure function of the event stream and the configured floor.
    pub(crate) fn absorb(&mut self, idx: EpochIndex) {
        for &(u, v, t) in &idx.new_edges {
            self.delta.push(u, v, t);
        }
        // Rotate once the delta matches the folded size (doubling): total
        // rebuild traffic stays ~2× the final CSR while delta chains stay
        // O(average degree) — they are walked on every pair probe.
        let threshold = self.rotate_floor.max(self.snapshot.num_edges());
        if self.delta.len() >= threshold {
            self.snapshot
                .merge_delta_with(&self.delta.edges, &mut self.merge_scratch);
            self.delta.clear();
        }
        // Recycle the index's storage for the next epoch's build.
        self.spare_adj = idx.adj;
        self.spare_adj.clear();
        self.spare_edges = idx.new_edges;
        self.spare_edges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_probe_covers_snapshot_and_delta() {
        let mut m = GraphMirror::new(5, 1_000_000);
        assert!(!m.pair_linked(NodeId(0), NodeId(1)));
        // Folded edge: rotate a one-edge delta into the snapshot.
        m.delta.push(NodeId(0), NodeId(1), Timestamp::ZERO);
        m.snapshot.merge_delta(&m.delta.edges);
        m.delta.clear();
        // Staged edge: still in the delta.
        m.delta.push(NodeId(2), NodeId(3), Timestamp::ZERO);
        assert!(m.pair_linked(NodeId(0), NodeId(1)));
        assert!(m.pair_linked(NodeId(1), NodeId(0)));
        assert!(m.pair_linked(NodeId(2), NodeId(3)));
        assert!(m.pair_linked(NodeId(3), NodeId(2)));
        assert!(!m.pair_linked(NodeId(0), NodeId(2)));
        assert!(!m.pair_linked(NodeId(1), NodeId(3)));
        assert!(!m.pair_linked(NodeId(0), NodeId(4)));
    }

    #[test]
    fn flat_delta_counts_marked_and_clears_in_o1() {
        let mut d = FlatDelta::new(5);
        let t = Timestamp::ZERO;
        d.push(NodeId(0), NodeId(1), t);
        d.push(NodeId(0), NodeId(2), t);
        d.push(NodeId(3), NodeId(4), t);
        let mut scratch = NeighborScratch::new(5);
        scratch.begin(5);
        scratch.mark(1);
        scratch.mark(2);
        scratch.mark(4);
        assert_eq!(d.marked_count(0, &scratch), 2);
        assert_eq!(d.marked_count(1, &scratch), 0); // 0 is unmarked
        assert_eq!(d.marked_count(3, &scratch), 1);
        assert_eq!(d.len(), 3);
        d.clear();
        assert_eq!(d.len(), 0);
        assert_eq!(d.marked_count(0, &scratch), 0);
        // Reuse after clear starts clean chains.
        d.push(NodeId(0), NodeId(4), t);
        assert_eq!(d.marked_count(0, &scratch), 1);
    }

    #[test]
    fn flat_delta_generation_wraparound_is_safe() {
        let mut d = FlatDelta::new(3);
        d.gen = u32::MAX;
        d.push(NodeId(0), NodeId(1), Timestamp::ZERO);
        let mut scratch = NeighborScratch::new(3);
        scratch.begin(3);
        scratch.mark(1);
        assert_eq!(d.marked_count(0, &scratch), 1);
        d.clear(); // wraps to 0 → resets heads, lands on gen 1
        assert_eq!(d.marked_count(0, &scratch), 0);
        d.push(NodeId(0), NodeId(1), Timestamp::ZERO);
        assert_eq!(d.marked_count(0, &scratch), 1);
    }
}
