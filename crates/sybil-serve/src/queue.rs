//! Bounded SPSC delta queues for cross-shard effects.
//!
//! During an epoch every shard stages its outward-visible effects —
//! detections and verification feedback — in these queues; the coordinator
//! drains them after the epoch barrier. Each queue has exactly one
//! producer (the shard, inside the parallel region) and one consumer (the
//! coordinator, after the join), and the two *never run concurrently*:
//! the barrier is the synchronization point, so no locks or atomics are
//! needed and the parallel substrate's D003 policy holds.
//!
//! What the queue does enforce is **boundedness**. The coordinator sizes
//! each queue from epoch invariants (a shard can detect at most its owned
//! account count; audits are capped by the epoch's event count over the
//! audit cadence), so an overflow means an engine invariant is broken —
//! the producer reports it as an error rather than growing silently or
//! blocking (blocking inside a barrier-synchronized region would
//! deadlock). Workspace lint rule S106 keeps unbounded channel
//! constructors out of every other module.

/// The exact stream position at which a queue overflowed: which epoch,
/// which shard, and the global event `seq` whose staged effect did not
/// fit. Chaos attribution matches injected overflow faults against this
/// site, so a fault-induced overflow is never confused with a genuine
/// engine-invariant break elsewhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverflowSite {
    /// Epoch number (0-based barrier count) of the failing push.
    pub epoch: u64,
    /// Shard whose staging queue overflowed.
    pub shard: usize,
    /// Global stream `seq` of the event that produced the effect.
    pub seq: u64,
}

/// Error returned when a push would exceed the queue's fixed capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The capacity that would have been exceeded.
    pub capacity: usize,
    /// Where the overflow happened. The queue itself knows only its
    /// capacity; the producing shard stamps the site on the way out (it
    /// alone knows the epoch/shard/seq coordinates), so `None` survives
    /// only in code that pushes outside an epoch scan (tests, mostly).
    pub site: Option<OverflowSite>,
}

impl QueueFull {
    /// Bare overflow error, site unknown.
    pub fn at_capacity(capacity: usize) -> Self {
        QueueFull {
            capacity,
            site: None,
        }
    }

    /// The same error stamped with the offending `(epoch, shard, seq)`.
    #[inline]
    pub fn at(self, epoch: u64, shard: usize, seq: u64) -> Self {
        QueueFull {
            capacity: self.capacity,
            site: Some(OverflowSite { epoch, shard, seq }),
        }
    }
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.site {
            Some(s) => write!(
                f,
                "delta queue overflow (capacity {}) at epoch {}, shard {}, seq {}",
                self.capacity, s.epoch, s.shard, s.seq
            ),
            None => write!(f, "delta queue overflow (capacity {})", self.capacity),
        }
    }
}

impl std::error::Error for QueueFull {}

/// A bounded single-producer/single-consumer FIFO drained at epoch
/// barriers. Capacity is fixed at construction; [`push`](DeltaQueue::push)
/// fails instead of reallocating past it.
#[derive(Debug)]
pub struct DeltaQueue<T> {
    items: Vec<T>,
    capacity: usize,
}

impl<T> DeltaQueue<T> {
    /// Queue holding at most `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        DeltaQueue {
            items: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Append an item, failing when the queue is at capacity.
    pub fn push(&mut self, item: T) -> Result<(), QueueFull> {
        if self.items.len() >= self.capacity {
            return Err(QueueFull::at_capacity(self.capacity));
        }
        self.items.push(item);
        Ok(())
    }

    /// Items staged so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consume the queue, yielding the staged items in push order — the
    /// coordinator's drain at the epoch barrier.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_respects_capacity_and_preserves_order() {
        let mut q = DeltaQueue::with_capacity(2);
        assert!(q.is_empty());
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.push(30), Err(QueueFull::at_capacity(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.into_items(), vec![10, 20]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q = DeltaQueue::with_capacity(0);
        assert_eq!(q.push(1u8), Err(QueueFull::at_capacity(0)));
    }

    /// The enriched error path: a bare overflow carries no site; the
    /// producer's `.at(...)` stamp attaches the exact `(epoch, shard,
    /// seq)` and both spellings render distinctly.
    #[test]
    fn overflow_site_enrichment_round_trips() {
        let mut q = DeltaQueue::with_capacity(1);
        q.push(1u8).unwrap();
        let bare = q.push(2u8).unwrap_err();
        assert_eq!(bare.site, None);
        assert_eq!(bare.to_string(), "delta queue overflow (capacity 1)");
        let stamped = bare.at(7, 3, 4242);
        assert_eq!(stamped.capacity, 1);
        assert_eq!(
            stamped.site,
            Some(OverflowSite {
                epoch: 7,
                shard: 3,
                seq: 4242
            })
        );
        assert_eq!(
            stamped.to_string(),
            "delta queue overflow (capacity 1) at epoch 7, shard 3, seq 4242"
        );
    }
}
