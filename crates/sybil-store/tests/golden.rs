//! Format-drift guard: the `SYBS` v1 encoding of a fixed checkpoint is
//! pinned against committed golden bytes.
//!
//! If this test fails, the on-disk format changed. That is only legal
//! together with a [`format::VERSION`] bump and a new golden file for
//! the new version (keep the old one — old files must keep decoding or
//! keep being *rejected by version*, never misread). Regenerate with:
//!
//! ```text
//! BLESS=1 cargo test -p sybil-store --test golden
//! ```

use osn_graph::{NodeId, Timestamp};
use std::path::PathBuf;
use sybil_core::realtime::state::AccountState;
use sybil_core::realtime::{Detection, ReplayCounters};
use sybil_features::FeatureVector;
use sybil_serve::fault::FeedbackRecord;
use sybil_serve::{SessionCheckpoint, ShardSnapshot};
use sybil_store::format;

/// A fixed checkpoint exercising every section and field kind. Frozen:
/// changing it invalidates the golden file.
fn golden_checkpoint() -> SessionCheckpoint {
    let mut recent = std::collections::VecDeque::new();
    recent.push_back(3600);
    recent.push_back(4000);
    let state = AccountState {
        sent: 9,
        accepted: 4,
        rejected: 2,
        recent_sends: recent,
        peak_1h: 5,
        friends: vec![NodeId(2), NodeId(7)],
        friends_dup: false,
        detected: true,
    };
    let fv = FeatureVector {
        inv_freq_1h: 5.0,
        inv_freq_400h: 9.0,
        outgoing_accept_ratio: 2.0 / 3.0,
        incoming_accept_ratio: 1.0,
        clustering_coefficient: -0.0,
    };
    let mut adaptive = [0u64; 31];
    for (i, w) in adaptive.iter_mut().enumerate() {
        *w = (i as u64).wrapping_mul(0x9e37_79b9) ^ 0xabcd;
    }
    let shard = ShardSnapshot {
        states: vec![state, AccountState::default()],
        adaptive,
        feedback_queue: vec![(Timestamp(9000), fv, true)],
        sends_until_audit: 3,
        audit_cursor: 17,
    };
    SessionCheckpoint {
        epochs: 4,
        shards: vec![shard.clone(), shard],
        folded_edges: vec![(NodeId(1), NodeId(2), Timestamp(100))],
        staged_edges: vec![(NodeId(3), NodeId(4), Timestamp(200))],
        tagged: vec![(
            11,
            Detection {
                account: NodeId(7),
                at: Timestamp(4000),
                correct: true,
            },
        )],
        carry_feedback: vec![FeedbackRecord {
            seq: 11,
            intra: 0,
            due: Timestamp(47200),
            features: fv,
            truth: true,
        }],
        totals: ReplayCounters {
            events_processed: 100,
            checks_run: 20,
            detections: 1,
            features_computed: 20,
            feedback_applied: 1,
            audits_sampled: 2,
        },
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("checkpoint_v1.sybs")
}

#[test]
fn encoding_matches_committed_golden_bytes() {
    let bytes = format::encode_checkpoint(&golden_checkpoint());
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `BLESS=1 cargo test -p sybil-store --test golden`",
            path.display()
        )
    });
    assert_eq!(
        bytes,
        committed,
        "SYBS v1 encoding drifted from the committed golden bytes — \
         a format change requires a VERSION bump and a new golden file"
    );
    // And the committed bytes still decode to the exact checkpoint.
    assert_eq!(
        format::decode_checkpoint(&committed).unwrap(),
        golden_checkpoint()
    );
}

#[test]
fn header_prefix_is_pinned() {
    let bytes = format::encode_checkpoint(&golden_checkpoint());
    assert_eq!(&bytes[..4], b"SYBS");
    assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 7, "7 sections");
}
