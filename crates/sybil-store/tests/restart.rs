//! The headline persistence invariant: kill the process at an arbitrary
//! epoch, warm-restart from the store directory alone, and the final
//! `DeploymentReport` is byte-identical to the uninterrupted run.
//!
//! The kill is [`StorePlane::kill_at_epoch`]: the write-ahead journal
//! record lands, then the run aborts with a typed crash error — on-disk
//! state is exactly what a `SIGKILL` between the journal append and the
//! epoch barrier leaves. The restart opens a *fresh* plane over the same
//! directory (nothing survives in memory), so recovery is proven from
//! the bytes.

use osn_sim::{simulate, SimConfig, SimOutput};
use proptest::prelude::*;
use std::path::PathBuf;
use sybil_core::realtime::RealtimeConfig;
use sybil_core::ThresholdClassifier;
use sybil_serve::fault::FaultKind;
use sybil_serve::{ServeConfig, ServeError, ServeSession};
use sybil_store::StorePlane;

fn small_sim() -> SimOutput {
    simulate(SimConfig::tiny(11))
}

/// Permissive detector so detections, audits, and feedback all fire on a
/// tiny log — a checkpoint then carries every kind of state.
fn serve_cfg(shards: usize, adaptive: bool) -> ServeConfig {
    ServeConfig {
        shards,
        epoch_hours: 12,
        detect: RealtimeConfig {
            warmup_requests: 4,
            check_every: 1,
            trailing_window_h: 1,
            min_decided: 2,
            min_friends: 2,
            rule: ThresholdClassifier {
                max_out_ratio: 0.8,
                min_freq: 3.0,
                max_cc: f64::INFINITY,
            },
            adaptive,
            feedback_delay_h: 12,
            audit_every: 5,
        },
        rotate_floor: 64,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sybil-restart-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run to completion with no plane: the oracle bytes.
fn uninterrupted(out: &SimOutput, cfg: &ServeConfig) -> String {
    let report = ServeSession::new(*cfg).run(out).expect("serve").report;
    serde_json::to_string(&report).expect("report serializes")
}

/// Kill at `kill_epoch` under a checkpoint-every-`every`-epochs plane,
/// then warm-restart from the directory with a fresh plane and return
/// the restarted run's report bytes.
fn kill_then_restart(
    out: &SimOutput,
    cfg: &ServeConfig,
    dir: &PathBuf,
    kill_epoch: u64,
    every: u64,
) -> String {
    let mut doomed = StorePlane::with_cadence(dir, every, 4)
        .expect("store opens")
        .kill_at_epoch(kill_epoch);
    let err = ServeSession::new(*cfg)
        .store(&mut doomed)
        .run(out)
        .expect_err("the kill must surface as a typed error");
    match err {
        ServeError::Chaos(c) => {
            assert_eq!(c.fault_kind, FaultKind::Crash);
            assert_eq!(c.epoch, kill_epoch);
        }
        other => panic!("expected a chaos crash, got {other:?}"),
    }
    drop(doomed);

    let mut revived = StorePlane::with_cadence(dir, every, 4).expect("store reopens");
    let outcome = ServeSession::new(*cfg)
        .store(&mut revived)
        .run(out)
        .expect("warm restart completes");
    // Checkpoints land at the end of epochs e with (e+1) % every == 0,
    // so one exists iff at least `every` epochs completed before the
    // kill; otherwise the restart replays the stream cold.
    assert_eq!(
        revived.resumed_from().is_some(),
        kill_epoch >= every,
        "kill at {kill_epoch} with checkpoints every {every}"
    );
    serde_json::to_string(&outcome.report).expect("report serializes")
}

#[test]
fn kill_restart_is_byte_identical_mid_stream() {
    let out = small_sim();
    let cfg = serve_cfg(2, true);
    let oracle = uninterrupted(&out, &cfg);
    for kill_epoch in [0u64, 1, 3, 7] {
        let dir = tmpdir(&format!("mid-{kill_epoch}"));
        let restarted = kill_then_restart(&out, &cfg, &dir, kill_epoch, 1);
        assert_eq!(restarted, oracle, "kill at epoch {kill_epoch} diverged");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn restart_of_a_finished_run_replays_to_the_same_bytes() {
    let out = small_sim();
    let cfg = serve_cfg(2, true);
    let dir = tmpdir("finished");
    let oracle = {
        let mut plane = StorePlane::open(&dir).unwrap();
        let o = ServeSession::new(cfg).store(&mut plane).run(&out).unwrap();
        serde_json::to_string(&o.report).unwrap()
    };
    // Run again over the same directory: everything comes back from the
    // checkpoint + journal tail, and the journal gains no duplicate end
    // record.
    let len_before = std::fs::metadata(dir.join("journal.sybj")).unwrap().len();
    let mut plane = StorePlane::open(&dir).unwrap();
    let o = ServeSession::new(cfg).store(&mut plane).run(&out).unwrap();
    assert_eq!(serde_json::to_string(&o.report).unwrap(), oracle);
    drop(plane);
    let len_after = std::fs::metadata(dir.join("journal.sybj")).unwrap().len();
    assert_eq!(len_before, len_after, "restart must not re-append the end record");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sparse_checkpoints_recover_through_the_journal_tail() {
    let out = small_sim();
    let cfg = serve_cfg(2, true);
    let oracle = uninterrupted(&out, &cfg);
    let dir = tmpdir("sparse");
    // Checkpoint every 4th epoch only: a kill at epoch 6 resumes from
    // the epoch-4 checkpoint and replays committed epochs 4..6 from the
    // journal before going live.
    let mut doomed = StorePlane::with_cadence(&dir, 4, 1)
        .unwrap()
        .kill_at_epoch(6);
    ServeSession::new(cfg)
        .store(&mut doomed)
        .run(&out)
        .expect_err("killed");
    drop(doomed);
    let mut revived = StorePlane::with_cadence(&dir, 4, 1).unwrap();
    let o = ServeSession::new(cfg).store(&mut revived).run(&out).unwrap();
    assert_eq!(revived.resumed_from(), Some(4));
    assert_eq!(revived.tail_replayed(), 2, "epochs 4 and 5 replay from the journal");
    assert_eq!(serde_json::to_string(&o.report).unwrap(), oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance proptest: kill epoch × shard count {1,2,8} ×
    /// static/adaptive × checkpoint cadence {1,4,8}, byte-identity
    /// after warm restart every time.
    #[test]
    fn warm_restart_is_byte_identical(
        kill_epoch in 0u64..12,
        shards_ix in 0usize..3,
        adaptive in any::<bool>(),
        every_ix in 0usize..3,
    ) {
        let shards = [1usize, 2, 8][shards_ix];
        let every = [1u64, 4, 8][every_ix];
        let out = small_sim();
        let cfg = serve_cfg(shards, adaptive);
        let oracle = uninterrupted(&out, &cfg);
        let dir = tmpdir(&format!("prop-{kill_epoch}-{shards}-{adaptive}-{every}"));
        let restarted = kill_then_restart(&out, &cfg, &dir, kill_epoch, every);
        prop_assert_eq!(restarted, oracle);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
