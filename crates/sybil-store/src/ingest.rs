//! Batched event ingestion: wire codecs plus a bounded staging queue.
//!
//! A persistent serving deployment does not own an `osn_sim` log — events
//! arrive from outside, in batches, over whatever transport the operator
//! wires up (a pipe of ndjson lines, a socket of binary frames). This
//! module is the codec and backpressure layer between that transport and
//! the engine's epoch loop:
//!
//! * **Length-prefixed binary** ([`encode_batch`]/[`decode_batch`]): the
//!   same little-endian field layout the epoch journal uses for events,
//!   framed as `len:u32 n:u32 event[n]` — byte-stable, platform-free.
//! * **ndjson** ([`encode_batch_ndjson`]/[`decode_batch_ndjson`]): one
//!   JSON object per line with explicit field names, for debuggability
//!   and shell-pipeline ingestion.
//!
//! Both codecs decode into an [`EventBatch`] and are exact inverses of
//! their encoders (round-trip tested, including float bit patterns via
//! seconds-integer timestamps).
//!
//! Backpressure reuses the engine's own bounded-queue discipline:
//! [`IngestQueue`] wraps a `sybil_serve` [`DeltaQueue`], so a full buffer
//! surfaces as the same typed [`QueueFull`] error the shard staging
//! queues raise — the producer slows down or drops, the queue never grows
//! silently. The coordinator drains whole batches at epoch granularity
//! with [`IngestQueue::drain`].

use crate::error::StoreError;
use osn_graph::Timestamp;
use osn_sim::stream::{EventDetail, StreamEvent, StreamEventKind};
use sybil_serve::queue::{DeltaQueue, QueueFull};

/// One decoded ingestion batch: events with their parallel details, in
/// stream order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventBatch {
    /// The batch's events, in global stream order.
    pub events: Vec<StreamEvent>,
    /// Parallel per-event details (endpoints, outcomes).
    pub details: Vec<EventDetail>,
}

impl EventBatch {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Encode a batch as one length-prefixed binary frame:
/// `len:u32 n:u32 event[n]`, every field little-endian, `usize`-free.
pub fn encode_batch(batch: &EventBatch) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + batch.events.len() * 30);
    payload.extend_from_slice(&(batch.events.len() as u32).to_le_bytes());
    for (ev, det) in batch.events.iter().zip(&batch.details) {
        payload.extend_from_slice(&ev.seq.to_le_bytes());
        payload.extend_from_slice(&ev.at.as_secs().to_le_bytes());
        let (kind, record) = match ev.kind {
            StreamEventKind::Sent(r) => (0u8, r),
            StreamEventKind::Decided(r) => (1u8, r),
        };
        payload.push(kind);
        payload.extend_from_slice(&record.to_le_bytes());
        payload.extend_from_slice(&det.from.to_le_bytes());
        payload.extend_from_slice(&det.to.to_le_bytes());
        payload.push(u8::from(det.accepted));
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one binary frame produced by [`encode_batch`], returning the
/// batch and the total bytes consumed (so a reader can walk a stream of
/// frames).
pub fn decode_batch(bytes: &[u8]) -> Result<(EventBatch, usize), StoreError> {
    let take = |pos: usize, n: usize| -> Result<&[u8], StoreError> {
        bytes
            .get(pos..pos + n)
            .ok_or(StoreError::TruncatedFrame { offset: pos as u64 })
    };
    let u32_at = |pos: usize| -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(take(pos, 4)?);
        Ok(u32::from_le_bytes(b))
    };
    let u64_at = |pos: usize| -> Result<u64, StoreError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(take(pos, 8)?);
        Ok(u64::from_le_bytes(b))
    };
    let frame_len = u32_at(0)? as usize;
    let end = 4 + frame_len;
    take(4, frame_len)?;
    let n = u32_at(4)? as usize;
    let mut pos = 8;
    let mut batch = EventBatch::default();
    for _ in 0..n {
        if pos + 30 > end {
            return Err(StoreError::TruncatedFrame { offset: pos as u64 });
        }
        let seq = u64_at(pos)?;
        let at = Timestamp(u64_at(pos + 8)?);
        let kind_tag = take(pos + 16, 1)?[0];
        let record = u32_at(pos + 17)?;
        let kind = match kind_tag {
            0 => StreamEventKind::Sent(record),
            1 => StreamEventKind::Decided(record),
            _ => {
                return Err(StoreError::BadField {
                    offset: (pos + 16) as u64,
                })
            }
        };
        let from = u32_at(pos + 21)?;
        let to = u32_at(pos + 25)?;
        let accepted = match take(pos + 29, 1)?[0] {
            0 => false,
            1 => true,
            _ => {
                return Err(StoreError::BadField {
                    offset: (pos + 29) as u64,
                })
            }
        };
        batch.events.push(StreamEvent { seq, at, kind });
        batch.details.push(EventDetail { from, to, accepted });
        pos += 30;
    }
    if pos != end {
        return Err(StoreError::BadField { offset: pos as u64 });
    }
    Ok((batch, end))
}

/// Encode a batch as ndjson: one object per event, one event per line.
pub fn encode_batch_ndjson(batch: &EventBatch) -> String {
    let mut out = String::new();
    for (ev, det) in batch.events.iter().zip(&batch.details) {
        let (kind, record) = match ev.kind {
            StreamEventKind::Sent(r) => ("sent", r),
            StreamEventKind::Decided(r) => ("decided", r),
        };
        out.push_str(&format!(
            "{{\"seq\":{},\"at\":{},\"kind\":\"{kind}\",\"record\":{record},\
             \"from\":{},\"to\":{},\"accepted\":{}}}\n",
            ev.seq,
            ev.at.as_secs(),
            det.from,
            det.to,
            det.accepted
        ));
    }
    out
}

/// Decode ndjson produced by [`encode_batch_ndjson`] (or by any producer
/// emitting the same field names). Blank lines are skipped; the reported
/// offset of a bad line is its 0-based line number.
pub fn decode_batch_ndjson(text: &str) -> Result<EventBatch, StoreError> {
    let mut batch = EventBatch::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = StoreError::BadField {
            offset: lineno as u64,
        };
        let v: serde_json::Value = serde_json::from_str(line).map_err(|_| bad)?;
        let field_u64 = |name: &str| v.get(name).and_then(|x| x.as_u64()).ok_or(bad);
        let record = field_u64("record")? as u32;
        let kind = match v.get("kind") {
            Some(serde_json::Value::Str(s)) if s == "sent" => StreamEventKind::Sent(record),
            Some(serde_json::Value::Str(s)) if s == "decided" => {
                StreamEventKind::Decided(record)
            }
            _ => return Err(bad),
        };
        let accepted = match v.get("accepted") {
            Some(serde_json::Value::Bool(b)) => *b,
            _ => return Err(bad),
        };
        batch.events.push(StreamEvent {
            seq: field_u64("seq")?,
            at: Timestamp(field_u64("at")?),
            kind,
        });
        batch.details.push(EventDetail {
            from: field_u64("from")? as u32,
            to: field_u64("to")? as u32,
            accepted,
        });
    }
    Ok(batch)
}

/// A bounded staging queue between the ingestion transport and the epoch
/// loop, with the engine's own overflow discipline: pushes past capacity
/// fail with a typed [`QueueFull`] instead of growing, and the consumer
/// drains everything staged at epoch granularity.
#[derive(Debug)]
pub struct IngestQueue {
    queue: DeltaQueue<(StreamEvent, EventDetail)>,
}

impl IngestQueue {
    /// A queue holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        IngestQueue {
            queue: DeltaQueue::with_capacity(capacity),
        }
    }

    /// Stage one batch. On overflow the error carries the global `seq`
    /// of the first event that did not fit (stamped as the overflow
    /// site's seq; epoch and shard are 0 — ingestion happens upstream of
    /// both), and everything before it in the batch stays staged: the
    /// producer re-sends from that seq after draining.
    pub fn push_batch(&mut self, batch: &EventBatch) -> Result<(), QueueFull> {
        for (ev, det) in batch.events.iter().zip(&batch.details) {
            self.queue
                .push((*ev, *det))
                .map_err(|e| e.at(0, 0, ev.seq))?;
        }
        Ok(())
    }

    /// Events staged so far.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Drain everything staged, in push order, leaving the queue empty
    /// at the same capacity.
    pub fn drain(&mut self) -> Vec<(StreamEvent, EventDetail)> {
        let cap = self.queue.capacity();
        std::mem::replace(&mut self.queue, DeltaQueue::with_capacity(cap)).into_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> EventBatch {
        EventBatch {
            events: vec![
                StreamEvent {
                    seq: 0,
                    at: Timestamp(3600),
                    kind: StreamEventKind::Sent(4),
                },
                StreamEvent {
                    seq: 1,
                    at: Timestamp(4000),
                    kind: StreamEventKind::Decided(4),
                },
            ],
            details: vec![
                EventDetail {
                    from: 1,
                    to: 2,
                    accepted: false,
                },
                EventDetail {
                    from: 1,
                    to: 2,
                    accepted: true,
                },
            ],
        }
    }

    #[test]
    fn binary_round_trip_and_framing() {
        let batch = sample_batch();
        let bytes = encode_batch(&batch);
        let (back, consumed) = decode_batch(&bytes).unwrap();
        assert_eq!(back, batch);
        assert_eq!(consumed, bytes.len());
        // Two frames back to back: the consumed count walks the stream.
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let (first, used) = decode_batch(&two).unwrap();
        let (second, _) = decode_batch(&two[used..]).unwrap();
        assert_eq!(first, batch);
        assert_eq!(second, batch);
    }

    #[test]
    fn binary_truncation_and_bad_fields_are_typed() {
        let bytes = encode_batch(&sample_batch());
        assert!(matches!(
            decode_batch(&bytes[..bytes.len() - 2]),
            Err(StoreError::TruncatedFrame { .. })
        ));
        let mut bad_kind = bytes.clone();
        bad_kind[8 + 16] = 7; // first event's kind tag
        assert!(matches!(
            decode_batch(&bad_kind),
            Err(StoreError::BadField { .. })
        ));
    }

    #[test]
    fn ndjson_round_trip() {
        let batch = sample_batch();
        let text = encode_batch_ndjson(&batch);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(decode_batch_ndjson(&text).unwrap(), batch);
        // Blank lines are tolerated; garbage is a typed error naming the
        // line.
        let with_blank = format!("\n{text}\n");
        assert_eq!(decode_batch_ndjson(&with_blank).unwrap(), batch);
        let err = decode_batch_ndjson("not json\n").unwrap_err();
        assert_eq!(err, StoreError::BadField { offset: 0 });
    }

    #[test]
    fn queue_applies_backpressure_at_capacity() {
        let mut q = IngestQueue::with_capacity(3);
        let batch = sample_batch();
        q.push_batch(&batch).unwrap();
        assert_eq!(q.len(), 2);
        // The second push overflows on its second event (seq 1).
        let err = q.push_batch(&batch).unwrap_err();
        assert_eq!(err.capacity, 3);
        assert_eq!(err.site.map(|s| s.seq), Some(1));
        assert_eq!(q.len(), 3, "events before the overflow stay staged");
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        q.push_batch(&batch).unwrap();
    }
}
