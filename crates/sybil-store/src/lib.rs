//! # sybil-store — versioned persistence and warm restart for serving
//!
//! The paper's detector ran as a continuously operating service; this
//! crate is what lets our engine stop and start without losing state. It
//! persists a [`ServeSession`](sybil_serve::ServeSession)'s full logical
//! state — per-shard `realtime::state`, adaptive thresholds, the
//! `GraphMirror`'s folded and staged edges, merged detections, pending
//! feedback, logical totals — as versioned, byte-stable `SYBS`
//! checkpoint files, and wires them together with the `sybil-chaos`
//! write-ahead epoch journal into **warm restart**:
//!
//! 1. [`StorePlane::load_resume`] loads the newest readable checkpoint;
//! 2. the engine replays every *committed* journal epoch after it,
//!    verifying committed per-shard digests along the way;
//! 3. live processing resumes at the next epoch, and the final
//!    `DeploymentReport` is **byte-identical** to an uninterrupted run —
//!    the restart proptests kill at arbitrary epochs across shard counts
//!    and assert exactly this.
//!
//! Attach persistence to a session with one builder call:
//!
//! ```
//! use sybil_serve::{ServeConfig, ServeSession};
//! use sybil_store::StorePlane;
//!
//! let out = osn_sim::simulate(osn_sim::SimConfig::tiny(7));
//! let dir = std::env::temp_dir().join(format!("sybs-doc-{}", std::process::id()));
//! let mut plane = StorePlane::open(&dir).expect("store opens");
//! let outcome = ServeSession::new(ServeConfig::default())
//!     .store(&mut plane)
//!     .run(&out)
//!     .expect("serve succeeds");
//! assert!(outcome.report.detections.is_empty() || !outcome.report.detections.is_empty());
//! std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! Module layout mirrors the trust boundaries: [`format`] owns every
//! byte layout **and every filesystem touch** (workspace lint rule S119
//! keeps versioned-state IO inside it), [`store`] is the
//! checkpoint-directory and fault-plane layer above it, [`ingest`] is
//! the batched event front-end with bounded-queue backpressure, and
//! [`error`] is the typed failure surface — no strings, no leaked
//! `io::Error`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod format;
pub mod ingest;
pub mod store;

pub use error::{IoOp, StoreError};
pub use ingest::{EventBatch, IngestQueue};
pub use store::{SnapshotStore, StorePlane, DEFAULT_CHECKPOINT_EVERY, DEFAULT_DIGEST_EVERY};
