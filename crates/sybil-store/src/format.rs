//! The `SYBS` checkpoint format and **every** filesystem touch in this
//! crate.
//!
//! ## Format
//!
//! A checkpoint file is a header, a run of tagged sections, and a digest
//! trailer. All integers are little-endian; floats are IEEE-754 bit
//! patterns written as `u64`; `usize` never appears on disk. The byte
//! stream is a pure function of the logical checkpoint, so two encodes of
//! equal state are byte-identical on every platform — the golden-bytes
//! regression test pins exactly this.
//!
//! ```text
//! file    := magic b"SYBS"  version:u32 (= 1)  n_sections:u32
//!            section[n_sections]  digest:u64
//! section := tag:u8  len:u32  payload[len]
//! ```
//!
//! Sections are held in a `BTreeMap` keyed by tag while encoding and are
//! therefore written in strictly ascending tag order; the decoder rejects
//! out-of-order or duplicate tags. Version 1 defines tags 1–7 (meta,
//! shards, folded edges, staged edges, tagged detections, carried
//! feedback, totals); an unknown tag is a typed
//! [`StoreError::UnknownSection`], never skipped — adding a section means
//! bumping [`VERSION`].
//!
//! The trailer is a [`Digest64`] fold over the version, the section
//! count, and every section's tag, length, and payload. A flipped bit
//! anywhere surfaces as [`StoreError::DigestMismatch`] before any field
//! reaches the engine.
//!
//! ## IO policy
//!
//! Workspace lint rule S119 confines file IO that writes versioned state
//! to this module: checkpoint writes go through [`write_atomic`]
//! (temporary sibling + rename, so a crash mid-write never leaves a
//! half-checkpoint under the final name), journal files are
//! opened through [`open_or_create_journal`] (which first truncates a
//! torn tail back to the last whole frame, because
//! `Journal::open` is strict about truncation), and directory scans go
//! through [`list_checkpoints`].

use crate::error::{IoOp, StoreError};
use osn_graph::{NodeId, Timestamp};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use sybil_chaos::journal::{self, Journal, JournalError};
use sybil_core::digest::Digest64;
use sybil_core::realtime::state::AccountState;
use sybil_core::realtime::{Detection, ReplayCounters};
use sybil_features::FeatureVector;
use sybil_serve::fault::FeedbackRecord;
use sybil_serve::{SessionCheckpoint, ShardSnapshot};

/// Checkpoint magic: `b"SYBS"`.
pub const MAGIC: [u8; 4] = *b"SYBS";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Section tags defined by version 1, in file order.
const TAG_META: u8 = 1;
const TAG_SHARDS: u8 = 2;
const TAG_FOLDED: u8 = 3;
const TAG_STAGED: u8 = 4;
const TAG_TAGGED: u8 = 5;
const TAG_CARRY: u8 = 6;
const TAG_TOTALS: u8 = 7;

// ---------------------------------------------------------------------
// Field encoders (little-endian, width-explicit).
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}
fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

/// Little-endian field decoder with absolute offsets for error reports.
struct Fields<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Fields<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Fields { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(StoreError::TruncatedFrame {
                offset: self.offset(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, StoreError> {
        let off = self.offset();
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StoreError::BadField { offset: off }),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Section payload codecs.
// ---------------------------------------------------------------------

fn put_account(buf: &mut Vec<u8>, st: &AccountState) {
    put_u32(buf, st.sent);
    put_u32(buf, st.accepted);
    put_u32(buf, st.rejected);
    put_u32(buf, st.recent_sends.len() as u32);
    for &s in &st.recent_sends {
        put_u64(buf, s);
    }
    put_u32(buf, st.peak_1h);
    put_u32(buf, st.friends.len() as u32);
    for f in &st.friends {
        put_u32(buf, f.0);
    }
    put_bool(buf, st.friends_dup);
    put_bool(buf, st.detected);
}

fn get_account(f: &mut Fields<'_>) -> Result<AccountState, StoreError> {
    let sent = f.u32()?;
    let accepted = f.u32()?;
    let rejected = f.u32()?;
    let n_recent = f.u32()? as usize;
    let mut recent_sends = std::collections::VecDeque::with_capacity(n_recent);
    for _ in 0..n_recent {
        recent_sends.push_back(f.u64()?);
    }
    let peak_1h = f.u32()?;
    let n_friends = f.u32()? as usize;
    let mut friends = Vec::with_capacity(n_friends);
    for _ in 0..n_friends {
        friends.push(NodeId(f.u32()?));
    }
    let friends_dup = f.bool()?;
    let detected = f.bool()?;
    Ok(AccountState {
        sent,
        accepted,
        rejected,
        recent_sends,
        peak_1h,
        friends,
        friends_dup,
        detected,
    })
}

fn put_features(buf: &mut Vec<u8>, fv: &FeatureVector) {
    for v in fv.as_array() {
        put_f64(buf, v);
    }
}

fn get_features(f: &mut Fields<'_>) -> Result<FeatureVector, StoreError> {
    Ok(FeatureVector {
        inv_freq_1h: f.f64()?,
        inv_freq_400h: f.f64()?,
        outgoing_accept_ratio: f.f64()?,
        incoming_accept_ratio: f.f64()?,
        clustering_coefficient: f.f64()?,
    })
}

fn put_shard(buf: &mut Vec<u8>, s: &ShardSnapshot) {
    put_u32(buf, s.states.len() as u32);
    for st in &s.states {
        put_account(buf, st);
    }
    for &w in &s.adaptive {
        put_u64(buf, w);
    }
    put_u32(buf, s.feedback_queue.len() as u32);
    for (due, fv, truth) in &s.feedback_queue {
        put_u64(buf, due.as_secs());
        put_features(buf, fv);
        put_bool(buf, *truth);
    }
    put_u64(buf, s.sends_until_audit);
    put_u64(buf, s.audit_cursor);
}

fn get_shard(f: &mut Fields<'_>) -> Result<ShardSnapshot, StoreError> {
    let n_states = f.u32()? as usize;
    let mut states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        states.push(get_account(f)?);
    }
    let mut adaptive = [0u64; 31];
    for w in &mut adaptive {
        *w = f.u64()?;
    }
    let n_feedback = f.u32()? as usize;
    let mut feedback_queue = Vec::with_capacity(n_feedback);
    for _ in 0..n_feedback {
        let due = Timestamp(f.u64()?);
        let fv = get_features(f)?;
        let truth = f.bool()?;
        feedback_queue.push((due, fv, truth));
    }
    let sends_until_audit = f.u64()?;
    let audit_cursor = f.u64()?;
    Ok(ShardSnapshot {
        states,
        adaptive,
        feedback_queue,
        sends_until_audit,
        audit_cursor,
    })
}

fn put_edges(buf: &mut Vec<u8>, edges: &[(NodeId, NodeId, Timestamp)]) {
    put_u32(buf, edges.len() as u32);
    for &(u, v, t) in edges {
        put_u32(buf, u.0);
        put_u32(buf, v.0);
        put_u64(buf, t.as_secs());
    }
}

fn get_edges(f: &mut Fields<'_>) -> Result<Vec<(NodeId, NodeId, Timestamp)>, StoreError> {
    let n = f.u32()? as usize;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let u = NodeId(f.u32()?);
        let v = NodeId(f.u32()?);
        let t = Timestamp(f.u64()?);
        edges.push((u, v, t));
    }
    Ok(edges)
}

fn put_feedback_record(buf: &mut Vec<u8>, fb: &FeedbackRecord) {
    put_u64(buf, fb.seq);
    put_u8(buf, fb.intra);
    put_u64(buf, fb.due.as_secs());
    put_features(buf, &fb.features);
    put_bool(buf, fb.truth);
}

fn get_feedback_record(f: &mut Fields<'_>) -> Result<FeedbackRecord, StoreError> {
    let seq = f.u64()?;
    let intra = f.u8()?;
    let due = Timestamp(f.u64()?);
    let features = get_features(f)?;
    let truth = f.bool()?;
    Ok(FeedbackRecord {
        seq,
        intra,
        due,
        features,
        truth,
    })
}

/// Build the version-1 section map for `cp`. The `BTreeMap` key order IS
/// the file order.
fn sections(cp: &SessionCheckpoint) -> BTreeMap<u8, Vec<u8>> {
    let mut map = BTreeMap::new();

    let mut meta = Vec::with_capacity(12);
    put_u64(&mut meta, cp.epochs);
    put_u32(&mut meta, cp.shards.len() as u32);
    map.insert(TAG_META, meta);

    let mut shards = Vec::new();
    for s in &cp.shards {
        put_shard(&mut shards, s);
    }
    map.insert(TAG_SHARDS, shards);

    let mut folded = Vec::with_capacity(4 + cp.folded_edges.len() * 16);
    put_edges(&mut folded, &cp.folded_edges);
    map.insert(TAG_FOLDED, folded);

    let mut staged = Vec::with_capacity(4 + cp.staged_edges.len() * 16);
    put_edges(&mut staged, &cp.staged_edges);
    map.insert(TAG_STAGED, staged);

    let mut tagged = Vec::with_capacity(4 + cp.tagged.len() * 21);
    put_u32(&mut tagged, cp.tagged.len() as u32);
    for &(seq, det) in &cp.tagged {
        put_u64(&mut tagged, seq);
        put_u32(&mut tagged, det.account.0);
        put_u64(&mut tagged, det.at.as_secs());
        put_bool(&mut tagged, det.correct);
    }
    map.insert(TAG_TAGGED, tagged);

    let mut carry = Vec::with_capacity(4 + cp.carry_feedback.len() * 58);
    put_u32(&mut carry, cp.carry_feedback.len() as u32);
    for fb in &cp.carry_feedback {
        put_feedback_record(&mut carry, fb);
    }
    map.insert(TAG_CARRY, carry);

    let mut totals = Vec::with_capacity(48);
    put_u64(&mut totals, cp.totals.events_processed);
    put_u64(&mut totals, cp.totals.checks_run);
    put_u64(&mut totals, cp.totals.detections);
    put_u64(&mut totals, cp.totals.features_computed);
    put_u64(&mut totals, cp.totals.feedback_applied);
    put_u64(&mut totals, cp.totals.audits_sampled);
    map.insert(TAG_TOTALS, totals);

    map
}

/// Fold the header fields and every section into the trailer digest.
fn trailer_digest(map: &BTreeMap<u8, Vec<u8>>) -> u64 {
    let mut d = Digest64::new();
    d.write_u32(VERSION);
    d.write_usize(map.len());
    for (&tag, payload) in map {
        d.write_u32(u32::from(tag));
        d.write_usize(payload.len());
        for chunk in payload.chunks(8) {
            let mut w = [0u8; 8];
            let (dst, _) = w.split_at_mut(chunk.len());
            dst.copy_from_slice(chunk);
            d.write_u64(u64::from_le_bytes(w));
        }
    }
    d.finish()
}

/// Encode `cp` as one version-1 `SYBS` byte stream.
pub fn encode_checkpoint(cp: &SessionCheckpoint) -> Vec<u8> {
    let map = sections(cp);
    let body: usize = map.values().map(|p| 5 + p.len()).sum();
    let mut out = Vec::with_capacity(16 + body + 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, map.len() as u32);
    for (&tag, payload) in &map {
        put_u8(&mut out, tag);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
    }
    put_u64(&mut out, trailer_digest(&map));
    out
}

/// Decode a version-1 `SYBS` byte stream back into a checkpoint,
/// verifying the trailer digest and rejecting unknown, duplicate, or
/// out-of-order sections.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<SessionCheckpoint, StoreError> {
    let mut f = Fields::new(bytes, 0);
    let magic = f.take(4)?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(StoreError::BadMagic { found });
    }
    let version = f.u32()?;
    if version != VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: VERSION,
        });
    }
    let n_sections = f.u32()? as usize;
    let mut map: BTreeMap<u8, (u64, &[u8])> = BTreeMap::new();
    let mut prev_tag: Option<u8> = None;
    for _ in 0..n_sections {
        let tag_off = f.offset();
        let tag = f.u8()?;
        if !(TAG_META..=TAG_TOTALS).contains(&tag) {
            return Err(StoreError::UnknownSection { tag });
        }
        if prev_tag.is_some_and(|p| p >= tag) {
            // Duplicate or descending tag: not the canonical encoding.
            return Err(StoreError::BadField { offset: tag_off });
        }
        prev_tag = Some(tag);
        let len = f.u32()? as usize;
        let base = f.offset();
        let payload = f.take(len)?;
        map.insert(tag, (base, payload));
    }
    let expected = f.u64()?;
    if !f.done() {
        return Err(StoreError::BadField { offset: f.offset() });
    }
    let mut owned: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for (&tag, &(_, payload)) in &map {
        owned.insert(tag, payload.to_vec());
    }
    let found = trailer_digest(&owned);
    if found != expected {
        return Err(StoreError::DigestMismatch { expected, found });
    }

    let section = |tag: u8| -> Result<Fields<'_>, StoreError> {
        map.get(&tag)
            .map(|&(base, payload)| Fields::new(payload, base))
            .ok_or(StoreError::MissingSection { tag })
    };

    let mut meta = section(TAG_META)?;
    let epochs = meta.u64()?;
    let n_shards = meta.u32()? as usize;

    let mut sh = section(TAG_SHARDS)?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        shards.push(get_shard(&mut sh)?);
    }

    let folded_edges = get_edges(&mut section(TAG_FOLDED)?)?;
    let staged_edges = get_edges(&mut section(TAG_STAGED)?)?;

    let mut tg = section(TAG_TAGGED)?;
    let n_tagged = tg.u32()? as usize;
    let mut tagged = Vec::with_capacity(n_tagged);
    for _ in 0..n_tagged {
        let seq = tg.u64()?;
        let account = NodeId(tg.u32()?);
        let at = Timestamp(tg.u64()?);
        let correct = tg.bool()?;
        tagged.push((seq, Detection { account, at, correct }));
    }

    let mut cf = section(TAG_CARRY)?;
    let n_carry = cf.u32()? as usize;
    let mut carry_feedback = Vec::with_capacity(n_carry);
    for _ in 0..n_carry {
        carry_feedback.push(get_feedback_record(&mut cf)?);
    }

    let mut tot = section(TAG_TOTALS)?;
    let totals = ReplayCounters {
        events_processed: tot.u64()?,
        checks_run: tot.u64()?,
        detections: tot.u64()?,
        features_computed: tot.u64()?,
        feedback_applied: tot.u64()?,
        audits_sampled: tot.u64()?,
    };

    Ok(SessionCheckpoint {
        epochs,
        shards,
        folded_edges,
        staged_edges,
        tagged,
        carry_feedback,
        totals,
    })
}

// ---------------------------------------------------------------------
// Filesystem operations — the only ones in the crate (lint rule S119).
// ---------------------------------------------------------------------

fn io_err(op: IoOp) -> impl Fn(std::io::Error) -> StoreError {
    move |e| StoreError::Io { op, kind: e.kind() }
}

/// Create the store directory (and parents) if absent.
pub(crate) fn ensure_dir(dir: &Path) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir).map_err(io_err(IoOp::CreateDir))
}

/// Read a whole file.
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    std::fs::read(path).map_err(io_err(IoOp::Read))
}

/// Write `bytes` to `path` atomically: a temporary sibling is written
/// first, then renamed over the final name, so a crash at any point
/// leaves either the old file or the complete new one under the final
/// name — never a torn checkpoint. There is deliberately no fsync on
/// this path: checkpoints are a recovery *accelerator*, not the source
/// of durability (the write-ahead journal is), and a checkpoint lost to
/// power failure just means recovery falls back to an older one plus a
/// longer journal tail. The trailer digest catches any file the rename
/// contract didn't protect.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(io_err(IoOp::Write))?;
    file.write_all(bytes).map_err(io_err(IoOp::Write))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err(IoOp::Rename))
}

/// Checkpoint files in `dir` as `(epochs, path)`, ascending by epoch.
/// Non-checkpoint names (the journal, temporaries) are skipped.
pub(crate) fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(io_err(IoOp::List))?;
    for entry in entries {
        let entry = entry.map_err(io_err(IoOp::List))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".sybs"))
        else {
            continue;
        };
        if let Ok(epochs) = num.parse::<u64>() {
            out.push((epochs, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(e, _)| e);
    Ok(out)
}

/// The canonical file name for a checkpoint taken after `epochs` epochs.
pub(crate) fn checkpoint_name(epochs: u64) -> String {
    format!("checkpoint-{epochs:08}.sybs")
}

/// Map a journal-layer error onto the store's typed surface.
fn map_journal(e: JournalError) -> StoreError {
    match e {
        JournalError::Io { kind, .. } => StoreError::Io { op: IoOp::Read, kind },
        // `open_or_create_journal` validates magic and version from the
        // raw bytes before handing the file to `Journal::open`, so these
        // two arms are defensive.
        JournalError::BadMagic => StoreError::BadMagic { found: [0; 4] },
        JournalError::BadVersion(v) => StoreError::VersionMismatch {
            found: v,
            expected: journal::VERSION,
        },
        JournalError::Truncated { offset } => StoreError::TruncatedFrame { offset },
        JournalError::BadTag { offset, .. } | JournalError::BadField { offset } => {
            StoreError::BadField { offset }
        }
    }
}

/// Length of the longest valid prefix of a `SYBJ` stream: the header
/// plus every whole frame. Bytes past it are a torn append.
fn journal_valid_prefix(bytes: &[u8]) -> Result<u64, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::TruncatedFrame {
            offset: bytes.len() as u64,
        });
    }
    if bytes[..4] != journal::MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(StoreError::BadMagic { found });
    }
    let mut vb = [0u8; 4];
    vb.copy_from_slice(&bytes[4..8]);
    let version = u32::from_le_bytes(vb);
    if version != journal::VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: journal::VERSION,
        });
    }
    let mut pos = 8usize;
    loop {
        let Some(lenb) = bytes.get(pos..pos + 4) else {
            return Ok(pos as u64);
        };
        let mut b = [0u8; 4];
        b.copy_from_slice(lenb);
        let len = u32::from_le_bytes(b) as usize;
        if len == 0 {
            // A zero length can never be written; treat the rest as torn.
            return Ok(pos as u64);
        }
        match pos.checked_add(4 + len) {
            Some(end) if end <= bytes.len() => pos = end,
            _ => return Ok(pos as u64),
        }
    }
}

/// Open the write-ahead journal at `path` for appending, creating it if
/// absent. An existing journal with a torn tail (the process died inside
/// an append) is first truncated back to its last whole frame —
/// `Journal::open` is deliberately strict about truncation, so the
/// repair happens here, at the only layer that owns the file.
pub(crate) fn open_or_create_journal(path: &Path) -> Result<Journal<File>, StoreError> {
    let existing = match std::fs::metadata(path) {
        Ok(m) => m.len() > 0,
        Err(_) => false,
    };
    if !existing {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err(IoOp::Write))?;
        return Journal::create(file).map_err(map_journal);
    }
    let bytes = read_file(path)?;
    // A file shorter than its own header was torn during creation; start
    // it over rather than refusing to serve.
    if bytes.len() < 8 {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(io_err(IoOp::Truncate))?;
        return Journal::create(file).map_err(map_journal);
    }
    let valid = journal_valid_prefix(&bytes)?;
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(io_err(IoOp::Read))?;
    if valid < bytes.len() as u64 {
        file.set_len(valid).map_err(io_err(IoOp::Truncate))?;
    }
    Journal::open(file).map_err(map_journal)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic checkpoint exercising every section and every
    /// field kind (floats included, with a negative zero to pin bit
    /// patterns).
    pub(crate) fn sample_checkpoint() -> SessionCheckpoint {
        let mut recent = std::collections::VecDeque::new();
        recent.push_back(3600);
        recent.push_back(4000);
        let state = AccountState {
            sent: 9,
            accepted: 4,
            rejected: 2,
            recent_sends: recent,
            peak_1h: 5,
            friends: vec![NodeId(2), NodeId(7)],
            friends_dup: false,
            detected: true,
        };
        let fv = FeatureVector {
            inv_freq_1h: 5.0,
            inv_freq_400h: 9.0,
            outgoing_accept_ratio: 2.0 / 3.0,
            incoming_accept_ratio: 1.0,
            clustering_coefficient: -0.0,
        };
        let mut adaptive = [0u64; 31];
        for (i, w) in adaptive.iter_mut().enumerate() {
            *w = (i as u64).wrapping_mul(0x9e37_79b9) ^ 0xabcd;
        }
        let shard = ShardSnapshot {
            states: vec![state, AccountState::default()],
            adaptive,
            feedback_queue: vec![(Timestamp(9000), fv, true)],
            sends_until_audit: 3,
            audit_cursor: 17,
        };
        SessionCheckpoint {
            epochs: 4,
            shards: vec![shard.clone(), shard],
            folded_edges: vec![(NodeId(1), NodeId(2), Timestamp(100))],
            staged_edges: vec![(NodeId(3), NodeId(4), Timestamp(200))],
            tagged: vec![(
                11,
                Detection {
                    account: NodeId(7),
                    at: Timestamp(4000),
                    correct: true,
                },
            )],
            carry_feedback: vec![FeedbackRecord {
                seq: 11,
                intra: 0,
                due: Timestamp(47200),
                features: fv,
                truth: true,
            }],
            totals: ReplayCounters {
                events_processed: 100,
                checks_run: 20,
                detections: 1,
                features_computed: 20,
                feedback_applied: 1,
                audits_sampled: 2,
            },
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let cp = sample_checkpoint();
        let bytes = encode_checkpoint(&cp);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, cp);
        // Re-encoding the decoded checkpoint reproduces the same bytes:
        // the encoding is canonical.
        assert_eq!(encode_checkpoint(&back), bytes);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(
            encode_checkpoint(&sample_checkpoint()),
            encode_checkpoint(&sample_checkpoint())
        );
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = encode_checkpoint(&sample_checkpoint());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_checkpoint(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_checkpoint(&bad_version),
            Err(StoreError::VersionMismatch {
                found: 9,
                expected: VERSION
            })
        );

        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            decode_checkpoint(cut),
            Err(StoreError::TruncatedFrame { .. })
        ));

        // Flip one payload bit: the trailer digest catches it.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        let err = decode_checkpoint(&flipped).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::DigestMismatch { .. } | StoreError::BadField { .. }
            ),
            "{err:?}"
        );

        // An unknown section tag is rejected, not skipped.
        let mut bad_tag = bytes.clone();
        bad_tag[12] = 99; // first section tag (magic 4 + version 4 + count 4)
        let err = decode_checkpoint(&bad_tag).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::UnknownSection { tag: 99 } | StoreError::DigestMismatch { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn journal_prefix_walk_finds_last_whole_frame() {
        // header + one 5-byte frame + one torn frame.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&journal::MAGIC);
        bytes.extend_from_slice(&journal::VERSION.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        let whole = bytes.len() as u64;
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[9, 9]); // frame cut short
        assert_eq!(journal_valid_prefix(&bytes).unwrap(), whole);
        // A clean stream keeps its full length.
        assert_eq!(journal_valid_prefix(&bytes[..whole as usize]).unwrap(), whole);
    }
}
