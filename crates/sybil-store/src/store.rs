//! [`SnapshotStore`]: versioned checkpoints on disk, and [`StorePlane`]:
//! the `FaultPlane` implementation that makes a `ServeSession` durable.
//!
//! A store directory holds numbered checkpoint files plus the write-ahead
//! epoch journal:
//!
//! ```text
//! store/
//!   checkpoint-00000004.sybs   # session state after 4 completed epochs
//!   checkpoint-00000008.sybs
//!   journal.sybj               # PR-9 epoch journal (SYBJ frames)
//! ```
//!
//! [`SnapshotStore::latest`] walks checkpoints newest-first and skips any
//! that fail to decode (torn by a crash predating atomic-rename, bit rot,
//! a half-migrated version), so recovery degrades to an older checkpoint
//! plus a longer journal tail rather than refusing to start.
//!
//! [`StorePlane`] rides the serving coordinator's fault-plane hooks:
//! `epoch_begin`/`epoch_commit` append to the journal (write-ahead, then
//! commit after the barrier merge), `wants_checkpoint`/`checkpoint`
//! persist a full [`SessionCheckpoint`] every `checkpoint_every` epochs,
//! and `load_resume` assembles a [`ResumeState`] from the newest readable
//! checkpoint plus every *committed* journal epoch after it. An epoch
//! with a begin record but no commit was in flight when the process died;
//! it is not replayed — the engine re-runs it live from the stream, which
//! produces the identical bytes (the begin record exists precisely so
//! crash replay inside an epoch stays possible for shard faults).
//!
//! The `kill_at_epoch` knob simulates the process dying at an epoch
//! boundary: the write-ahead record lands, then the hook returns a typed
//! crash error, leaving the on-disk state exactly as a real `SIGKILL`
//! between the journal append and the barrier would. The restart
//! proptests drive this at arbitrary epochs and require byte-identity
//! with the uninterrupted run.

use crate::error::StoreError;
use crate::format;
use std::fs::File;
use std::path::{Path, PathBuf};
use sybil_chaos::Journal;
use sybil_serve::fault::{
    ChaosError, EpochRecord, EpochRecordRef, FaultKind, FaultPlane, ResumeState,
    SessionCheckpoint,
};

/// Default checkpoint cadence: persist the full session state every
/// 32nd epoch barrier. A checkpoint is O(entire session state) — state
/// snapshot, encode, write — while an epoch of journal tail replay
/// costs roughly one epoch of live serving, so sparse checkpoints buy a
/// large write-amortization win for a small bounded restart-latency
/// cost (at most `checkpoint_every - 1` epochs of tail to replay).
/// `restart_bench` gates the checkpoint overhead at <5% of the
/// fault-free critical path at exactly this default. Lower the cadence
/// (`with_cadence`) when restart latency matters more than throughput —
/// the `repro restart` drill runs at cadence 1.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32;

/// Default digest cadence for journal commits, matching the chaos
/// plane's: per-shard state digests every 4th epoch, so tail replay is
/// verified against committed digests at that granularity.
pub const DEFAULT_DIGEST_EVERY: u64 = 4;

/// A directory of versioned `SYBS` checkpoints plus the epoch journal.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        format::ensure_dir(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal file's path inside this store.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.sybj")
    }

    /// Persist `cp` atomically as `checkpoint-{epochs:08}.sybs`,
    /// returning the final path.
    pub fn save(&self, cp: &SessionCheckpoint) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(format::checkpoint_name(cp.epochs));
        format::write_atomic(&path, &format::encode_checkpoint(cp))?;
        Ok(path)
    }

    /// Epoch counts of every checkpoint file present, ascending.
    pub fn checkpoints(&self) -> Result<Vec<u64>, StoreError> {
        Ok(format::list_checkpoints(&self.dir)?
            .into_iter()
            .map(|(e, _)| e)
            .collect())
    }

    /// Load the checkpoint taken after exactly `epochs` epochs.
    pub fn load(&self, epochs: u64) -> Result<SessionCheckpoint, StoreError> {
        let path = self.dir.join(format::checkpoint_name(epochs));
        format::decode_checkpoint(&format::read_file(&path)?)
    }

    /// The newest checkpoint that decodes cleanly, or `None` when the
    /// store holds no readable checkpoint. Corrupt files are skipped
    /// (recovery falls back to an older checkpoint and replays a longer
    /// journal tail), not fatal.
    pub fn latest(&self) -> Result<Option<SessionCheckpoint>, StoreError> {
        let mut files = format::list_checkpoints(&self.dir)?;
        while let Some((_, path)) = files.pop() {
            let Ok(bytes) = format::read_file(&path) else {
                continue;
            };
            if let Ok(cp) = format::decode_checkpoint(&bytes) {
                return Ok(Some(cp));
            }
        }
        Ok(None)
    }
}

/// The durable fault plane: write-ahead journal + periodic checkpoints +
/// warm restart, all through the hooks the coordinator already consults.
pub struct StorePlane {
    store: SnapshotStore,
    journal: Journal<File>,
    checkpoint_every: u64,
    digest_every: u64,
    kill_at: Option<u64>,
    /// `Some(epochs)` when the journal already carried a run-end record
    /// at open — a restart of a finished run must not append a second.
    finished_at_open: Option<u64>,
    resumed_from: Option<u64>,
    tail_replayed: u64,
}

impl StorePlane {
    /// Open a durable plane over `dir` at the default cadences.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::with_cadence(dir, DEFAULT_CHECKPOINT_EVERY, DEFAULT_DIGEST_EVERY)
    }

    /// [`open`](Self::open) with explicit cadences: a checkpoint every
    /// `checkpoint_every` epochs (0 = never) and journal digests every
    /// `digest_every` epochs (0 = never).
    pub fn with_cadence(
        dir: impl Into<PathBuf>,
        checkpoint_every: u64,
        digest_every: u64,
    ) -> Result<Self, StoreError> {
        let store = SnapshotStore::open(dir)?;
        let journal = format::open_or_create_journal(&store.journal_path())?;
        let finished_at_open = journal.finished().map(|(epochs, _)| epochs);
        Ok(StorePlane {
            store,
            journal,
            checkpoint_every,
            digest_every,
            kill_at: None,
            finished_at_open,
            resumed_from: None,
            tail_replayed: 0,
        })
    }

    /// Simulate the process dying at epoch `epoch`: the write-ahead
    /// record is journaled, then the run aborts with a typed crash error
    /// — on-disk state is exactly what a kill between the journal append
    /// and the barrier leaves behind.
    pub fn kill_at_epoch(mut self, epoch: u64) -> Self {
        self.kill_at = Some(epoch);
        self
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The journal (byte counts, committed digests).
    pub fn journal(&self) -> &Journal<File> {
        &self.journal
    }

    /// Epoch count of the checkpoint this run resumed from, when it
    /// warm-restarted.
    pub fn resumed_from(&self) -> Option<u64> {
        self.resumed_from
    }

    /// Committed journal epochs replayed after the checkpoint on resume.
    pub fn tail_replayed(&self) -> u64 {
        self.tail_replayed
    }

    fn store_err(epoch: u64) -> ChaosError {
        ChaosError {
            epoch,
            shard: None,
            fault_kind: FaultKind::Journal,
        }
    }
}

impl FaultPlane for StorePlane {
    fn enabled(&self) -> bool {
        true
    }

    fn epoch_begin(&mut self, rec: EpochRecordRef<'_>) -> Result<(), ChaosError> {
        self.journal
            .append_begin(rec)
            .map_err(|_| Self::store_err(rec.epoch))?;
        if self.kill_at == Some(rec.epoch) {
            return Err(ChaosError {
                epoch: rec.epoch,
                shard: None,
                fault_kind: FaultKind::Crash,
            });
        }
        Ok(())
    }

    fn wants_digests(&self, epoch: u64) -> bool {
        self.digest_every != 0 && epoch.is_multiple_of(self.digest_every)
    }

    fn epoch_commit(&mut self, epoch: u64, digests: Option<&[u64]>) -> Result<(), ChaosError> {
        self.journal
            .append_commit(epoch, digests)
            .map_err(|_| Self::store_err(epoch))
    }

    fn replay_epoch(&mut self, epoch: u64) -> Result<Option<EpochRecord>, ChaosError> {
        self.journal
            .read_epoch(epoch)
            .map_err(|_| Self::store_err(epoch))
    }

    fn committed_digest(&mut self, epoch: u64, shard: usize) -> Option<u64> {
        self.journal.committed_digest(epoch, shard)
    }

    fn run_end(&mut self, epochs: u64, digests: &[u64]) -> Result<(), ChaosError> {
        // A warm restart of an already-finished run replays to the same
        // end; the journal already carries this exact record.
        if self.finished_at_open == Some(epochs) {
            return Ok(());
        }
        self.journal
            .append_end(epochs, digests)
            .map_err(|_| Self::store_err(epochs))
    }

    fn wants_checkpoint(&self, epoch: u64) -> bool {
        self.checkpoint_every != 0 && (epoch + 1).is_multiple_of(self.checkpoint_every)
    }

    fn checkpoint(&mut self, cp: &SessionCheckpoint) -> Result<(), ChaosError> {
        self.store
            .save(cp)
            .map(|_| ())
            .map_err(|_| Self::store_err(cp.epochs))
    }

    fn load_resume(&mut self) -> Result<Option<ResumeState>, ChaosError> {
        let latest = self.store.latest().map_err(|_| Self::store_err(0))?;
        let Some(checkpoint) = latest else {
            return Ok(None);
        };
        let mut tail = Vec::new();
        let mut epoch = checkpoint.epochs;
        while self.journal.committed(epoch) {
            let rec = self
                .journal
                .read_epoch(epoch)
                .map_err(|_| Self::store_err(epoch))?;
            let Some(rec) = rec else { break };
            tail.push(rec);
            epoch += 1;
        }
        self.resumed_from = Some(checkpoint.epochs);
        self.tail_replayed = tail.len() as u64;
        Ok(Some(ResumeState { checkpoint, tail }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::{NodeId, Timestamp};
    use sybil_core::realtime::{Detection, ReplayCounters};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sybil-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_checkpoint(epochs: u64) -> SessionCheckpoint {
        SessionCheckpoint {
            epochs,
            shards: Vec::new(),
            folded_edges: vec![(NodeId(1), NodeId(2), Timestamp(60))],
            staged_edges: Vec::new(),
            tagged: vec![(
                3,
                Detection {
                    account: NodeId(5),
                    at: Timestamp(120),
                    correct: false,
                },
            )],
            carry_feedback: Vec::new(),
            totals: ReplayCounters {
                events_processed: epochs * 10,
                ..ReplayCounters::default()
            },
        }
    }

    #[test]
    fn save_load_latest_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.latest().unwrap(), None);
        store.save(&tiny_checkpoint(2)).unwrap();
        store.save(&tiny_checkpoint(5)).unwrap();
        assert_eq!(store.checkpoints().unwrap(), vec![2, 5]);
        assert_eq!(store.load(2).unwrap(), tiny_checkpoint(2));
        assert_eq!(store.latest().unwrap(), Some(tiny_checkpoint(5)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_skips_corrupt_checkpoints() {
        let dir = tmpdir("corrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(&tiny_checkpoint(1)).unwrap();
        let newest = store.save(&tiny_checkpoint(9)).unwrap();
        // Flip a byte in the newest file: recovery must fall back to the
        // older checkpoint instead of failing or trusting bad bytes.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.latest().unwrap(), Some(tiny_checkpoint(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_cadences_are_sparse_checkpoints_and_periodic_digests() {
        let dir = tmpdir("cadence");
        let plane = StorePlane::open(&dir).unwrap();
        assert!(!plane.wants_checkpoint(0));
        assert!(plane.wants_checkpoint(DEFAULT_CHECKPOINT_EVERY - 1));
        assert!(plane.wants_digests(0));
        assert!(!plane.wants_digests(1));
        assert!(plane.wants_digests(DEFAULT_DIGEST_EVERY));
        drop(plane);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plane_journals_and_checkpoints_through_the_hooks() {
        let dir = tmpdir("plane");
        {
            let mut plane = StorePlane::with_cadence(&dir, 1, 4).unwrap();
            assert!(plane.enabled());
            assert!(plane.wants_checkpoint(0), "cadence 1 checkpoints every epoch");
            assert!(plane.load_resume().unwrap().is_none(), "fresh store is cold");
            plane
                .epoch_begin(EpochRecordRef {
                    epoch: 0,
                    events: &[],
                    details: &[],
                    feedback: &[],
                })
                .unwrap();
            plane.epoch_commit(0, None).unwrap();
            plane.checkpoint(&tiny_checkpoint(1)).unwrap();
        }
        // A fresh plane over the same directory resumes from disk alone.
        let mut plane = StorePlane::open(&dir).unwrap();
        let resume = plane.load_resume().unwrap().unwrap();
        assert_eq!(resume.checkpoint, tiny_checkpoint(1));
        assert_eq!(resume.tail.len(), 0, "no committed epochs past the checkpoint");
        assert_eq!(plane.resumed_from(), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_collects_only_committed_epochs() {
        let dir = tmpdir("tail");
        {
            let mut plane = StorePlane::open(&dir).unwrap();
            let empty = |epoch| EpochRecordRef {
                epoch,
                events: &[],
                details: &[],
                feedback: &[],
            };
            plane.epoch_begin(empty(0)).unwrap();
            plane.epoch_commit(0, None).unwrap();
            plane.checkpoint(&tiny_checkpoint(1)).unwrap();
            plane.epoch_begin(empty(1)).unwrap();
            plane.epoch_commit(1, None).unwrap();
            // Epoch 2 begins but never commits: the in-flight epoch.
            plane.epoch_begin(empty(2)).unwrap();
        }
        let mut plane = StorePlane::open(&dir).unwrap();
        let resume = plane.load_resume().unwrap().unwrap();
        assert_eq!(resume.checkpoint.epochs, 1);
        assert_eq!(resume.tail.len(), 1, "only epoch 1 is committed");
        assert_eq!(resume.tail[0].epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_epoch_is_a_typed_crash_after_the_journal_write() {
        let dir = tmpdir("kill");
        let mut plane = StorePlane::open(&dir).unwrap().kill_at_epoch(0);
        let err = plane
            .epoch_begin(EpochRecordRef {
                epoch: 0,
                events: &[],
                details: &[],
                feedback: &[],
            })
            .unwrap_err();
        assert_eq!(
            err,
            ChaosError {
                epoch: 0,
                shard: None,
                fault_kind: FaultKind::Crash
            }
        );
        assert_eq!(
            plane.journal().epochs_journaled(),
            1,
            "write-ahead record landed before the kill"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
