//! Typed persistence errors.
//!
//! Every way a checkpoint or journal file can fail to round-trip has its
//! own variant carrying the evidence (expected vs. found version, the
//! byte offset of a truncation, both digests of a mismatch). Underlying
//! filesystem failures are carried as the operation attempted plus the
//! [`std::io::ErrorKind`] — a plain enum, so [`StoreError`] stays `Copy`,
//! `Eq`, and free of `io::Error`'s boxed payloads. No variant is a
//! string.

/// Which filesystem operation an [`StoreError::Io`] was performing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// Reading a file.
    Read,
    /// Writing a file (including its temporary sibling).
    Write,
    /// Flushing written bytes to stable storage.
    Sync,
    /// Renaming the temporary file over the final path.
    Rename,
    /// Creating the store directory.
    CreateDir,
    /// Listing the store directory.
    List,
    /// Truncating a journal to its last whole frame.
    Truncate,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::CreateDir => "create-dir",
            IoOp::List => "list",
            IoOp::Truncate => "truncate",
        };
        f.write_str(s)
    }
}

/// Why a store operation failed. Every variant is typed; corruption is
/// always attributable to a position or a pair of conflicting values,
/// never reported as a bare string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The header version is not one this reader understands.
    VersionMismatch {
        /// The version the file carries.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// A frame, section, or field ended before its declared length.
    TruncatedFrame {
        /// Byte offset where the stream ran out.
        offset: u64,
    },
    /// The trailer digest disagrees with the digest of the decoded bytes.
    DigestMismatch {
        /// The digest the trailer committed.
        expected: u64,
        /// The digest recomputed over the sections actually read.
        found: u64,
    },
    /// A section carried a tag this version does not define.
    UnknownSection {
        /// The offending tag.
        tag: u8,
    },
    /// A required section is absent.
    MissingSection {
        /// The tag of the missing section.
        tag: u8,
    },
    /// A field held a value outside its domain (e.g. a boolean byte
    /// that is neither 0 nor 1).
    BadField {
        /// Byte offset of the offending field.
        offset: u64,
    },
    /// The filesystem failed underneath the store.
    Io {
        /// The operation attempted.
        op: IoOp,
        /// The error kind the filesystem reported.
        kind: std::io::ErrorKind,
    },
    /// The write-ahead journal beneath the store failed at this epoch.
    Journal {
        /// Epoch of the failed journal operation.
        epoch: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic { found } => {
                write!(f, "store file missing SYBS magic (found {found:02x?})")
            }
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "store format version {found} unsupported (this build reads {expected})")
            }
            StoreError::TruncatedFrame { offset } => {
                write!(f, "store file truncated at byte {offset}")
            }
            StoreError::DigestMismatch { expected, found } => write!(
                f,
                "checkpoint digest mismatch: trailer {expected:#018x}, decoded {found:#018x}"
            ),
            StoreError::UnknownSection { tag } => {
                write!(f, "checkpoint carries unknown section tag {tag}")
            }
            StoreError::MissingSection { tag } => {
                write!(f, "checkpoint missing required section tag {tag}")
            }
            StoreError::BadField { offset } => {
                write!(f, "store field out of domain at byte {offset}")
            }
            StoreError::Io { op, kind } => write!(f, "store {op} failed ({kind:?})"),
            StoreError::Journal { epoch } => {
                write!(f, "write-ahead journal failed at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
