//! BAD: the hot-path root `serve` allocates two calls down — the
//! allocation sits in `scan::row`, whose own body has no loop, but it is
//! in the loop context because `serve` calls `scan::step` from inside
//! its per-event loop.

#![forbid(unsafe_code)]

pub mod scan;

pub fn serve(events: u32) -> u32 {
    let mut acc = 0;
    for e in 0..events {
        acc += scan::step(e);
    }
    acc
}
