pub fn step(e: u32) -> u32 {
    row(e)
}

fn row(e: u32) -> u32 {
    let v: Vec<u32> = Vec::new();
    v.first().copied().unwrap_or(e)
}
