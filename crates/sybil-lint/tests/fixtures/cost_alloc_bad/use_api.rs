// Keeps the fixture's exports alive for S104: serve, step.

fn main() {
    let _ = (cost_alloc_bad::serve(1), cost_alloc_bad::scan::step(1));
}
