// Keeps the fixture's exports alive for S104: serve.

fn main() {
    let q = std::sync::Mutex::new(Vec::new());
    let _ = cost_block_rec::serve(&q, 1);
}
