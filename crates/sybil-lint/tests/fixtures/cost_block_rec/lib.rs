//! BAD: the hot loop blocks on a mutex every event (S116), and the
//! depth helper it calls recurses (S117) — both reachable from the
//! root `serve`.

#![forbid(unsafe_code)]

use std::sync::Mutex;

pub fn serve(q: &Mutex<Vec<u32>>, events: u32) -> u32 {
    let mut acc = 0;
    for e in 0..events {
        if let Ok(g) = q.lock() {
            acc += g.first().copied().unwrap_or(0);
        }
        acc += depth(e);
    }
    acc
}

fn depth(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        1 + depth(n - 1)
    }
}
