//! The fault-plane surface: the engine consults `Plane` at every
//! decision point; production passes [`NoFaults`], which keeps every
//! default. One default hook reaching IO poisons the production path.

/// The hook trait; every default must stay a pure no-op.
pub trait Plane {
    /// BAD: the default hook journals to disk.
    fn epoch_commit(&self, bytes: &[u8]) -> usize {
        crate::journal::flush(bytes)
    }
}

/// The production plane: all defaults.
pub struct NoFaults;

impl Plane for NoFaults {}
