//! BAD: the production fault-plane surface reaches `fs::write` through
//! the trait's default hook — the plane the real engine runs would
//! journal to disk on every epoch.

pub mod journal;
pub mod plane;
