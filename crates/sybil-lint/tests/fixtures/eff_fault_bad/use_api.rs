// Keeps the fixture's exports alive for S104: Plane, NoFaults,
// epoch_commit, flush.

fn main() {
    let p = eff_fault_bad::plane::NoFaults;
    let _ = (
        eff_fault_bad::plane::Plane::epoch_commit(&p, &[]),
        eff_fault_bad::journal::flush(&[]),
    );
}
