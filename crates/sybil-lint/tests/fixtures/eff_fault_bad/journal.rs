pub fn flush(bytes: &[u8]) -> usize {
    if std::fs::write("journal.bin", bytes).is_ok() {
        bytes.len()
    } else {
        0
    }
}
