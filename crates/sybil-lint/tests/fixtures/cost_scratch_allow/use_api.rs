// Keeps the fixture's exports alive for S104: serve.

fn main() {
    let _ = cost_scratch_allow::serve(1);
}
