//! Per-event allocation inside the hot loop, carried by an allowlist
//! entry whose justification spells out the amortization invariant.

#![forbid(unsafe_code)]

pub fn serve(events: u32) -> u32 {
    let mut acc = 0;
    for e in 0..events {
        let row = vec![e];
        acc += row.first().copied().unwrap_or(0);
    }
    acc
}
