//! BAD: spawns threads outside the sanctioned scheduler files.

pub fn fanout(n: usize) -> usize {
    let mut done = 0;
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {});
        }
        done = n;
    });
    done
}
