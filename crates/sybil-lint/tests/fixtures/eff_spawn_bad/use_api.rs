// Keeps the fixture's exports alive for S104: fanout.

fn main() {
    let _ = eff_spawn_bad::fanout(2);
}
