use std::collections::HashMap;

pub fn to_json(metrics: &HashMap<String, u64>) -> String {
    render(metrics)
}

fn render(metrics: &HashMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (k, v) in metrics {
        out.push_str(k);
        out.push(':');
        out.push_str(&v.to_string());
        out.push(',');
    }
    out.push('}');
    out
}
