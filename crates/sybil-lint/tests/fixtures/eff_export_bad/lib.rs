//! BAD: the byte-stable sink `to_json` reaches unordered HashMap
//! iteration one call down, so the exported bytes depend on hash order.

#![forbid(unsafe_code)]

pub mod export;
