// Keeps the fixture's exports alive for S104: to_json.

fn main() {
    let _ = eff_export_bad::export::to_json(&Default::default());
}
