//! GOOD: the scratch buffer grows inside the hot loop but is cleared in
//! the same function — the recycled-scratch idiom S114's drain modeling
//! recognizes. The constructor sits outside the loop, so S113 stays
//! silent too.

#![forbid(unsafe_code)]

pub fn serve(events: u32) -> u32 {
    let mut scratch: Vec<u32> = Vec::with_capacity(4);
    let mut acc = 0;
    for e in 0..events {
        scratch.push(e);
        acc += scratch.iter().copied().sum::<u32>();
        scratch.clear();
    }
    acc
}
