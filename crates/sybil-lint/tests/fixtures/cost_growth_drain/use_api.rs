// Keeps the fixture's exports alive for S104: serve.

fn main() {
    let _ = cost_growth_drain::serve(1);
}
