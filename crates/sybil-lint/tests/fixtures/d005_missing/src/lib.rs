// D005 fixture: a library crate root without #![forbid(unsafe_code)].
// Expected finding: D005 at line 1.

pub fn noop() {}
