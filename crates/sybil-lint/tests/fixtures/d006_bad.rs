// D006 fixture: entropy-seeded randomness. Expected findings: lines 5,
// 10, 15.

pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rng.random_range(0..6)
}

pub fn seed_from_os() -> u64 {
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.random()
}

pub fn coin() -> bool {
    rand::random()
}
