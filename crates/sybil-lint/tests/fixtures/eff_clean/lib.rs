//! GOOD: the root takes its clock as a parameter, iterates an ordered
//! container, and performs no IO — every effect rule stays quiet even
//! with the function designated as root *and* sink.

use std::collections::BTreeMap;

pub fn serve(now_ms: u64, metrics: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in metrics {
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
        out.push('@');
        out.push_str(&now_ms.to_string());
        out.push(';');
    }
    out
}
