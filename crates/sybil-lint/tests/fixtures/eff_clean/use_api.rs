// Keeps the fixture's exports alive for S104: serve.

fn main() {
    let _ = eff_clean::serve(0, &Default::default());
}
