// D003 fixture: parallelism through the deterministic map only.
// Expected findings: none.

pub fn sweep(len: usize) -> Vec<u64> {
    // The sanctioned path: osn_graph::par keeps output bit-identical
    // across thread counts.
    osn_graph::par::map_indexed(len, |i| (i as u64) * 2)
}
