pub fn seed() -> u64 {
    match std::env::var("EFF_SEED") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
