//! BAD: the clockless root `sweep` reaches `env::var` through a call made
//! inside a `par::map_slice` closure.

pub mod cfg;

pub fn sweep(items: &[u32]) -> Vec<u64> {
    par::map_slice(items, |xs| xs.iter().map(|&x| seed_of(x)).collect())
}

fn seed_of(x: u32) -> u64 {
    cfg::seed() + x as u64
}
