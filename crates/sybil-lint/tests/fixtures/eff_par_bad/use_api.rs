// Keeps the fixture's exports alive for S104: sweep, seed.

fn main() {
    let _ = (eff_par_bad::sweep(&[1]), eff_par_bad::cfg::seed());
}
