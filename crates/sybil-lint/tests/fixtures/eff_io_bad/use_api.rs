// Keeps the fixture's exports alive for S104: step, record.

fn main() {
    let _ = (eff_io_bad::step(&[]), eff_io_bad::journal::record(&[]));
}
