//! BAD: the epoch-barrier root `step` reaches `fs::write` one call down.

pub mod journal;

pub fn step(deltas: &[u8]) -> usize {
    journal::record(deltas)
}
