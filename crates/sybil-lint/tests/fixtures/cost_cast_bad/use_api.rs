// Keeps the fixture's exports alive for S104: serve.

fn main() {
    let _ = cost_cast_bad::serve(1);
}
