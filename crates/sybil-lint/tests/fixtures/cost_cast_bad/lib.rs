//! BAD: a truncating `as u32` cast on the hot path. The widening casts
//! on the surrounding lines (`as usize`, `as u64`) stay silent — only
//! narrow targets can drop id/count bits.

#![forbid(unsafe_code)]

pub fn serve(events: u64) -> u32 {
    let wide = events as usize;
    let total = (wide as u64) + 1;
    total as u32
}
