// D003 fixture: raw threading primitives outside osn_graph::par.
// Expected findings: lines 5, 10, 13.

pub fn race() {
    let lock = std::sync::Mutex::new(0u32);
    let _ = lock.lock();
}

pub fn fork() {
    std::thread::spawn(|| {});
}

pub fn count(c: &std::sync::atomic::AtomicUsize) -> usize {
    c.load(std::sync::atomic::Ordering::Relaxed)
}
