// D004 fixture: panics in library code. Expected findings: lines 5, 9,
// 13 — and none inside the test module.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller promised a number")
}

pub fn forbidden() -> ! {
    panic!("library code must not panic");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
