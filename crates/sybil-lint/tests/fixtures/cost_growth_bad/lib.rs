//! BAD: the journal grows once per event and is never drained — a
//! static leak on the per-event critical path.

#![forbid(unsafe_code)]

pub mod journal;

pub fn serve(events: u32) -> u32 {
    let mut j = journal::Journal::default();
    for e in 0..events {
        j.record(e);
    }
    j.total()
}
