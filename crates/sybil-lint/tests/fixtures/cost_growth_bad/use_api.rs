// Keeps the fixture's exports alive for S104: serve, Journal, record, total.

fn main() {
    let mut j = cost_growth_bad::journal::Journal::default();
    j.record(1);
    let _ = (cost_growth_bad::serve(1), j.total());
}
