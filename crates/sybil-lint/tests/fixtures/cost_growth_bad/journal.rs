/// Append-only event journal — nothing ever drains `entries`.
#[derive(Default)]
pub struct Journal {
    entries: Vec<u32>,
}

impl Journal {
    pub fn record(&mut self, e: u32) {
        self.entries.push(e);
    }

    pub fn total(&self) -> u32 {
        self.entries.iter().copied().sum()
    }
}
