// D006 fixture: every RNG is explicitly seeded; replays are
// bit-identical. Expected findings: none.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn roll(seed: u64) -> u8 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random_range(0..6)
}
