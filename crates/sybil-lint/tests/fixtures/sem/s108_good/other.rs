//! A non-designated module in the same crate: id-keyed maps are fine
//! here, proving S108 checks only the three scale-critical files.
#![forbid(unsafe_code)]

/// Aggregates detection counts per account id.
pub fn per_account(ids: &[u32]) -> usize {
    let mut m = HashMap::<u32, u64>::new();
    for &i in ids {
        *m.entry(i).or_insert(0) += 1;
    }
    m.len()
}
