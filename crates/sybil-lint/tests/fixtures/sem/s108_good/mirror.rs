//! S108 good fixture: the designated module on flat layouts; the bare
//! `HashMap` import and the inferred-key `new()` name no key type.
#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Sorted-run probe over a flat edge arena.
pub fn probe(runs: &[u64], key: u64) -> bool {
    runs.binary_search(&key).is_ok()
}

/// String-keyed scratch map: not an id key.
pub fn tally(labels: &[String]) -> usize {
    let mut m = HashMap::new();
    for l in labels {
        m.insert(l.clone(), ());
    }
    m.len()
}
