//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = sybil_serve::mirror::probe(&[], 0);
    let _ = sybil_serve::mirror::tally(&[]);
    let _ = sybil_serve::report::per_account(&[]);
}
