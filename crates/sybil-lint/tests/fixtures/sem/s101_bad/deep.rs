//! Private helper with a panic site.

pub(crate) fn pick(xs: &[u64]) -> u64 {
    xs.first().copied().expect("non-empty input")
}
