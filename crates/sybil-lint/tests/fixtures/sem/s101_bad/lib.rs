//! S101 bad fixture: a pub entry reaches a panic site one call away.
#![forbid(unsafe_code)]

/// Exported entry point; panics on empty input via `pick`.
pub fn entry(xs: &[u64]) -> u64 {
    pick(xs)
}
