//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s101_bad::entry as fn(&[u64]) -> u64;
}
