//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s102_bad::scores as fn(&[f64]) -> Vec<f64>;
}
