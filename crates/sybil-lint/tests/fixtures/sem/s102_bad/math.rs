//! Serial kernel with an accumulation loop.

pub(crate) fn dot(x: f64) -> f64 {
    let mut acc = 0.0;
    for k in 0..4 {
        acc += x / (k as f64 + 1.0);
    }
    acc
}
