//! S102 bad fixture: a parallel map reaches a float reduction.
#![forbid(unsafe_code)]

/// Per-element scores computed in parallel.
pub fn scores(xs: &[f64]) -> Vec<f64> {
    par::map_slice(xs, |chunk| chunk.iter().map(|v| dot(*v)).collect())
}
