//! Reduction-free serial kernel.

pub(crate) fn scale(x: f64) -> f64 {
    x * 0.5
}
