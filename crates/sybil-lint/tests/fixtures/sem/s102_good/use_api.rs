//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s102_good::scores as fn(&[f64]) -> Vec<f64>;
    let _ = s102_good::total as fn(&[f64]) -> f64;
}
