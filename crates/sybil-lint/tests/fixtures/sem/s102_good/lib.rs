//! S102 good fixture: the parallel kernel is reduction-free; the only
//! float reduction runs serially, outside any `par::` entry.
#![forbid(unsafe_code)]

/// Per-element scaling computed in parallel.
pub fn scores(xs: &[f64]) -> Vec<f64> {
    par::map_slice(xs, |chunk| chunk.iter().map(|v| scale(*v)).collect())
}

/// Serial total over the final scores.
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in xs {
        acc += *v;
    }
    acc
}
