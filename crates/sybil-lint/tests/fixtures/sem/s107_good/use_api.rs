//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s107_good::parse_level("3");
    let _ = s107_good::load("3");
    let _ = s107_good::load_or_default("3");
    let _ = s107_good::LevelError::NotANumber;
}
