//! S107 good fixture: the same surface with a typed error, the exit
//! settled by returning the error, and pub(crate) internals exempt.
#![forbid(unsafe_code)]

/// A typed error callers can match on.
#[derive(Debug)]
pub enum LevelError {
    /// The input was not a number.
    NotANumber,
}

impl std::fmt::Display for LevelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not a number")
    }
}

/// Parses a level with a matchable error.
pub fn parse_level(raw: &str) -> Result<u8, LevelError> {
    raw.parse::<u8>().map_err(|_| LevelError::NotANumber)
}

/// Errors propagate; the binary decides what an error costs.
pub fn load(raw: &str) -> Result<u8, LevelError> {
    let lvl = parse_level(raw)?;
    Ok(lvl.saturating_add(1))
}

// Restricted visibility is internal surface, not API.
pub(crate) fn internal(raw: &str) -> Result<u8, String> {
    raw.parse::<u8>().map_err(|_| "internal only".to_string())
}

/// A fallback value (not an exit) is a fine way to settle an error.
pub fn load_or_default(raw: &str) -> u8 {
    load(raw).unwrap_or_else(|_| {
        let _ = internal("0");
        0
    })
}
