//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s106_bad::fan_out(&[1, 2]);
    let _ = s106_bad::fan_out_typed(7);
}
