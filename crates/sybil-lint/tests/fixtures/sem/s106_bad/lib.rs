//! S106 bad fixture: unbounded channel constructors in library code;
//! the `unbounded` parameter below is a bare mention, not a call.
#![forbid(unsafe_code)]

/// Streams work through a channel with no capacity bound.
pub fn fan_out(xs: &[u64]) -> u64 {
    let (tx, rx) = channel::unbounded();
    for &x in xs {
        let _ = tx.send(x);
    }
    drop(tx);
    rx.iter().sum()
}

/// Turbofish form of the same mistake.
pub fn fan_out_typed(unbounded: u64) -> u64 {
    let (tx, rx) = channel::unbounded_channel::<u64>();
    let _ = tx.send(unbounded);
    rx.recv().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_channels_are_ok_in_tests() {
        let _ = channel::unbounded::<u64>();
    }
}
