//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s103_good::jitter as fn(&[u64]) -> Vec<u64>;
}
