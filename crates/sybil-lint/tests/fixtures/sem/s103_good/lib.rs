//! S103 good fixture: all mutable state is created inside the closure,
//! so nothing crosses the `par::` boundary.
#![forbid(unsafe_code)]

/// Parallel jitter with per-item local state only.
pub fn jitter(xs: &[u64]) -> Vec<u64> {
    par::map_indexed(xs.len(), |i| {
        let mut acc = 7u64;
        push_stat(&mut acc);
        acc + i as u64
    })
}
