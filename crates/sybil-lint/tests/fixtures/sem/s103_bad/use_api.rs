//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _w = s103_bad::Wheel;
    let _ = s103_bad::jitter as fn(&[u64], &mut s103_bad::Wheel) -> Vec<u64>;
}
