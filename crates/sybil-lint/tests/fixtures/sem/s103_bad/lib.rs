//! S103 bad fixture: mutable state and an RNG handle captured by the
//! closure crossing the `par::` boundary.
#![forbid(unsafe_code)]

/// Opaque RNG-ish handle.
pub struct Wheel;

/// Parallel jitter that leaks shared mutable state into the closure.
pub fn jitter(xs: &[u64], rng: &mut Wheel) -> Vec<u64> {
    let mut total = 0u64;
    par::map_indexed(xs.len(), |i| {
        push_stat(&mut total);
        rng.next_step() + i as u64
    })
}
