//! S104 good fixture: the same surface as s104_bad, but a test names it.
#![forbid(unsafe_code)]

/// Exported and exercised by `tests/api.rs`.
pub struct Orphan;

/// Exported and exercised by `tests/api.rs`.
pub fn orphan_rate(x: u64) -> u64 {
    x.wrapping_mul(2)
}
