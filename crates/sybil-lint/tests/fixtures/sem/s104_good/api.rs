//! Exercises the fixture's exported surface.

fn _probe() {
    let _o = s104_good::Orphan;
    let _ = s104_good::orphan_rate(3);
}
