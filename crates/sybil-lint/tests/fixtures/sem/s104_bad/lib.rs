//! S104 bad fixture: exported surface that nothing exercises.
#![forbid(unsafe_code)]

/// Exported but never named outside this file.
pub struct Orphan;

/// Exported but never named by any bin, test, bench, or other crate.
pub fn orphan_rate(x: u64) -> u64 {
    x.wrapping_mul(2)
}
