//! S107 bad fixture: a stringly-typed pub signature and a library-side
//! process::exit; the private helper and the Ok-side String are clean.
#![forbid(unsafe_code)]

/// Parses a level — but callers can only string-match the error.
pub fn parse_level(raw: &str) -> Result<u8, String> {
    raw.parse::<u8>().map_err(|e| format!("bad level: {e}"))
}

/// The Ok side may be a String; only the error position is stringly.
pub fn render_name(id: u8) -> Result<String, u8> {
    if id == 0 {
        Err(id)
    } else {
        Ok(format!("node{id}"))
    }
}

// Private signatures are not API surface.
fn helper(raw: &str) -> Result<u8, String> {
    raw.parse::<u8>().map_err(|_| "nope".to_string())
}

/// Settles the error by killing the process — from library code.
pub fn load_or_die(raw: &str) -> u8 {
    helper(raw).unwrap_or_else(|_| std::process::exit(2))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_be_stringly() {
        pub fn scratch(raw: &str) -> Result<u8, String> {
            raw.parse::<u8>().map_err(|_| "x".to_string())
        }
        assert!(scratch("3").is_ok());
    }
}
