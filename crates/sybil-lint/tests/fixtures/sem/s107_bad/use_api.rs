//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s107_bad::parse_level("3");
    let _ = s107_bad::render_name(1);
    let _ = s107_bad::load_or_die("3");
}
