//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = s101_good::entry as fn(&[u64]) -> Option<u64>;
}
