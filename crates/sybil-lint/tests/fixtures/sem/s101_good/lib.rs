//! S101 good fixture: the fallible helper propagates Option instead.
#![forbid(unsafe_code)]

/// Exported entry point; `None` on empty input.
pub fn entry(xs: &[u64]) -> Option<u64> {
    pick(xs)
}
