//! Private helper without panic sites.

pub(crate) fn pick(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
