//! S108 bad fixture: hash containers keyed by account/packed-edge ids,
//! standing in for crates/sybil-serve/src/mirror.rs.
#![forbid(unsafe_code)]

/// Tracks which packed edges were seen this epoch.
pub struct EpochSeen {
    seen: HashSet<u64>,
    by_owner: HashMap<u32, Vec<u64>>,
}

/// Counts link events per (src, dst) pair.
pub fn pair_counts(edges: &[(u32, u32)]) -> usize {
    let mut counts = HashMap::<(u32, u32), u64>::new();
    for &(a, b) in edges {
        *counts.entry((a, b)).or_insert(0) += 1;
    }
    counts.len()
}

/// String-keyed map: not an id key, so S108 stays quiet.
pub fn label_counts(labels: &[String]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for l in labels {
        *m.entry(l.clone()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_maps_are_ok_in_tests() {
        let mut m = HashMap::<u64, u64>::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
