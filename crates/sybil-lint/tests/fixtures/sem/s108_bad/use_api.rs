//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _: Option<sybil_serve::mirror::EpochSeen> = None;
    let _ = sybil_serve::mirror::pair_counts(&[]);
    let _ = sybil_serve::mirror::label_counts(&[]);
}
