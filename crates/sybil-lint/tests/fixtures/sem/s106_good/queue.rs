//! S106 good fixture: stands in for crates/sybil-serve/src/queue.rs,
//! the one reviewed staging surface, where the rule does not apply.
#![forbid(unsafe_code)]

/// Builds a staging channel inside the sanctioned module.
pub fn staging() -> u64 {
    let (tx, rx) = channel::unbounded::<u64>();
    let _ = tx.send(1);
    rx.recv().unwrap_or(0)
}
