//! Names the fixture's public surface so S104 stays quiet.

fn _exercise() {
    let _ = sybil_serve::queue::staging();
}
