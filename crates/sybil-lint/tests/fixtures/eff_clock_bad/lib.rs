//! BAD: the clockless root `serve` reaches `Instant::now` two calls down.

#![forbid(unsafe_code)]

pub mod tick;

pub fn serve(epochs: u32) -> u64 {
    let mut acc = 0;
    for _ in 0..epochs {
        acc += tick::advance();
    }
    acc
}
