use std::time::Instant;

pub fn advance() -> u64 {
    now_ms()
}

fn now_ms() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
