// Keeps the fixture's exports alive for S104: serve, advance.

fn main() {
    let _ = (eff_clock_bad::serve(1), eff_clock_bad::tick::advance());
}
