//! BAD: the hot loop's `extract` trait-object call dispatches (resolved
//! conservatively by name) to `Dense::extract`, which allocates a fresh
//! row per event.

#![forbid(unsafe_code)]

pub trait Extractor {
    fn extract(&self, e: u32) -> Vec<u32>;
}

pub struct Dense;

impl Extractor for Dense {
    fn extract(&self, e: u32) -> Vec<u32> {
        vec![e, e + 1]
    }
}

pub fn serve(src: &dyn Extractor, events: u32) -> u32 {
    let mut acc = 0;
    for e in 0..events {
        acc += src.extract(e).first().copied().unwrap_or(0);
    }
    acc
}
