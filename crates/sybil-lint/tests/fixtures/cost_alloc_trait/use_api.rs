// Keeps the fixture's exports alive for S104: Extractor, Dense, serve.

fn main() {
    let _ = cost_alloc_trait::serve(&cost_alloc_trait::Dense, 1);
    let _: Option<&dyn cost_alloc_trait::Extractor> = None;
}
