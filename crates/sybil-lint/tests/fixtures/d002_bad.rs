// D002 fixture: wall-clock reads in simulation code. Expected findings:
// lines 5 and 10.

pub fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn epoch() -> u64 {
    let _now = std::time::SystemTime::now();
    0
}
