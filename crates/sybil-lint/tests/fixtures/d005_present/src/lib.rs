//! D005 fixture: the attribute is present. Expected findings: none.
#![forbid(unsafe_code)]

pub fn noop() {}
