// D001 fixture: unordered HashMap/HashSet iteration that escapes into
// order-dependent output. Expected findings: lines 8, 12, 16.
use std::collections::{HashMap, HashSet};

pub fn emit(map: HashMap<u32, u32>, set: HashSet<u32>) -> Vec<String> {
    let mut out = Vec::new();
    // line 8: method-call iteration over a HashMap
    for (k, v) in map.iter() {
        out.push(format!("{k}={v}"));
    }
    // line 12: for-loop directly over a borrowed HashSet
    for s in &set {
        out.push(format!("{s}"));
    }
    // line 16: keys() feeding output
    let ks: Vec<u32> = map.keys().copied().collect();
    out.push(format!("{}", ks.len()));
    out
}
