// D001 fixture: the two sanctioned shapes — BTreeMap, and collect-then-
// sort — plus non-iterating HashMap use. Expected findings: none.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn emit(map: BTreeMap<u32, u32>, hmap: HashMap<u32, u32>, set: HashSet<u32>) -> Vec<String> {
    let mut out = Vec::new();
    // BTreeMap iteration is ordered.
    for (k, v) in map.iter() {
        out.push(format!("{k}={v}"));
    }
    // Collect-then-sort restores a total order before anything escapes.
    let mut pairs: Vec<(u32, u32)> = hmap.into_iter().collect();
    pairs.sort_unstable();
    for (k, v) in pairs {
        out.push(format!("{k}={v}"));
    }
    // Membership tests never observe iteration order.
    if set.contains(&1) {
        out.push("one".to_string());
    }
    out
}
