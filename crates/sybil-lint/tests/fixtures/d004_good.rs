// D004 fixture: fallible paths return Result/Option or use non-panicking
// combinators. Expected findings: none.

pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn first_or_zero(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
