//! BAD: the clockless root `replay` reaches `SystemTime` through a
//! trait-object method call (resolved conservatively by name).

use std::time::SystemTime;

pub trait Source {
    fn sample(&self) -> u64;
}

pub struct Wall;

impl Source for Wall {
    fn sample(&self) -> u64 {
        let now = SystemTime::now();
        now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
    }
}

pub fn replay(src: &dyn Source) -> u64 {
    src.sample()
}
