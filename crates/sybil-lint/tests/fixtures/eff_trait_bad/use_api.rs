// Keeps the fixture's exports alive for S104: Source, Wall, replay.

fn main() {
    let _ = eff_trait_bad::replay(&eff_trait_bad::Wall);
    let _: Option<&dyn eff_trait_bad::Source> = None;
}
