// Keeps the fixture's exports alive for S104: write_atomic, save_raw.

fn main() {
    let _ = (
        sybil_store::format::write_atomic("a.sybc", &[]),
        sybil_store::store::save_raw("b.sybc", &[]),
    );
}
