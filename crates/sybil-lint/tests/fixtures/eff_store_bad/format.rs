//! The sanctioned path: header, framing, and digest live here, so file
//! IO in this module is exactly where S119 allows it.

/// Writes versioned bytes; the real crate frames and digests them first.
pub fn write_atomic(path: &str, bytes: &[u8]) -> bool {
    std::fs::write(path, bytes).is_ok()
}
