//! BAD: a store layer that writes bytes the format module never sees.

/// Saves a checkpoint directly — unversioned, unframed, undigested.
pub fn save_raw(path: &str, bytes: &[u8]) -> bool {
    std::fs::write(path, bytes).is_ok()
}
