//! BAD: the persistence crate puts bytes on disk from `store.rs`,
//! bypassing the format module that owns the versioned encoding.

pub mod format;
pub mod store;
