// D002 fixture: sim-time only; importing Instant without reading the
// clock is fine (the type may appear in signatures of bench-only
// callers). Expected findings: none.
use std::time::Instant;

pub fn advance(sim_now_secs: u64, dt: u64) -> u64 {
    sim_now_secs + dt
}

pub fn describe(_t: Instant) -> &'static str {
    "a caller-provided instant; never read here"
}
