//! Effect-rule fixture tests (S109–S112): every fixture asserts the
//! exact propagation chain its finding carries — including a trait-object
//! edge, a `par::` closure edge, and an allowlisted sink — plus the
//! fixpoint order-independence proptest and the SARIF snapshot.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use sybil_lint::callgraph::CallGraph;
use sybil_lint::effects::{fixpoint, infer, Effect, EffectConfig};
use sybil_lint::report::Finding;
use sybil_lint::rules_sem::check_workspace_with;
use sybil_lint::workspace::{classify, run_workspace, SourceFile};
use sybil_lint::{allowlist, WorkspaceModel};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Source files of one fixture crate: `(fixture file, workspace-relative
/// suffix)` pairs mapped into a synthetic `crates/<name>/…` layout.
fn eff_files(name: &str, layout: &[(&str, &str)]) -> Vec<SourceFile> {
    layout
        .iter()
        .map(|(disk, rel_suffix)| {
            let rel = format!("crates/{name}/{rel_suffix}");
            SourceFile {
                abs: fixture_dir().join(name).join(disk),
                rel: rel.clone(),
                crate_name: name.to_string(),
                kind: classify(&rel),
            }
        })
        .collect()
}

fn eff_model(name: &str, layout: &[(&str, &str)]) -> WorkspaceModel {
    let files = eff_files(name, layout);
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    WorkspaceModel::build(&files, &sources)
}

/// Run every semantic rule over a fixture with the given effect config.
fn eff_findings(name: &str, layout: &[(&str, &str)], cfg: &EffectConfig) -> Vec<Finding> {
    check_workspace_with(
        &eff_model(name, layout),
        cfg,
        &sybil_lint::costs::HotPathConfig::default(),
    )
}

fn cfg(clockless: &[&str], io_free: &[&str], sinks: &[&str]) -> EffectConfig {
    let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
    EffectConfig {
        clockless_roots: v(clockless),
        io_free_roots: v(io_free),
        byte_stable_sinks: v(sinks),
        ..EffectConfig::default()
    }
}

/// S118 config: only the fault-plane root patterns set.
fn fault_cfg(roots: &[&str]) -> EffectConfig {
    EffectConfig {
        fault_plane_roots: roots.iter().map(|s| s.to_string()).collect(),
        ..EffectConfig::default()
    }
}

const CLOCK: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("tick.rs", "src/tick.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const TRAIT: &[(&str, &str)] =
    &[("lib.rs", "src/lib.rs"), ("use_api.rs", "tests/use_api.rs")];
const PAR: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("cfg.rs", "src/cfg.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const IO: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("journal.rs", "src/journal.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const FAULT: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("plane.rs", "src/plane.rs"),
    ("journal.rs", "src/journal.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const EXPORT: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("export.rs", "src/export.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const ONE: &[(&str, &str)] =
    &[("lib.rs", "src/lib.rs"), ("use_api.rs", "tests/use_api.rs")];

// ---------------------------------------------------------------------
// S109: wall-clock/env/thread-id effects reachable from clockless roots.

#[test]
fn s109_clock_reports_two_edge_chain() {
    let f = eff_findings(
        "eff_clock_bad",
        CLOCK,
        &cfg(&["eff_clock_bad::serve"], &[], &[]),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S109");
    assert_eq!(v.path, "crates/eff_clock_bad/src/tick.rs");
    assert_eq!(v.line, 8);
    assert_eq!(
        v.message,
        "`Instant::now()` (wall-clock read) is reachable from \
         deterministic-core root `eff_clock_bad::serve` (2 calls away); \
         inject the value at the boundary (see serve_timed) or allowlist \
         with the invariant that keeps replay bit-identical"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_clock_bad::serve calls eff_clock_bad::tick::advance at \
             crates/eff_clock_bad/src/lib.rs:10"
                .to_string(),
            "eff_clock_bad::tick::advance calls eff_clock_bad::tick::now_ms at \
             crates/eff_clock_bad/src/tick.rs:4"
                .to_string(),
            "eff_clock_bad::tick::now_ms reads the wall clock via `Instant::now()` at \
             crates/eff_clock_bad/src/tick.rs:8"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s109_silent_without_root_config() {
    let f = eff_findings("eff_clock_bad", CLOCK, &EffectConfig::default());
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn s109_trait_object_edge() {
    let f = eff_findings(
        "eff_trait_bad",
        TRAIT,
        &cfg(&["eff_trait_bad::replay"], &[], &[]),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S109");
    assert_eq!(v.path, "crates/eff_trait_bad/src/lib.rs");
    assert_eq!(v.line, 14);
    assert_eq!(
        v.message,
        "`SystemTime` (wall-clock read) is reachable from \
         deterministic-core root `eff_trait_bad::replay` (1 call away); \
         inject the value at the boundary (see serve_timed) or allowlist \
         with the invariant that keeps replay bit-identical"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_trait_bad::replay calls eff_trait_bad::Wall::sample at \
             crates/eff_trait_bad/src/lib.rs:20"
                .to_string(),
            "eff_trait_bad::Wall::sample reads the wall clock via `SystemTime` at \
             crates/eff_trait_bad/src/lib.rs:14"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s109_par_closure_edge_is_annotated() {
    let f = eff_findings(
        "eff_par_bad",
        PAR,
        &cfg(&["eff_par_bad::sweep"], &[], &[]),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S109");
    assert_eq!(v.path, "crates/eff_par_bad/src/cfg.rs");
    assert_eq!(v.line, 2);
    assert_eq!(
        v.message,
        "`env::var` (environment read) is reachable from \
         deterministic-core root `eff_par_bad::sweep` (2 calls away); \
         inject the value at the boundary (see serve_timed) or allowlist \
         with the invariant that keeps replay bit-identical"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_par_bad::sweep calls eff_par_bad::seed_of from inside the \
             `par::map_slice` closure at crates/eff_par_bad/src/lib.rs:7"
                .to_string(),
            "eff_par_bad::seed_of calls eff_par_bad::cfg::seed at \
             crates/eff_par_bad/src/lib.rs:11"
                .to_string(),
            "eff_par_bad::cfg::seed reads the environment via `env::var` at \
             crates/eff_par_bad/src/cfg.rs:2"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// S110: IO effects reachable from the epoch-barrier critical path.

#[test]
fn s110_io_write_reports_chain() {
    let f = eff_findings("eff_io_bad", IO, &cfg(&[], &["eff_io_bad::step"], &[]));
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S110");
    assert_eq!(v.path, "crates/eff_io_bad/src/journal.rs");
    assert_eq!(v.line, 2);
    assert_eq!(
        v.message,
        "`fs::write` (IO write) is reachable from epoch-barrier path root \
         `eff_io_bad::step` (1 call away); hoist the IO out of the barrier \
         (stage bytes before, flush after) or allowlist with the blocking bound"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_io_bad::step calls eff_io_bad::journal::record at \
             crates/eff_io_bad/src/lib.rs:6"
                .to_string(),
            "eff_io_bad::journal::record performs IO write via `fs::write` at \
             crates/eff_io_bad/src/journal.rs:2"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// S118: IO reachable from the production fault-plane surface (the
// trait's default hooks), rooted by module pattern like the real
// `sybil-serve::fault::*` config.

#[test]
fn s118_default_hook_reaching_io_reports_chain() {
    let f = eff_findings("eff_fault_bad", FAULT, &fault_cfg(&["eff_fault_bad::plane::*"]));
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S118");
    assert_eq!(v.path, "crates/eff_fault_bad/src/journal.rs");
    assert_eq!(v.line, 2);
    assert_eq!(
        v.message,
        "`fs::write` (IO write) is reachable from production fault-plane hook \
         `eff_fault_bad::plane::epoch_commit` (1 call away); keep the \
         production plane a pure no-op — journal writes and other IO belong \
         in the chaos plane's override, never in the default the real engine \
         runs"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_fault_bad::plane::epoch_commit calls eff_fault_bad::journal::flush at \
             crates/eff_fault_bad/src/plane.rs:9"
                .to_string(),
            "eff_fault_bad::journal::flush performs IO write via `fs::write` at \
             crates/eff_fault_bad/src/journal.rs:2"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s118_is_silent_for_an_io_free_plane() {
    // The clean fixture's `serve` designated as fault-plane root: no IO
    // anywhere in its reach, so S118 stays quiet.
    let f = eff_findings("eff_clean", ONE, &fault_cfg(&["eff_clean::serve"]));
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S111: unordered hash iteration reachable from byte-stable sinks.

#[test]
fn s111_nondet_iter_reports_chain() {
    let f = eff_findings(
        "eff_export_bad",
        EXPORT,
        &cfg(&[], &[], &["eff_export_bad::export::to_json"]),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S111");
    assert_eq!(v.path, "crates/eff_export_bad/src/export.rs");
    assert_eq!(v.line, 9);
    assert_eq!(
        v.message,
        "`for … in metrics` (unordered hash iteration) is reachable from \
         byte-stable export sink `eff_export_bad::export::to_json` \
         (1 call away); iterate a BTree container or collect-and-sort \
         before serializing so the exported bytes are order-stable"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_export_bad::export::to_json calls eff_export_bad::export::render at \
             crates/eff_export_bad/src/export.rs:4"
                .to_string(),
            "eff_export_bad::export::render iterates unordered via `for … in metrics` \
             at crates/eff_export_bad/src/export.rs:9"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s111_allowlisted_sink_is_suppressed_with_justification() {
    let toml = r#"
[effects.sinks]
byte_stable = [
    "eff_export_bad::export::to_json",
]

[[allow]]
rule = "S111"
path = "crates/eff_export_bad/src/export.rs"
justification = "fixture: hash order is reviewed as irrelevant to this export"

[[allow]]
rule = "D001"
path = "crates/eff_export_bad/src/export.rs"
justification = "fixture: same reviewed iteration, flagged by the token rule too"
"#;
    let allow = allowlist::parse(toml).expect("valid toml");
    assert_eq!(
        allow.effects.byte_stable_sinks,
        vec!["eff_export_bad::export::to_json".to_string()]
    );
    let rep = run_workspace(&eff_files("eff_export_bad", EXPORT), &allow).unwrap();
    assert!(rep.is_clean(), "{:#?}", rep.violations);
    assert_eq!(rep.allowed.len(), 2, "{:#?}", rep.allowed);
    let (s111, just) = rep
        .allowed
        .iter()
        .find(|(f, _)| f.rule == "S111")
        .expect("S111 suppressed");
    assert_eq!(s111.path, "crates/eff_export_bad/src/export.rs");
    assert!(just.contains("reviewed as irrelevant"));
    assert!(rep.unused_allowlist.is_empty());
}

// ---------------------------------------------------------------------
// S112: spawns outside the sanctioned scheduler files (no config needed).

#[test]
fn s112_spawn_outside_sanctioned_files() {
    let f = eff_findings("eff_spawn_bad", ONE, &EffectConfig::default());
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S112");
    assert_eq!(v.path, "crates/eff_spawn_bad/src/lib.rs");
    assert_eq!(v.line, 5);
    assert_eq!(
        v.message,
        "`thread::scope` spawns outside the sanctioned scheduler files \
         (osn_graph::par, sybil-serve's coordinator); route parallelism \
         through `par::` so the capture and reduction rules can see it"
    );
    assert_eq!(
        v.trace,
        vec![
            "eff_spawn_bad::fanout spawns a thread via `thread::scope` at \
             crates/eff_spawn_bad/src/lib.rs:5, outside the sanctioned \
             scheduler files"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// S119: file IO on versioned state outside sybil-store's format module
// (no config needed — a site rule scoped to the persistence crate).

/// The S119 fixture masquerades as the real persistence crate: its files
/// map to `crates/sybil-store/src/…`, the path the rule is anchored to.
fn store_findings() -> Vec<Finding> {
    let layout: &[(&str, &str)] = &[
        ("lib.rs", "src/lib.rs"),
        ("format.rs", "src/format.rs"),
        ("store.rs", "src/store.rs"),
        ("use_api.rs", "tests/use_api.rs"),
    ];
    let files: Vec<SourceFile> = layout
        .iter()
        .map(|(disk, rel_suffix)| {
            let rel = format!("crates/sybil-store/{rel_suffix}");
            SourceFile {
                abs: fixture_dir().join("eff_store_bad").join(disk),
                rel: rel.clone(),
                crate_name: "sybil-store".to_string(),
                kind: classify(&rel),
            }
        })
        .collect();
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    check_workspace_with(
        &WorkspaceModel::build(&files, &sources),
        &EffectConfig::default(),
        &sybil_lint::costs::HotPathConfig::default(),
    )
}

#[test]
fn s119_store_io_outside_the_format_module() {
    // Both fixture modules call `fs::write`; only the one outside
    // `format.rs` is a finding.
    let f = store_findings();
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S119");
    assert_eq!(v.path, "crates/sybil-store/src/store.rs");
    assert_eq!(v.line, 5);
    assert_eq!(
        v.message,
        "`fs::write` (IO write) touches versioned state outside \
         `sybil-store::format`; the SYBS header, framing, and trailer \
         digest live in format.rs — express the operation as a `format` \
         helper so those rules apply to every byte that reaches disk"
    );
    assert_eq!(
        v.trace,
        vec![
            "sybil-store::store::save_raw performs IO write via `fs::write` \
             at crates/sybil-store/src/store.rs:5, outside the format \
             module that owns the on-disk encoding"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// Clean fixture: root + sink designation with no effects stays silent.

#[test]
fn eff_clean_is_silent_as_root_and_sink() {
    let f = eff_findings(
        "eff_clean",
        ONE,
        &cfg(
            &["eff_clean::serve"],
            &["eff_clean::serve"],
            &["eff_clean::serve"],
        ),
    );
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// The inference layer directly: inferred sets and confined ancestry.

#[test]
fn inferred_effects_flow_to_the_root() {
    let model = eff_model("eff_clock_bad", CLOCK);
    let cg = CallGraph::build(&model);
    let em = infer(&model, &cg);
    let serve = (0..model.fns.len())
        .find(|&i| model.fq_name(i) == "eff_clock_bad::serve")
        .expect("serve exists");
    let now_ms = (0..model.fns.len())
        .find(|&i| model.fq_name(i) == "eff_clock_bad::tick::now_ms")
        .expect("now_ms exists");
    assert!(em.intrinsic[now_ms].contains(Effect::ReadsWallClock));
    assert!(em.intrinsic[serve].is_empty());
    assert!(em.inferred[serve].contains(Effect::ReadsWallClock));
    // Ancestry confined by `admit`: forbidding every intermediate node
    // leaves the intrinsic function rootless.
    assert!(cg
        .nearest_ancestor_where(now_ms, |i| i == serve, |_| false)
        .is_none());
    assert!(cg
        .nearest_ancestor_where(now_ms, |i| i == serve, |_| true)
        .is_some());
}

// ---------------------------------------------------------------------
// Fixpoint order independence: the join is a set union, so every visit
// order reaches the same least fixpoint.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fixpoint_is_visit_order_independent(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..32),
        intr in proptest::collection::vec(0u16..=255, 8),
        keys1 in proptest::collection::vec(0u32..1000, 8),
        keys2 in proptest::collection::vec(0u32..1000, 8),
    ) {
        // Random sort keys induce arbitrary visit-order permutations.
        let perm = |keys: &[u32]| {
            let mut order: Vec<usize> = (0..8).collect();
            order.sort_by_key(|&i| (keys[i], i));
            order
        };
        let (order1, order2) = (perm(&keys1), perm(&keys2));
        let mut out = vec![Vec::new(); 8];
        for &(a, b) in &edges {
            out[a].push(b);
        }
        let a = fixpoint(&out, &intr, &order1);
        let b = fixpoint(&out, &intr, &order2);
        prop_assert_eq!(&a, &b);
        // The fixpoint is sound: every function includes its own
        // intrinsics and each callee's final set.
        for f in 0..8 {
            prop_assert_eq!(a[f] & intr[f], intr[f]);
            for &g in &out[f] {
                prop_assert_eq!(a[f] & a[g], a[g]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// SARIF snapshot over a fixture workspace.

#[test]
fn sarif_snapshot_matches_fixture() {
    let allow = allowlist::Allowlist {
        entries: Vec::new(),
        effects: cfg(&["eff_clock_bad::serve"], &[], &[]),
        hotpaths: sybil_lint::costs::HotPathConfig::default(),
    };
    let rep = run_workspace(&eff_files("eff_clock_bad", CLOCK), &allow).unwrap();
    let sarif = sybil_lint::sarif::render_sarif(&rep);
    let expected_path = fixture_dir().join("eff_clock_bad/expected.sarif");
    if std::env::var_os("EFF_SARIF_REGEN").is_some() {
        std::fs::write(&expected_path, &sarif).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).expect("snapshot exists");
    assert_eq!(
        sarif, expected,
        "SARIF output drifted from the committed snapshot; if the change \
         is intentional, rerun this test with EFF_SARIF_REGEN=1"
    );
}
