//! S-series fixture tests: every semantic rule is exercised against a
//! good and a bad multi-file fixture crate, asserting the exact call
//! chains the findings carry — in the raw findings, the human rendering,
//! and the JSON rendering. Also covers S105 staleness and the
//! `--fix-allowlist` rewrite at the library level.

use std::path::{Path, PathBuf};
use sybil_lint::allowlist;
use sybil_lint::report::{render_human, render_json, Finding};
use sybil_lint::rules_sem::check_workspace;
use sybil_lint::workspace::{classify, run_workspace, SourceFile};
use sybil_lint::WorkspaceModel;

fn sem_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sem")
}

/// Source files of one fixture crate: `(fixture file, workspace-relative
/// suffix)` pairs mapped into a synthetic `crates/<name>/…` layout.
fn sem_files(name: &str, layout: &[(&str, &str)]) -> Vec<SourceFile> {
    layout
        .iter()
        .map(|(disk, rel_suffix)| {
            let rel = format!("crates/{name}/{rel_suffix}");
            SourceFile {
                abs: sem_dir().join(name).join(disk),
                rel: rel.clone(),
                crate_name: name.to_string(),
                kind: classify(&rel),
            }
        })
        .collect()
}

/// Build the workspace model for a fixture crate and run S101–S104.
fn sem_findings(name: &str, layout: &[(&str, &str)]) -> Vec<Finding> {
    let files = sem_files(name, layout);
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    check_workspace(&WorkspaceModel::build(&files, &sources))
}

const TWO_FILE: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("deep.rs", "src/deep.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];

const KERNEL: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("math.rs", "src/math.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];

const ONE_FILE: &[(&str, &str)] =
    &[("lib.rs", "src/lib.rs"), ("use_api.rs", "tests/use_api.rs")];

// ---------------------------------------------------------------------
// S101: panic reachability with the exact pub→panic call chain.

#[test]
fn s101_bad_reports_chain_from_pub_entry() {
    let f = sem_findings("s101_bad", TWO_FILE);
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S101");
    assert_eq!(v.path, "crates/s101_bad/src/deep.rs");
    assert_eq!(v.line, 4);
    assert_eq!(
        v.message,
        "`.expect()` is reachable from pub `s101_bad::entry` (1 call away); \
         propagate Result/Option or allowlist with the guarding invariant"
    );
    assert_eq!(
        v.trace,
        vec![
            "s101_bad::entry calls s101_bad::deep::pick at crates/s101_bad/src/lib.rs:6"
                .to_string(),
            "s101_bad::deep::pick panics via `.expect()` at crates/s101_bad/src/deep.rs:4"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s101_good_is_clean() {
    let f = sem_findings("s101_good", TWO_FILE);
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S102: float reductions reachable from a par:: closure.

#[test]
fn s102_bad_reports_kernel_behind_par_entry() {
    let f = sem_findings("s102_bad", KERNEL);
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S102");
    assert_eq!(v.path, "crates/s102_bad/src/math.rs");
    assert_eq!(v.line, 6);
    assert_eq!(
        v.message,
        "float reduction `+=` runs under the parallel entry `par::map_slice`; \
         keep reductions off the par boundary or allowlist the kernel with \
         its ordering argument"
    );
    assert_eq!(
        v.trace,
        vec![
            "parallel entry `par::map_slice` at crates/s102_bad/src/lib.rs:6".to_string(),
            "closure calls s102_bad::math::dot".to_string(),
            "s102_bad::math::dot reduces floats via `+=` at crates/s102_bad/src/math.rs:6"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s102_good_serial_reduction_is_clean() {
    // `total` reduces floats, but no par:: entry reaches it.
    let f = sem_findings("s102_good", KERNEL);
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S103: captures crossing the par boundary.

#[test]
fn s103_bad_reports_mut_and_rng_captures() {
    let f = sem_findings("s103_bad", ONE_FILE);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|v| v.rule == "S103"));
    assert!(f.iter().all(|v| v.path == "crates/s103_bad/src/lib.rs"));
    assert_eq!((f[0].line, f[1].line), (12, 13), "{f:#?}");
    assert!(
        f[0].message.starts_with(
            "`&mut total` is captured by a closure crossing the `par::map_indexed` boundary"
        ),
        "{}",
        f[0].message
    );
    assert!(
        f[1].message.starts_with(
            "RNG handle `rng` is captured by a closure crossing the `par::map_indexed` boundary"
        ),
        "{}",
        f[1].message
    );
    assert_eq!(
        f[0].trace,
        vec![
            "parallel entry `par::map_indexed` at crates/s103_bad/src/lib.rs:11".to_string(),
            "`&mut total` captured at crates/s103_bad/src/lib.rs:12".to_string(),
        ],
        "{f:#?}"
    );
}

#[test]
fn s103_good_closure_locals_are_clean() {
    // `&mut acc` targets a closure-local binding — not a capture.
    let f = sem_findings("s103_good", ONE_FILE);
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S104: dead exports, and usage from a test file reviving them.

#[test]
fn s104_bad_reports_dead_struct_and_fn() {
    let f = sem_findings("s104_bad", &[("lib.rs", "src/lib.rs")]);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|v| v.rule == "S104"));
    assert_eq!((f[0].line, f[1].line), (5, 8), "{f:#?}");
    assert!(
        f[0].message.starts_with("pub struct `Orphan` is not named by any bin, test"),
        "{}",
        f[0].message
    );
    assert!(
        f[1].message
            .starts_with("pub fn `s104_bad::orphan_rate` is not named by any bin, test"),
        "{}",
        f[1].message
    );
    assert_eq!(
        f[1].trace,
        vec![
            "`s104_bad::orphan_rate` is exported at crates/s104_bad/src/lib.rs:8 but \
             only its own crate's library code ever names it"
                .to_string()
        ],
        "{f:#?}"
    );
}

#[test]
fn s104_good_test_usage_keeps_exports_alive() {
    let f = sem_findings(
        "s104_good",
        &[("lib.rs", "src/lib.rs"), ("api.rs", "tests/api.rs")],
    );
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S106: unbounded channel constructors outside the sanctioned queue
// module.

#[test]
fn s106_bad_reports_unbounded_constructors() {
    // Two constructor calls (plain and turbofish) are flagged; the bare
    // `unbounded` parameter name and the `#[cfg(test)]` use are not.
    let f = sem_findings("s106_bad", ONE_FILE);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|v| v.rule == "S106"));
    assert!(f.iter().all(|v| v.path == "crates/s106_bad/src/lib.rs"));
    assert_eq!((f[0].line, f[1].line), (7, 17), "{f:#?}");
    assert!(
        f[0].message
            .starts_with("unbounded channel constructor `unbounded`;"),
        "{}",
        f[0].message
    );
    assert!(
        f[1].message
            .starts_with("unbounded channel constructor `unbounded_channel`;"),
        "{}",
        f[1].message
    );
    assert_eq!(
        f[0].trace,
        vec![
            "`unbounded` constructs a channel with no capacity bound at \
             crates/s106_bad/src/lib.rs:7, outside the sanctioned \
             crates/sybil-serve/src/queue.rs"
                .to_string()
        ],
        "{f:#?}"
    );
}

#[test]
fn s106_good_queue_module_is_exempt() {
    // The same constructor inside sybil-serve's queue module — the one
    // reviewed staging surface — raises nothing.
    let dir = sem_dir().join("s106_good");
    let layout = [
        ("queue.rs", "crates/sybil-serve/src/queue.rs"),
        ("use_api.rs", "crates/sybil-serve/tests/use_api.rs"),
    ];
    let files: Vec<SourceFile> = layout
        .iter()
        .map(|(disk, rel)| SourceFile {
            abs: dir.join(disk),
            rel: rel.to_string(),
            crate_name: "sybil-serve".to_string(),
            kind: classify(rel),
        })
        .collect();
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    let f = check_workspace(&WorkspaceModel::build(&files, &sources));
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S107: stringly-typed error APIs and library-side process exits.

#[test]
fn s107_bad_reports_string_error_and_library_exit() {
    // `parse_level` returns Result<_, String> and `load_or_die` settles
    // an error with process::exit; the private helper, the Ok-side
    // String, and the #[cfg(test)] fn are all clean.
    let f = sem_findings("s107_bad", ONE_FILE);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|v| v.rule == "S107"));
    assert!(f.iter().all(|v| v.path == "crates/s107_bad/src/lib.rs"));
    assert_eq!((f[0].line, f[1].line), (6, 26), "{f:#?}");
    assert_eq!(
        f[0].message,
        "pub fn `parse_level` returns Result<_, String>; a string error \
         cannot be matched on and carries no source — return a typed \
         error (see sybil_core::Error) and keep prose in Display"
    );
    assert_eq!(
        f[0].trace,
        vec![
            "`parse_level` declares a stringly-typed error at \
             crates/s107_bad/src/lib.rs:6; callers can only string-match or rewrap it"
                .to_string()
        ],
        "{f:#?}"
    );
    assert_eq!(
        f[1].message,
        "library code exits the process inside `unwrap_or_else`; \
         return the error and let the binary choose the exit code"
    );
    assert_eq!(
        f[1].trace,
        vec![
            "`unwrap_or_else` at crates/s107_bad/src/lib.rs:26 reaches \
             `process::exit`, killing the process from library code no caller \
             can intercept"
                .to_string()
        ],
        "{f:#?}"
    );
}

#[test]
fn s107_good_typed_errors_are_clean() {
    // Typed errors, pub(crate) internals, and a value fallback inside
    // unwrap_or_else raise nothing.
    let f = sem_findings("s107_good", ONE_FILE);
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// S108: hash containers keyed by account/packed-edge ids inside the
// three scale-critical modules.

/// Fixture files mapped onto explicit workspace-relative paths (S108 is
/// scoped by crate and path, so the synthetic `crates/<name>/…` layout
/// of [`sem_files`] does not apply).
fn s108_findings(name: &str, layout: &[(&str, &str)]) -> Vec<Finding> {
    let dir = sem_dir().join(name);
    let files: Vec<SourceFile> = layout
        .iter()
        .map(|(disk, rel)| SourceFile {
            abs: dir.join(disk),
            rel: rel.to_string(),
            crate_name: "sybil-serve".to_string(),
            kind: classify(rel),
        })
        .collect();
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    check_workspace(&WorkspaceModel::build(&files, &sources))
}

#[test]
fn s108_bad_reports_id_keyed_containers() {
    // A HashSet<u64> field, a HashMap<u32, …> field, and a turbofish
    // tuple-keyed HashMap::<(u32, u32), …> are flagged; the String-keyed
    // map and the #[cfg(test)] scratch map are not.
    let f = s108_findings(
        "s108_bad",
        &[
            ("mirror.rs", "crates/sybil-serve/src/mirror.rs"),
            ("use_api.rs", "crates/sybil-serve/tests/use_api.rs"),
        ],
    );
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|v| v.rule == "S108"));
    assert!(f.iter().all(|v| v.path == "crates/sybil-serve/src/mirror.rs"));
    assert_eq!((f[0].line, f[1].line, f[2].line), (7, 8, 13), "{f:#?}");
    assert_eq!(
        f[0].message,
        "HashSet keyed by `u64` in a scale-critical module; use the flat \
         layouts (CSR row probes, the FlatDelta arena, sorted arrays) or \
         allowlist with the proven size bound"
    );
    assert!(
        f[1].message.starts_with("HashMap keyed by `u32`"),
        "{}",
        f[1].message
    );
    assert!(
        f[2].message.starts_with("HashMap keyed by `u32`"),
        "tuple keys report their first element: {}",
        f[2].message
    );
    assert_eq!(
        f[0].trace,
        vec![
            "`HashSet` keyed by `u64` at crates/sybil-serve/src/mirror.rs:7 \
             sits on the million-account hot path; this module's layout \
             contract is flat id-indexed arenas, not hash tables"
                .to_string()
        ],
        "{f:#?}"
    );
}

#[test]
fn s108_good_flat_layouts_and_other_modules_are_clean() {
    // The designated module uses flat layouts (bare import and inferred
    // `new()` name no key type); the id-keyed map lives in a
    // non-designated module of the same crate and raises nothing.
    let f = s108_findings(
        "s108_good",
        &[
            ("mirror.rs", "crates/sybil-serve/src/mirror.rs"),
            ("other.rs", "crates/sybil-serve/src/report.rs"),
            ("use_api.rs", "crates/sybil-serve/tests/use_api.rs"),
        ],
    );
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// Rule registry: the S-codes are first-class for allowlist validation.

#[test]
fn s_codes_are_known_rules() {
    for code in
        ["S101", "S102", "S103", "S104", "S105", "S106", "S107", "S108", "D001", "D006"]
    {
        assert!(sybil_lint::rules::is_known_rule(code), "{code}");
    }
    assert!(!sybil_lint::rules::is_known_rule("S999"));
    assert!(!sybil_lint::rules::is_known_rule("D999"));
}

// ---------------------------------------------------------------------
// Call chains survive both renderings verbatim.

#[test]
fn chains_render_in_human_and_json_output() {
    let files = sem_files("s101_bad", TWO_FILE);
    let rep = run_workspace(&files, &allowlist::Allowlist::default()).unwrap();
    let human = render_human(&rep);
    assert!(human.contains("error[S101]"), "{human}");
    assert!(human.contains("--> crates/s101_bad/src/deep.rs:4:"), "{human}");
    assert!(
        human.contains(
            "   = note: s101_bad::entry calls s101_bad::deep::pick at \
             crates/s101_bad/src/lib.rs:6"
        ),
        "{human}"
    );
    assert!(
        human.contains(
            "   = note: s101_bad::deep::pick panics via `.expect()` at \
             crates/s101_bad/src/deep.rs:4"
        ),
        "{human}"
    );
    let json = render_json(&rep);
    assert!(json.contains("\"rule\": \"S101\""), "{json}");
    assert!(
        json.contains(
            "\"trace\": [\"s101_bad::entry calls s101_bad::deep::pick at \
             crates/s101_bad/src/lib.rs:6\", \"s101_bad::deep::pick panics via \
             `.expect()` at crates/s101_bad/src/deep.rs:4\"]"
        ),
        "{json}"
    );
}

// ---------------------------------------------------------------------
// S105 staleness and the --fix-allowlist rewrite, end to end.

#[test]
fn s105_flags_stale_entries_and_fix_allowlist_removes_them() {
    let toml = "\
# reviewed: empty input is rejected at the CLI boundary
[[allow]]
rule = \"S101\"
path = \"crates/s101_bad/src/deep.rs\"
justification = \"callers validate non-empty input at the boundary\"

# this one matches nothing and must be flagged at its [[allow]] line
[[allow]]
rule = \"S102\"
path = \"crates/s101_bad/src/never.rs\"
justification = \"stale entry kept around to test staleness\"
";
    let allow = allowlist::parse(toml).unwrap();
    let files = sem_files("s101_bad", TWO_FILE);
    let rep = run_workspace(&files, &allow).unwrap();

    // The matching entry absorbed the S101 finding.
    assert!(rep.violations.iter().all(|v| v.rule != "S101"), "{rep:#?}");
    assert!(rep.allowed.iter().any(|(v, _)| v.rule == "S101"));

    // The stale entry surfaced as an S105 error anchored in lint.toml.
    let s105: Vec<&Finding> = rep.violations.iter().filter(|v| v.rule == "S105").collect();
    assert_eq!(s105.len(), 1, "{rep:#?}");
    assert_eq!(s105[0].path, "lint.toml");
    assert_eq!(s105[0].line, 8, "anchored at the stale [[allow]] header");
    assert!(
        s105[0].message.contains("matched nothing this run"),
        "{}",
        s105[0].message
    );

    // remove_stale drops the stale block (and its comment); the surviving
    // entry still parses and still matches.
    let rewritten = allowlist::remove_stale(toml, &rep.unused_allowlist);
    assert!(!rewritten.contains("never.rs"), "{rewritten}");
    assert!(rewritten.contains("deep.rs"), "{rewritten}");
    let reparsed = allowlist::parse(&rewritten).unwrap();
    assert_eq!(reparsed.entries.len(), 1);
    let rep2 = run_workspace(&files, &reparsed).unwrap();
    assert!(rep2.violations.iter().all(|v| v.rule != "S105"), "{rep2:#?}");

    // Round trip: with nothing stale, the rewrite is byte-identical.
    assert_eq!(allowlist::remove_stale(&rewritten, &rep2.unused_allowlist), rewritten);
}
