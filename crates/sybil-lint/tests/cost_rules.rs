//! Cost-rule fixture tests (S113–S117): every fixture asserts the exact
//! propagation chain its finding carries — including an allocation
//! reached through a trait-object edge, the drain-balanced negative
//! case, and an allowlisted scratch buffer — plus the cost-fixpoint
//! order-independence proptest, mirroring `eff_rules.rs`.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use sybil_lint::costs::{fixpoint, HotPathConfig};
use sybil_lint::effects::EffectConfig;
use sybil_lint::report::Finding;
use sybil_lint::rules_sem::check_workspace_with;
use sybil_lint::workspace::{classify, run_workspace, SourceFile};
use sybil_lint::{allowlist, WorkspaceModel};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Source files of one fixture crate: `(fixture file, workspace-relative
/// suffix)` pairs mapped into a synthetic `crates/<name>/…` layout.
fn cost_files(name: &str, layout: &[(&str, &str)]) -> Vec<SourceFile> {
    layout
        .iter()
        .map(|(disk, rel_suffix)| {
            let rel = format!("crates/{name}/{rel_suffix}");
            SourceFile {
                abs: fixture_dir().join(name).join(disk),
                rel: rel.clone(),
                crate_name: name.to_string(),
                kind: classify(&rel),
            }
        })
        .collect()
}

fn cost_model(name: &str, layout: &[(&str, &str)]) -> WorkspaceModel {
    let files = cost_files(name, layout);
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs).expect("fixture exists"))
        .collect();
    WorkspaceModel::build(&files, &sources)
}

fn hot(roots: &[&str]) -> HotPathConfig {
    HotPathConfig {
        per_event_roots: roots.iter().map(|s| s.to_string()).collect(),
    }
}

/// Run every semantic rule over a fixture with the given hot-path roots.
fn cost_findings(name: &str, layout: &[(&str, &str)], cfg: &HotPathConfig) -> Vec<Finding> {
    check_workspace_with(&cost_model(name, layout), &EffectConfig::default(), cfg)
}

const ONE: &[(&str, &str)] = &[("lib.rs", "src/lib.rs"), ("use_api.rs", "tests/use_api.rs")];
const ALLOC: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("scan.rs", "src/scan.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];
const GROWTH: &[(&str, &str)] = &[
    ("lib.rs", "src/lib.rs"),
    ("journal.rs", "src/journal.rs"),
    ("use_api.rs", "tests/use_api.rs"),
];

// ---------------------------------------------------------------------
// S113: allocation in the loop context, two calls below the root — the
// allocating function has no loop of its own.

#[test]
fn s113_alloc_reports_two_edge_chain() {
    let f = cost_findings("cost_alloc_bad", ALLOC, &hot(&["cost_alloc_bad::serve"]));
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S113");
    assert_eq!(v.path, "crates/cost_alloc_bad/src/scan.rs");
    assert_eq!(v.line, 6);
    assert_eq!(
        v.message,
        "`Vec::new` (allocation) runs per event inside the hot loop under \
         hot-path root `cost_alloc_bad::serve` (2 calls away); hoist it \
         into a recycled scratch buffer owned by the caller, or allowlist \
         with the amortization invariant"
    );
    assert_eq!(
        v.trace,
        vec![
            "cost_alloc_bad::serve calls cost_alloc_bad::scan::step at \
             crates/cost_alloc_bad/src/lib.rs:13"
                .to_string(),
            "cost_alloc_bad::scan::step calls cost_alloc_bad::scan::row at \
             crates/cost_alloc_bad/src/scan.rs:2"
                .to_string(),
            "cost_alloc_bad::scan::row allocates via `Vec::new` at \
             crates/cost_alloc_bad/src/scan.rs:6"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s113_silent_without_root_config() {
    let f = cost_findings("cost_alloc_bad", ALLOC, &HotPathConfig::default());
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn s113_alloc_through_trait_object_edge() {
    let f = cost_findings(
        "cost_alloc_trait",
        ONE,
        &hot(&["cost_alloc_trait::serve"]),
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S113");
    assert_eq!(v.path, "crates/cost_alloc_trait/src/lib.rs");
    assert_eq!(v.line, 15);
    assert_eq!(
        v.message,
        "`vec![…]` (allocation) runs per event inside the hot loop under \
         hot-path root `cost_alloc_trait::serve` (1 call away); hoist it \
         into a recycled scratch buffer owned by the caller, or allowlist \
         with the amortization invariant"
    );
    assert_eq!(
        v.trace,
        vec![
            "cost_alloc_trait::serve calls cost_alloc_trait::Dense::extract at \
             crates/cost_alloc_trait/src/lib.rs:22"
                .to_string(),
            "cost_alloc_trait::Dense::extract allocates via `vec![…]` at \
             crates/cost_alloc_trait/src/lib.rs:15"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// S114: growth with no drain on the same receiver, reached through a
// method edge from the root's loop.

#[test]
fn s114_growth_reports_chain() {
    let f = cost_findings("cost_growth_bad", GROWTH, &hot(&["cost_growth_bad::serve"]));
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S114");
    assert_eq!(v.path, "crates/cost_growth_bad/src/journal.rs");
    assert_eq!(v.line, 9);
    assert_eq!(
        v.message,
        "`entries.push(…)` (monotonic collection growth) runs per event \
         inside the hot loop under hot-path root `cost_growth_bad::serve` \
         (1 call away); drain the collection at the epoch barrier or \
         allowlist with the occupancy bound that caps it"
    );
    assert_eq!(
        v.trace,
        vec![
            "cost_growth_bad::serve calls cost_growth_bad::journal::Journal::record at \
             crates/cost_growth_bad/src/lib.rs:11"
                .to_string(),
            "cost_growth_bad::journal::Journal::record grows a collection via \
             `entries.push(…)` at crates/cost_growth_bad/src/journal.rs:9"
                .to_string(),
        ],
        "{v:#?}"
    );
}

#[test]
fn s114_drained_scratch_is_silent() {
    // push balanced by clear on the same receiver in the same function,
    // and the constructor sits outside the loop: no S113, no S114.
    let f = cost_findings(
        "cost_growth_drain",
        ONE,
        &hot(&["cost_growth_drain::serve"]),
    );
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------------------
// Allowlisted scratch: the S113 hit is suppressed by an entry whose
// justification spells out the amortization invariant.

#[test]
fn s113_allowlisted_scratch_is_suppressed_with_justification() {
    let toml = r#"
[hotpaths.roots]
per_event = [
    "cost_scratch_allow::serve",
]

[[allow]]
rule = "S113"
path = "crates/cost_scratch_allow/src/lib.rs"
justification = "fixture: one-element row, freed before the next iteration; peak heap is one u32"
"#;
    let allow = allowlist::parse(toml).expect("valid toml");
    assert_eq!(
        allow.hotpaths.per_event_roots,
        vec!["cost_scratch_allow::serve".to_string()]
    );
    let rep = run_workspace(&cost_files("cost_scratch_allow", ONE), &allow).unwrap();
    assert!(rep.is_clean(), "{:#?}", rep.violations);
    assert_eq!(rep.allowed.len(), 1, "{:#?}", rep.allowed);
    let (s113, just) = &rep.allowed[0];
    assert_eq!(s113.rule, "S113");
    assert_eq!(s113.path, "crates/cost_scratch_allow/src/lib.rs");
    assert!(just.contains("peak heap is one u32"));
    assert!(rep.unused_allowlist.is_empty());
}

// ---------------------------------------------------------------------
// S115: truncating casts anywhere in the hot set; widening casts on the
// surrounding lines never fire.

#[test]
fn s115_truncating_cast_flagged_widening_silent() {
    let f = cost_findings("cost_cast_bad", ONE, &hot(&["cost_cast_bad::serve"]));
    assert_eq!(f.len(), 1, "{f:#?}");
    let v = &f[0];
    assert_eq!(v.rule, "S115");
    assert_eq!(v.path, "crates/cost_cast_bad/src/lib.rs");
    assert_eq!(v.line, 10, "only the `as u32` line fires, not as usize/u64");
    assert_eq!(
        v.message,
        "`as u32` (truncating cast) is reachable from hot-path root \
         `cost_cast_bad::serve` (in its own body); convert with try_into \
         and a typed Error::IdOverflow, or allowlist with the range \
         invariant that rules out overflow"
    );
    assert_eq!(
        v.trace,
        vec![
            "cost_cast_bad::serve truncates via `as u32` at \
             crates/cost_cast_bad/src/lib.rs:10"
                .to_string(),
        ],
        "{v:#?}"
    );
}

// ---------------------------------------------------------------------
// S116 + S117: blocking in the root's own loop, recursion one call below.

#[test]
fn s116_blocking_and_s117_recursion_report_together() {
    let f = cost_findings("cost_block_rec", ONE, &hot(&["cost_block_rec::serve"]));
    assert_eq!(f.len(), 2, "{f:#?}");
    let block = &f[0];
    assert_eq!(block.rule, "S116");
    assert_eq!(block.path, "crates/cost_block_rec/src/lib.rs");
    assert_eq!(block.line, 12);
    assert_eq!(
        block.message,
        "`.lock()` (blocking acquisition) runs per event inside the hot \
         loop under hot-path root `cost_block_rec::serve` (in its own \
         body); stage the data before the loop or allowlist with the wait \
         bound"
    );
    assert_eq!(
        block.trace,
        vec![
            "cost_block_rec::serve blocks via `.lock()` at \
             crates/cost_block_rec/src/lib.rs:12"
                .to_string(),
        ],
        "{block:#?}"
    );
    let rec = &f[1];
    assert_eq!(rec.rule, "S117");
    assert_eq!(rec.path, "crates/cost_block_rec/src/lib.rs");
    assert_eq!(rec.line, 24);
    assert_eq!(
        rec.message,
        "`recursive cycle through `cost_block_rec::depth`` (recursion) is \
         reachable from hot-path root `cost_block_rec::serve` (1 call \
         away); bound the depth or rewrite iteratively; the hot path needs \
         statically bounded stack and work"
    );
    assert_eq!(
        rec.trace,
        vec![
            "cost_block_rec::serve calls cost_block_rec::depth at \
             crates/cost_block_rec/src/lib.rs:15"
                .to_string(),
            "cost_block_rec::depth recurses via `recursive cycle through \
             `cost_block_rec::depth`` at crates/cost_block_rec/src/lib.rs:24"
                .to_string(),
        ],
        "{rec:#?}"
    );
}

// ---------------------------------------------------------------------
// Fixpoint order independence: the cost lattice joins by set union, so
// every visit order reaches the same least fixpoint. Pinned at the
// `costs::fixpoint` boundary (which delegates to the effect engine).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cost_fixpoint_is_visit_order_independent(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..32),
        intr in proptest::collection::vec(0u16..=31, 8),
        keys1 in proptest::collection::vec(0u32..1000, 8),
        keys2 in proptest::collection::vec(0u32..1000, 8),
    ) {
        // Random sort keys induce arbitrary visit-order permutations.
        let perm = |keys: &[u32]| {
            let mut order: Vec<usize> = (0..8).collect();
            order.sort_by_key(|&i| (keys[i], i));
            order
        };
        let (order1, order2) = (perm(&keys1), perm(&keys2));
        let mut out = vec![Vec::new(); 8];
        for &(a, b) in &edges {
            out[a].push(b);
        }
        let a = fixpoint(&out, &intr, &order1);
        let b = fixpoint(&out, &intr, &order2);
        prop_assert_eq!(&a, &b);
        // The fixpoint is sound: every function includes its own
        // intrinsic costs and each callee's final set.
        for f in 0..8 {
            prop_assert_eq!(a[f] & intr[f], intr[f]);
            for &g in &out[f] {
                prop_assert_eq!(a[f] & a[g], a[g]);
            }
        }
    }
}
