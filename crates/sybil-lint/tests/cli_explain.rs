//! CLI contract for `--explain`: a known code prints the rationale and
//! exits 0; an unknown code exits 2 with the known-code list on stderr.

use std::process::Command;

fn lint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sybil-lint"))
}

#[test]
fn explain_known_code_exits_zero_with_rationale() {
    let out = lint_cmd()
        .args(["--explain", "S113"])
        .output()
        .expect("spawn sybil-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("S113"), "{stdout}");
    assert!(stdout.contains("hot loop"), "{stdout}");
}

#[test]
fn explain_unknown_code_exits_two_with_known_list_on_stderr() {
    let out = lint_cmd()
        .args(["--explain", "S999"])
        .output()
        .expect("spawn sybil-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stdout.is_empty(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule \"S999\""), "{stderr}");
    // The known-code list covers both rule families, through the newest.
    for code in ["D001", "D006", "S101", "S113", "S119"] {
        assert!(stderr.contains(code), "missing {code} in: {stderr}");
    }
}

#[test]
fn explain_s118_names_the_fault_plane_contract() {
    let out = lint_cmd()
        .args(["--explain", "S118"])
        .output()
        .expect("spawn sybil-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FaultPlane"), "{stdout}");
    assert!(stdout.contains("fault_plane"), "{stdout}");
    assert!(stdout.contains("no-op"), "{stdout}");
}

#[test]
fn explain_s119_names_the_format_module_contract() {
    let out = lint_cmd()
        .args(["--explain", "S119"])
        .output()
        .expect("spawn sybil-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("format.rs"), "{stdout}");
    assert!(stdout.contains("SYBS"), "{stdout}");
    assert!(stdout.contains("unversioned"), "{stdout}");
}

#[test]
fn explain_is_case_insensitive() {
    let out = lint_cmd()
        .args(["--explain", "s115"])
        .output()
        .expect("spawn sybil-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("try_into"), "{stdout}");
}
