//! Fixture-corpus tests: every rule code is exercised against a good and
//! a bad snippet, asserting exact rule codes, file, and line in both the
//! human and `--format json` renderings.

use std::path::{Path, PathBuf};
use sybil_lint::allowlist;
use sybil_lint::report::{render_human, render_json, Report};
use sybil_lint::workspace::{run, SourceFile};
use sybil_lint::{check_file, FileCtx, FileKind, Finding};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint one fixture file as library code of a fictitious crate.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let rel = format!("fixtures/{name}");
    let src = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    check_file(&FileCtx {
        rel_path: &rel,
        crate_name: "fixture",
        kind: FileKind::Lib,
        src: &src,
    })
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d001_bad_flags_exact_lines() {
    let f = lint_fixture("d001_bad.rs");
    assert_eq!(lines_of(&f, "D001"), vec![8, 12, 16], "{f:#?}");
    assert!(f.iter().all(|f| f.rule == "D001"), "only D001 expected: {f:#?}");
    assert!(f.iter().all(|f| f.path == "fixtures/d001_bad.rs"));
}

#[test]
fn d001_good_is_clean() {
    let f = lint_fixture("d001_good.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn d002_bad_flags_exact_lines() {
    let f = lint_fixture("d002_bad.rs");
    assert_eq!(lines_of(&f, "D002"), vec![5, 10], "{f:#?}");
}

#[test]
fn d002_good_is_clean() {
    assert!(lint_fixture("d002_good.rs").is_empty());
}

#[test]
fn d002_exempts_bench_crate_and_repro_cli() {
    let src = std::fs::read_to_string(fixture_dir().join("d002_bad.rs")).unwrap();
    let bench = check_file(&FileCtx {
        rel_path: "crates/bench/src/lib.rs",
        crate_name: "sybil-bench",
        kind: FileKind::Lib,
        src: &src,
    });
    assert!(bench.iter().all(|f| f.rule != "D002"), "{bench:#?}");
    let repro = check_file(&FileCtx {
        rel_path: "crates/repro/src/bin/repro.rs",
        crate_name: "sybil-repro",
        kind: FileKind::Bin,
        src: &src,
    });
    assert!(repro.iter().all(|f| f.rule != "D002"), "{repro:#?}");
}

#[test]
fn d003_bad_flags_exact_lines() {
    let f = lint_fixture("d003_bad.rs");
    assert_eq!(lines_of(&f, "D003"), vec![5, 10, 13], "{f:#?}");
}

#[test]
fn d003_good_is_clean() {
    assert!(lint_fixture("d003_good.rs").is_empty());
}

#[test]
fn d003_exempts_par_module() {
    let src = std::fs::read_to_string(fixture_dir().join("d003_bad.rs")).unwrap();
    let f = check_file(&FileCtx {
        rel_path: "crates/osn-graph/src/par.rs",
        crate_name: "osn-graph",
        kind: FileKind::Lib,
        src: &src,
    });
    assert!(f.iter().all(|f| f.rule != "D003"), "{f:#?}");
}

#[test]
fn d004_bad_flags_exact_lines_and_skips_tests() {
    let f = lint_fixture("d004_bad.rs");
    assert_eq!(lines_of(&f, "D004"), vec![5, 9, 13], "{f:#?}");
}

#[test]
fn d004_good_is_clean() {
    assert!(lint_fixture("d004_good.rs").is_empty());
}

#[test]
fn d004_does_not_apply_to_binaries() {
    let src = std::fs::read_to_string(fixture_dir().join("d004_bad.rs")).unwrap();
    let f = check_file(&FileCtx {
        rel_path: "crates/x/src/bin/tool.rs",
        crate_name: "x",
        kind: FileKind::Bin,
        src: &src,
    });
    assert!(f.iter().all(|f| f.rule != "D004"), "{f:#?}");
}

#[test]
fn d005_missing_vs_present() {
    for (dir, expect) in [("d005_missing", 1usize), ("d005_present", 0usize)] {
        let rel = format!("fixtures/{dir}/src/lib.rs");
        let src =
            std::fs::read_to_string(fixture_dir().join(dir).join("src/lib.rs")).unwrap();
        let f = check_file(&FileCtx {
            rel_path: &rel,
            crate_name: dir,
            kind: FileKind::Lib,
            src: &src,
        });
        let d005: Vec<_> = f.iter().filter(|f| f.rule == "D005").collect();
        assert_eq!(d005.len(), expect, "{dir}: {f:#?}");
        if expect == 1 {
            assert_eq!(d005[0].line, 1);
            assert_eq!(d005[0].path, rel);
        }
    }
}

#[test]
fn d006_bad_flags_exact_lines() {
    let f = lint_fixture("d006_bad.rs");
    assert_eq!(lines_of(&f, "D006"), vec![5, 10, 15], "{f:#?}");
}

#[test]
fn d006_good_is_clean() {
    assert!(lint_fixture("d006_good.rs").is_empty());
}

// ---------------------------------------------------------------------
// Output formats: exact rule/file/line in human and JSON renderings.

fn report_for(name: &str) -> Report {
    let files = vec![SourceFile {
        abs: fixture_dir().join(name),
        rel: format!("fixtures/{name}"),
        crate_name: "fixture".into(),
        kind: FileKind::Lib,
    }];
    run(&files, &allowlist::Allowlist::default()).unwrap()
}

#[test]
fn human_output_has_rule_file_line() {
    let rep = report_for("d001_bad.rs");
    let human = render_human(&rep);
    assert!(human.contains("error[D001]"), "{human}");
    assert!(human.contains("--> fixtures/d001_bad.rs:8:"), "{human}");
    assert!(human.contains("--> fixtures/d001_bad.rs:12:"), "{human}");
    assert!(human.contains("--> fixtures/d001_bad.rs:16:"), "{human}");
    assert!(human.contains("3 violations"), "{human}");
}

#[test]
fn json_output_has_rule_file_line() {
    let rep = report_for("d002_bad.rs");
    let json = render_json(&rep);
    assert!(json.contains("\"rule\": \"D002\""), "{json}");
    assert!(json.contains("\"path\": \"fixtures/d002_bad.rs\""), "{json}");
    assert!(json.contains("\"line\": 5"), "{json}");
    assert!(json.contains("\"line\": 10"), "{json}");
    assert!(json.contains("\"clean\": false"), "{json}");
}

// ---------------------------------------------------------------------
// Allowlist behavior end-to-end.

#[test]
fn allowlist_moves_findings_to_allowed_and_reports_unused() {
    let toml = r#"
[[allow]]
rule = "D002"
path = "fixtures/d002_bad.rs"
justification = "fixture: timing lines reviewed for this test"

[[allow]]
rule = "D001"
path = "fixtures/never_matches.rs"
justification = "stale entry that matches nothing at all"
"#;
    let allow = allowlist::parse(toml).unwrap();
    let files = vec![SourceFile {
        abs: fixture_dir().join("d002_bad.rs"),
        rel: "fixtures/d002_bad.rs".into(),
        crate_name: "fixture".into(),
        kind: FileKind::Lib,
    }];
    let rep = run(&files, &allow).unwrap();
    assert!(rep.is_clean(), "{rep:#?}");
    assert_eq!(rep.allowed.len(), 2);
    assert_eq!(rep.unused_allowlist.len(), 1);
    assert_eq!(rep.unused_allowlist[0].path, "fixtures/never_matches.rs");
    let json = render_json(&rep);
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("never_matches.rs"), "{json}");
}

// ---------------------------------------------------------------------
// The acceptance gate: the real workspace is clean under lint.toml —
// token rules AND the semantic S-series, including S105 staleness — and
// the fixtures directory is never swept into a workspace scan.

#[test]
fn real_workspace_is_clean() {
    let root = sybil_lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = sybil_lint::workspace::discover(&root).unwrap();
    assert!(files.iter().all(|f| !f.rel.contains("/fixtures/")));
    let allow = allowlist::parse(
        &std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists"),
    )
    .expect("lint.toml parses");
    let rep = sybil_lint::workspace::run_workspace(&files, &allow).unwrap();
    assert!(
        rep.is_clean(),
        "workspace must lint clean:\n{}",
        render_human(&rep)
    );
    assert!(
        rep.unused_allowlist.is_empty(),
        "stale lint.toml entries: {:#?}",
        rep.unused_allowlist
    );
}
