//! Lint findings and the two output formats (human, `--format json`).
//!
//! JSON is emitted by hand (stable key order, zero dependencies) so the
//! machine-readable contract is fully controlled by this module: an
//! object with `violations`, `allowed`, and `unused_allowlist_entries`
//! arrays, each finding carrying `rule`, `path`, `line`, `col`,
//! `message`, `snippet`, and (for the semantic S-series) a `trace` array
//! holding the call chain that explains the finding, one edge per entry.

use crate::allowlist::AllowEntry;

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D001`…`D006`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
    /// Call-chain explanation (semantic rules only; empty for D-rules).
    /// Each entry is one step, e.g. `a::entry calls a::helper at src/lib.rs:3`.
    pub trace: Vec<String>,
}

/// A full lint run: partitioned findings plus scan metadata.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist — these fail the build.
    pub violations: Vec<Finding>,
    /// Findings covered by an allowlist entry (justification attached).
    pub allowed: Vec<(Finding, String)>,
    /// Allowlist entries that matched nothing — stale, should be pruned.
    pub unused_allowlist: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Exit status the CLI should use: nonzero iff unallowlisted
    /// violations exist.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render the report for terminals. One line per finding plus the
/// source snippet, rustc-style.
pub fn render_human(r: &Report) -> String {
    let mut s = String::new();
    for f in &r.violations {
        s.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}:{}\n   | {}\n",
            f.rule, f.message, f.path, f.line, f.col, f.snippet
        ));
        for step in &f.trace {
            s.push_str(&format!("   = note: {step}\n"));
        }
    }
    for (f, why) in &r.allowed {
        s.push_str(&format!(
            "allowed[{}]: {}:{}:{} ({})\n",
            f.rule, f.path, f.line, f.col, why
        ));
    }
    for e in &r.unused_allowlist {
        s.push_str(&format!(
            "warning: unused allowlist entry rule={} path={} — prune it from lint.toml\n",
            e.rule, e.path
        ));
    }
    s.push_str(&format!(
        "sybil-lint: {} violation{}, {} allowed, {} files scanned\n",
        r.violations.len(),
        if r.violations.len() == 1 { "" } else { "s" },
        r.allowed.len(),
        r.files_scanned
    ));
    s
}

/// Render the report as a single JSON object (stable key order).
pub fn render_json(r: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"tool\": \"sybil-lint\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    s.push_str(&format!("  \"clean\": {},\n", r.is_clean()));
    s.push_str("  \"violations\": [");
    push_findings(&mut s, r.violations.iter().map(|f| (f, None)));
    s.push_str("],\n  \"allowed\": [");
    push_findings(&mut s, r.allowed.iter().map(|(f, j)| (f, Some(j.as_str()))));
    s.push_str("],\n  \"unused_allowlist_entries\": [");
    for (i, e) in r.unused_allowlist.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}}}",
            json_str(&e.rule),
            json_str(&e.path)
        ));
    }
    if !r.unused_allowlist.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn push_findings<'a, I>(s: &mut String, findings: I)
where
    I: Iterator<Item = (&'a Finding, Option<&'a str>)>,
{
    let mut first = true;
    let mut any = false;
    for (f, justification) in findings {
        if !first {
            s.push(',');
        }
        first = false;
        any = true;
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"message\": {}, \"snippet\": {}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.snippet)
        ));
        if !f.trace.is_empty() {
            s.push_str(", \"trace\": [");
            for (i, step) in f.trace.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(step));
            }
            s.push(']');
        }
        if let Some(j) = justification {
            s.push_str(&format!(", \"justification\": {}", json_str(j)));
        }
        s.push('}');
    }
    if any {
        s.push_str("\n  ");
    }
}

/// Escape a string for JSON output. Shared with the SARIF renderer so
/// every machine format escapes identically.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Report {
        Report {
            violations: vec![Finding {
                rule: "D001",
                path: "crates/x/src/a.rs".into(),
                line: 3,
                col: 9,
                message: "unordered iteration".into(),
                snippet: "for (k, v) in &m {".into(),
                trace: vec!["x::f calls x::g at crates/x/src/a.rs:3".into()],
            }],
            allowed: vec![(
                Finding {
                    rule: "D003",
                    path: "crates/y/src/b.rs".into(),
                    line: 7,
                    col: 1,
                    message: "Mutex".into(),
                    snippet: "use std::sync::Mutex;".into(),
                    trace: Vec::new(),
                },
                "memo cache; value-identical under any interleaving".into(),
            )],
            unused_allowlist: vec![],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_output_names_rule_file_line() {
        let s = render_human(&demo());
        assert!(s.contains("error[D001]"), "{s}");
        assert!(s.contains("crates/x/src/a.rs:3:9"), "{s}");
        assert!(s.contains("allowed[D003]"), "{s}");
        assert!(s.contains("1 violation,"), "{s}");
        assert!(s.contains("   = note: x::f calls x::g"), "{s}");
    }

    #[test]
    fn json_output_is_machine_readable() {
        let s = render_json(&demo());
        assert!(s.contains("\"rule\": \"D001\""), "{s}");
        assert!(s.contains("\"line\": 3"), "{s}");
        assert!(s.contains("\"clean\": false"), "{s}");
        assert!(s.contains("\"justification\": \"memo cache"), "{s}");
        assert!(
            s.contains("\"trace\": [\"x::f calls x::g at crates/x/src/a.rs:3\"]"),
            "{s}"
        );
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
