//! A minimal Rust lexer: just enough token structure for pattern-based
//! lint rules, with byte-accurate line/column spans.
//!
//! The lexer understands the parts of Rust's lexical grammar that matter
//! for *not* producing false positives inside non-code text: line and
//! (nested) block comments, string/char literals including raw strings,
//! and lifetimes vs. char literals. Everything else is an identifier,
//! number, or single-character punctuation token. No parsing, no types —
//! rules work on the token stream directly.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integer part only; `1.5` lexes as `1` `.` `5`).
    Num,
    /// String, raw-string, byte-string, or char literal.
    Str,
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct(u8),
}

/// One token with its source span.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first character in the source.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Is this an identifier with exactly this text?
    pub(crate) fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == name
    }

    /// Is this the given punctuation character?
    pub(crate) fn is_punct(&self, ch: u8) -> bool {
        self.kind == TokKind::Punct(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += c.len_utf8() as u32;
        }
        Some(c)
    }

    /// Consume a quoted run terminated by `"` (escapes honored).
    fn eat_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consume a raw-string body: `#...#"..."#...#` with `hashes` hashes.
    fn eat_raw_string_body(&mut self, hashes: usize) {
        // Already past `r##"`-style opener; scan for `"` + hashes.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0;
                while n < hashes && self.peek() == Some('#') {
                    self.bump();
                    n += 1;
                }
                if n == hashes {
                    return;
                }
            }
        }
    }
}

/// Lex `src` into tokens, discarding whitespace and comments.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => {
                cur.bump();
                cur.eat_string_body();
                out.push(Token {
                    kind: TokKind::Str,
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'\x'`, `'a'` are chars;
                // `'a` followed by a non-quote is a lifetime.
                cur.bump();
                let kind = match cur.peek() {
                    Some('\\') => {
                        cur.bump();
                        cur.bump();
                        if cur.peek() == Some('\'') {
                            cur.bump();
                        }
                        TokKind::Str
                    }
                    Some(c2) if is_ident_start(c2) => {
                        // Consume the ident run, then decide.
                        while cur.peek().is_some_and(is_ident_continue) {
                            cur.bump();
                        }
                        if cur.peek() == Some('\'') {
                            cur.bump();
                            TokKind::Str
                        } else {
                            TokKind::Lifetime
                        }
                    }
                    Some(_) => {
                        cur.bump();
                        if cur.peek() == Some('\'') {
                            cur.bump();
                        }
                        TokKind::Str
                    }
                    None => TokKind::Str,
                };
                out.push(Token {
                    kind,
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
            _ if is_ident_start(c) => {
                // Raw-/byte-string prefixes: r" r#" b" br" rb"... and raw
                // identifiers r#name.
                let mut it = cur.src[cur.pos..].char_indices();
                let mut prefix_len = 0usize;
                for (i, pc) in &mut it {
                    if pc == 'r' || pc == 'b' {
                        prefix_len = i + 1;
                        if prefix_len == 2 {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let after = cur.src.get(cur.pos + prefix_len..).unwrap_or("");
                let is_raw_ident = prefix_len == 1
                    && cur.bytes.get(cur.pos) == Some(&b'r')
                    && after.starts_with('#')
                    && after.get(1..).and_then(|s| s.chars().next()).is_some_and(is_ident_start);
                let is_str_start = prefix_len > 0
                    && !is_raw_ident
                    && (after.starts_with('"') || after.starts_with('#'))
                    && {
                        // For `#`, require `#...#"` so `b#foo` doesn't lex as
                        // a string (it isn't valid Rust anyway).
                        let trimmed = after.trim_start_matches('#');
                        trimmed.starts_with('"')
                    };
                if is_str_start {
                    for _ in 0..prefix_len {
                        cur.bump();
                    }
                    let mut hashes = 0usize;
                    while cur.peek() == Some('#') {
                        cur.bump();
                        hashes += 1;
                    }
                    cur.bump(); // opening quote
                    if hashes == 0 {
                        cur.eat_string_body();
                    } else {
                        cur.eat_raw_string_body(hashes);
                    }
                    out.push(Token {
                        kind: TokKind::Str,
                        start,
                        end: cur.pos,
                        line,
                        col,
                    });
                } else {
                    if is_raw_ident {
                        cur.bump(); // r
                        cur.bump(); // #
                    }
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.push(Token {
                        kind: TokKind::Ident,
                        start,
                        end: cur.pos,
                        line,
                        col,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    cur.bump();
                }
                out.push(Token {
                    kind: TokKind::Num,
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.push(Token {
                    kind: TokKind::Punct(if c.is_ascii() { c as u8 } else { b'?' }),
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let mut x = a.b();");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "mut", "x", "=", "a", ".", "b", "(", ")", ";"]);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // HashMap\n/* HashSet /* nested */ */ b");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
    }

    #[test]
    fn strings_are_opaque() {
        let ks = kinds(r#"x("thread_rng()"); y(r#STR#);"#.replace("STR", "\"Instant::now\"").as_str());
        assert!(ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .all(|(_, t)| t == "x" || t == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(c: char) { let x = 'x'; let nl = '\\n'; }");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t == "'x'"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t == "'\\n'"));
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
