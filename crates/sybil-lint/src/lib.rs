//! # sybil-lint — workspace determinism & invariant auditor
//!
//! PR 1 made every analytics path bit-identical across thread counts;
//! this crate *enforces* the invariants that guarantee rests on. A
//! lightweight Rust lexer ([`lexer`]) feeds a per-file rule engine
//! ([`rules`]) that audits the whole workspace ([`workspace`]) and exits
//! nonzero on violations not covered by the reviewed `lint.toml`
//! allowlist ([`allowlist`]). Output comes in human and `--format json`
//! flavors ([`report`]).
//!
//! The rules:
//!
//! | code | invariant |
//! |------|-----------|
//! | D001 | no unordered `HashMap`/`HashSet` iteration in library code |
//! | D002 | no wall-clock reads outside `crates/bench` and the repro CLI |
//! | D003 | no raw threading primitives outside `osn_graph::par` |
//! | D004 | no panics (`unwrap`/`expect`/`panic!`) in non-test library code |
//! | D005 | every library crate carries `#![forbid(unsafe_code)]` |
//! | D006 | only explicitly seeded RNGs — no entropy sources |
//!
//! No external parser dependencies: the lexer is ~300 lines and the TOML
//! allowlist reader handles exactly the subset `lint.toml` uses.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use allowlist::{Allowlist, AllowEntry};
pub use report::{Finding, Report};
pub use rules::{check_file, FileCtx, FileKind};
