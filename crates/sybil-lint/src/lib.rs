//! # sybil-lint — workspace determinism & invariant auditor
//!
//! PR 1 made every analytics path bit-identical across thread counts;
//! this crate *enforces* the invariants that guarantee rests on. A
//! lightweight Rust lexer ([`lexer`]) feeds a per-file rule engine
//! ([`rules`]) that audits the whole workspace ([`workspace`]) and exits
//! nonzero on violations not covered by the reviewed `lint.toml`
//! allowlist ([`allowlist`]). Output comes in human, `--format json`
//! ([`report`]), and `--format sarif` ([`sarif`]) flavors.
//!
//! On top of the token layer sits a semantic layer: an item-level parser
//! ([`parser`]) feeds a workspace symbol table ([`symbols`]) and a
//! name-resolved call graph ([`callgraph`]), over which the S-series
//! rules ([`rules_sem`]) reason about *reachability* — every S-finding
//! carries a call-chain trace explaining why it fired. The effect layer
//! ([`effects`]) generalizes those per-rule searches into one
//! interprocedural analysis: per-function effect sets inferred from leaf
//! intrinsics and propagated to a fixpoint, with roots and sinks
//! designated in `lint.toml`'s `[effects.*]` tables. The cost layer
//! ([`costs`]) reuses the same fixpoint machinery over a cost lattice
//! (allocation, growth, scans, blocking, recursion) and adds loop
//! context ([`loops`]): sites are judged against the per-event hot
//! loops under the `[hotpaths.roots]` cores, so a once-per-epoch
//! allocation is amortized noise while the same allocation inside the
//! event scan is an S113 error.
//!
//! The rules:
//!
//! | code | invariant |
//! |------|-----------|
//! | D001 | no unordered `HashMap`/`HashSet` iteration in library code |
//! | D002 | no wall-clock reads outside `crates/bench` and the repro CLI |
//! | D003 | no raw threading primitives outside `osn_graph::par` |
//! | D004 | no panics (`unwrap`/`expect`/`panic!`) in non-test library code |
//! | D005 | every library crate carries `#![forbid(unsafe_code)]` |
//! | D006 | only explicitly seeded RNGs — no entropy sources |
//! | S101 | no panic site reachable from a `pub` library fn (call graph) |
//! | S102 | no float reduction reachable from a `par::` map closure |
//! | S103 | no `&mut`/RNG capture across the `par` boundary |
//! | S104 | no dead exports (pub items nothing outside the crate names) |
//! | S105 | no stale `lint.toml` entries (`--fix-allowlist` prunes them) |
//! | S106 | no unbounded channels outside sybil-serve's DeltaQueue |
//! | S107 | no stringly-typed error APIs (`Result<_, String>`, lib exits) |
//! | S108 | no id-keyed hash containers in the scale-critical modules |
//! | S109 | no clock/env/thread-id effects reachable from clockless roots |
//! | S110 | no IO effects reachable from the epoch-barrier critical path |
//! | S111 | no unordered hash iteration reachable from byte-stable sinks |
//! | S112 | no thread spawns outside the sanctioned scheduler files |
//! | S113 | no allocation inside a per-event hot loop (recycle scratch) |
//! | S114 | no monotonic collection growth across the epoch loop |
//! | S115 | no truncating `as` casts reachable from hot paths |
//! | S116 | no blocking acquisition reachable from a hot loop |
//! | S117 | no recursion reachable from a hot path |
//!
//! No external parser dependencies: the lexer is ~300 lines, the item
//! parser ~700, and the TOML allowlist reader handles exactly the subset
//! `lint.toml` uses.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod costs;
pub mod effects;
pub mod lexer;
pub mod loops;
pub mod parser;
pub mod report;
pub mod rules;
pub mod rules_sem;
pub mod sarif;
pub mod symbols;
pub mod workspace;

pub use allowlist::{Allowlist, AllowEntry};
pub use report::{Finding, Report};
pub use rules::{check_file, FileCtx, FileKind};
pub use symbols::WorkspaceModel;
