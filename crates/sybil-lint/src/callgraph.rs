//! Workspace call graph over the [`symbols::WorkspaceModel`].
//!
//! Resolution is name-based (the analyzer has no type information) and
//! deliberately over-approximates where dynamic dispatch makes the callee
//! ambiguous — a `.verify(…)` call links to *every* workspace method named
//! `verify`. Over-approximation is the safe direction for reachability
//! rules (S101/S102): it can only add candidate paths, never hide one.
//! Calls that resolve to nothing are assumed to target `std`/vendored
//! code and produce no edge.
//!
//! Resolution order for `name(…)`-shaped calls:
//!
//! 1. `Type::name` / `module::name` paths match impl self types, file
//!    modules, and crate names on the last path segment;
//! 2. bare `name(…)` prefers same-file functions, then same-crate free
//!    functions, then a unique workspace match;
//! 3. `.name(…)` method calls match every impl method with that name.

use crate::parser::Call;
use crate::symbols::{FnIdx, WorkspaceModel};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Calling function.
    pub from: FnIdx,
    /// Resolved callee.
    pub to: FnIdx,
    /// 1-based line of the call site (in `from`'s file).
    pub line: u32,
}

/// The resolved workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Forward adjacency: caller → sorted, deduplicated edges.
    pub out: Vec<Vec<Edge>>,
    /// Reverse adjacency: callee → sorted list of callers (edge carries
    /// the same call-site line).
    pub rin: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Build the graph by resolving every call in every function.
    pub fn build(model: &WorkspaceModel) -> CallGraph {
        let n = model.fns.len();
        let mut out: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut rin: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for (from, out_adj) in out.iter_mut().enumerate() {
            for call in &model.fns[from].def.calls {
                for to in resolve(model, from, call) {
                    let e = Edge {
                        from,
                        to,
                        line: call.line,
                    };
                    out_adj.push(e);
                    rin[to].push(e);
                }
            }
        }
        for adj in out.iter_mut().chain(rin.iter_mut()) {
            adj.sort_by_key(|e| (e.to, e.from, e.line));
            adj.dedup_by_key(|e| (e.to, e.from));
        }
        CallGraph { out, rin }
    }

    /// Shortest path `from → … → to` over forward edges (BFS, ties broken
    /// by function index for determinism). Returns the edge sequence.
    pub fn path(&self, from: FnIdx, to: FnIdx) -> Option<Vec<Edge>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: BTreeMap<FnIdx, Edge> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for e in &self.out[u] {
                if e.to != from && !prev.contains_key(&e.to) {
                    prev.insert(e.to, *e);
                    if e.to == to {
                        let mut path = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let e = prev[&cur];
                            path.push(e);
                            cur = e.from;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.to);
                }
            }
        }
        None
    }

    /// All functions reachable from `roots` over forward edges (including
    /// the roots themselves), as a sorted list.
    pub fn reachable_from(&self, roots: &[FnIdx]) -> Vec<FnIdx> {
        let mut seen = vec![false; self.out.len()];
        let mut queue: std::collections::VecDeque<FnIdx> = roots.iter().copied().collect();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.out[u] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        (0..self.out.len()).filter(|&i| seen[i]).collect()
    }

    /// Nearest ancestor of `target` (over reverse edges) satisfying
    /// `pred`, together with the forward path from that ancestor down to
    /// `target`. Used to answer "which pub function reaches this panic?".
    pub fn nearest_ancestor(
        &self,
        target: FnIdx,
        pred: impl Fn(FnIdx) -> bool,
    ) -> Option<(FnIdx, Vec<Edge>)> {
        self.nearest_ancestor_where(target, pred, |_| true)
    }

    /// [`nearest_ancestor`](CallGraph::nearest_ancestor) restricted to
    /// paths whose every node passes `admit`. The effect rules use this
    /// to confine propagation traces to library functions, so a bench or
    /// test caller can never appear as the "root" of a core-path finding.
    pub fn nearest_ancestor_where(
        &self,
        target: FnIdx,
        pred: impl Fn(FnIdx) -> bool,
        admit: impl Fn(FnIdx) -> bool,
    ) -> Option<(FnIdx, Vec<Edge>)> {
        if pred(target) {
            return Some((target, Vec::new()));
        }
        // BFS over reverse edges, remembering the forward edge taken.
        let mut next: BTreeMap<FnIdx, Edge> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(target);
        while let Some(u) = queue.pop_front() {
            for e in &self.rin[u] {
                if e.from == target || next.contains_key(&e.from) || !admit(e.from) {
                    continue;
                }
                next.insert(e.from, *e);
                if pred(e.from) {
                    let mut path = Vec::new();
                    let mut cur = e.from;
                    while cur != target {
                        let e = next[&cur];
                        path.push(e);
                        cur = e.to;
                    }
                    return Some((e.from, path));
                }
                queue.push_back(e.from);
            }
        }
        None
    }
}

/// Method names so generic that linking them across the workspace by name
/// alone would wire unrelated types together (`new`, `len`, `get`, …
/// are also inherent methods on std types). These resolve only through
/// qualified `Type::name` paths, never through `.name(…)` dispatch.
const AMBIENT_METHODS: [&str; 14] = [
    "new", "default", "len", "get", "insert", "push", "next", "clone", "iter", "index",
    "fmt", "eq", "contains", "is_empty",
];

/// Resolve one call to its candidate definitions.
fn resolve(model: &WorkspaceModel, from: FnIdx, call: &Call) -> Vec<FnIdx> {
    let Some(cands) = model.by_name.get(&call.name) else {
        return Vec::new();
    };
    let caller_file = model.fns[from].file;
    let caller_crate = &model.files[caller_file].crate_name;

    if call.method {
        if AMBIENT_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        return cands
            .iter()
            .copied()
            .filter(|&c| model.fns[c].def.self_ty.is_some())
            .collect();
    }

    if let Some(last) = call.path.last() {
        // Relative-path prefixes carry no resolution information.
        if matches!(last.as_str(), "self" | "crate" | "super") {
            return resolve_bare(model, caller_file, caller_crate, cands);
        }
        let norm = last.replace('-', "_");
        return cands
            .iter()
            .copied()
            .filter(|&c| {
                let f = &model.fns[c];
                let file = &model.files[f.file];
                f.def.self_ty.as_deref() == Some(last.as_str())
                    || file.module == norm
                    || f.def.modules.last().map(String::as_str) == Some(norm.as_str())
                    || file.crate_name.replace('-', "_") == norm
            })
            .collect();
    }

    resolve_bare(model, caller_file, caller_crate, cands)
}

/// Bare `name(…)`: same file, else same-crate free functions, else a
/// unique workspace-wide free function.
fn resolve_bare(
    model: &WorkspaceModel,
    caller_file: usize,
    caller_crate: &str,
    cands: &[FnIdx],
) -> Vec<FnIdx> {
    let same_file: Vec<FnIdx> = cands
        .iter()
        .copied()
        .filter(|&c| model.fns[c].file == caller_file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<FnIdx> = cands
        .iter()
        .copied()
        .filter(|&c| {
            model.files[model.fns[c].file].crate_name == caller_crate
                && model.fns[c].def.self_ty.is_none()
        })
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    let free: Vec<FnIdx> = cands
        .iter()
        .copied()
        .filter(|&c| model.fns[c].def.self_ty.is_none())
        .collect();
    if free.len() == 1 {
        free
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::WorkspaceModel;
    use crate::workspace::{classify, SourceFile};

    fn model_from(entries: &[(&str, &str)]) -> WorkspaceModel {
        let files: Vec<SourceFile> = entries
            .iter()
            .map(|(rel, _)| SourceFile {
                abs: std::path::PathBuf::from(rel),
                rel: rel.to_string(),
                crate_name: rel
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("root")
                    .to_string(),
                kind: classify(rel),
            })
            .collect();
        let sources: Vec<String> = entries.iter().map(|(_, s)| s.to_string()).collect();
        WorkspaceModel::build(&files, &sources)
    }

    fn idx(m: &WorkspaceModel, fq: &str) -> FnIdx {
        (0..m.fns.len())
            .find(|&i| m.fq_name(i) == fq)
            .unwrap_or_else(|| panic!("fn {fq} not found"))
    }

    #[test]
    fn resolves_chains_through_modules_and_methods() {
        let m = model_from(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry(g: &G) { helper(g); }\n\
                 fn helper(g: &G) { g.walk(); }\n\
                 pub struct G;\n\
                 impl G { pub fn walk(&self) { deep::panicky(); } }\n\
                 pub mod deep { pub fn panicky() { panic!(\"x\") } }\n",
            ),
        ]);
        let cg = CallGraph::build(&m);
        let entry = idx(&m, "a::entry");
        let panicky = idx(&m, "a::deep::panicky");
        let path = cg.path(entry, panicky).expect("path exists");
        assert_eq!(path.len(), 3, "entry→helper→walk→panicky: {path:?}");
        let (anc, up) = cg
            .nearest_ancestor(panicky, |i| m.is_pub_api(i) && m.fns[i].def.self_ty.is_none() && m.fns[i].def.name == "entry")
            .expect("pub ancestor");
        assert_eq!(anc, entry);
        assert_eq!(up.len(), 3);
    }

    #[test]
    fn ambient_method_names_do_not_link() {
        let m = model_from(&[
            (
                "crates/a/src/lib.rs",
                "pub struct S;\nimpl S { pub fn new() -> S { panic!(\"x\") } }\n\
                 pub fn f() { let v: Vec<u32> = Vec::new(); v.len(); }\n",
            ),
        ]);
        let cg = CallGraph::build(&m);
        let f = idx(&m, "a::f");
        assert!(cg.out[f].is_empty(), "{:?}", cg.out[f]);
    }

    #[test]
    fn qualified_type_paths_link() {
        let m = model_from(&[
            (
                "crates/a/src/lib.rs",
                "pub struct S;\nimpl S { pub fn build() -> S { S } }\npub fn f() -> S { S::build() }\n",
            ),
        ]);
        let cg = CallGraph::build(&m);
        let f = idx(&m, "a::f");
        assert_eq!(cg.out[f].len(), 1);
        assert_eq!(m.fq_name(cg.out[f][0].to), "a::S::build");
    }

    #[test]
    fn cross_crate_module_paths_link() {
        let m = model_from(&[
            ("crates/g/src/bfs.rs", "pub fn distances() {}\n"),
            (
                "crates/d/src/lib.rs",
                "pub fn verify() { osn_graph::bfs::distances(); }\n",
            ),
        ]);
        let cg = CallGraph::build(&m);
        let v = idx(&m, "d::verify");
        assert_eq!(cg.out[v].len(), 1);
    }

    #[test]
    fn reachability_is_sorted_and_complete() {
        let m = model_from(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )]);
        let cg = CallGraph::build(&m);
        let a = idx(&m, "a::a");
        let reach = cg.reachable_from(&[a]);
        assert_eq!(reach.len(), 3);
        assert!(!reach.contains(&idx(&m, "a::lonely")));
    }
}
