//! Workspace symbol table: every parsed file, function, and `pub` item in
//! one indexed structure the call-graph and semantic rules resolve
//! against.
//!
//! Functions get stable integer ids (`FnIdx`) ordered by file path and
//! source position, so every downstream analysis (BFS orders, finding
//! emission) is deterministic regardless of discovery order.

use crate::parser::{self, FnDef, ItemDef, ParsedFile, Vis};
use crate::rules::{self, FileKind};
use crate::workspace::SourceFile;
use std::collections::BTreeMap;

/// Index of a function in [`WorkspaceModel::fns`].
pub type FnIdx = usize;

/// One file's parsed contents plus its workspace metadata.
#[derive(Clone, Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Owning package name.
    pub crate_name: String,
    /// Build role (library / binary / test).
    pub kind: FileKind,
    /// Module name derived from the file path (`par.rs` → `par`,
    /// `lib.rs` → the crate name, `foo/mod.rs` → `foo`).
    pub module: String,
    /// Full source text (for finding snippets).
    pub src: String,
    /// Parsed items, functions, and identifier usage.
    pub parsed: ParsedFile,
}

/// One function in the workspace: its definition plus owning file.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning file in [`WorkspaceModel::files`].
    pub file: usize,
    /// The parsed definition.
    pub def: FnDef,
}

/// The whole workspace, parsed and indexed.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceModel {
    /// All parsed files, sorted by relative path.
    pub files: Vec<FileModel>,
    /// All function definitions, ordered by (file, source position).
    pub fns: Vec<FnNode>,
    /// Function indices by bare name.
    pub by_name: BTreeMap<String, Vec<FnIdx>>,
}

impl WorkspaceModel {
    /// Parse and index `files` (already read into `sources`, matched by
    /// position).
    pub fn build(files: &[SourceFile], sources: &[String]) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();
        let mut order: Vec<usize> = (0..files.len()).collect();
        order.sort_by(|&a, &b| files[a].rel.cmp(&files[b].rel));
        for &fi in &order {
            let f = &files[fi];
            let src = &sources[fi];
            let parsed = parser::parse(src, &rules::test_line_spans_for(src));
            model.files.push(FileModel {
                rel: f.rel.clone(),
                crate_name: f.crate_name.clone(),
                kind: f.kind,
                module: file_module(&f.rel, &f.crate_name),
                src: src.clone(),
                parsed,
            });
        }
        let mut fns = Vec::new();
        for (file_idx, file) in model.files.iter().enumerate() {
            for def in &file.parsed.fns {
                fns.push(FnNode {
                    file: file_idx,
                    def: def.clone(),
                });
            }
        }
        for (idx, f) in fns.iter().enumerate() {
            model.by_name.entry(f.def.name.clone()).or_default().push(idx);
        }
        model.fns = fns;
        model
    }

    /// The fully qualified display name of function `idx`:
    /// `crate::module::Type::name` with redundant segments elided.
    pub fn fq_name(&self, idx: FnIdx) -> String {
        let f = &self.fns[idx];
        let file = &self.files[f.file];
        let mut parts: Vec<&str> = vec![file.crate_name.as_str()];
        // A crate-root module repeats the crate name (modulo `-` → `_`);
        // eliding it keeps `osn-sim::simulate` out of doubled forms like
        // `osn-sim::osn_sim::simulate`.
        if file.module != file.crate_name.replace('-', "_") {
            parts.push(file.module.as_str());
        }
        for m in &f.def.modules {
            parts.push(m.as_str());
        }
        if let Some(ty) = &f.def.self_ty {
            parts.push(ty.as_str());
        }
        parts.push(f.def.name.as_str());
        parts.join("::")
    }

    /// Workspace-relative path of the file defining function `idx`.
    pub(crate) fn path_of(&self, idx: FnIdx) -> &str {
        &self.files[self.fns[idx].file].rel
    }

    /// Is function `idx` part of a library target (not tests/bins) and
    /// outside `#[cfg(test)]` code?
    pub(crate) fn is_lib_fn(&self, idx: FnIdx) -> bool {
        let f = &self.fns[idx];
        self.files[f.file].kind == FileKind::Lib && !f.def.in_test
    }

    /// Is function `idx` exported (`pub`) from a library target?
    pub fn is_pub_api(&self, idx: FnIdx) -> bool {
        self.is_lib_fn(idx) && self.fns[idx].def.vis == Vis::Pub
    }

    /// All `pub` non-`fn` items in library files, with their file index.
    pub(crate) fn pub_items(&self) -> Vec<(usize, &ItemDef)> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            if file.kind != FileKind::Lib {
                continue;
            }
            for item in &file.parsed.items {
                if item.vis == Vis::Pub && !item.in_test {
                    out.push((fi, item));
                }
            }
        }
        out
    }
}

/// Module name a file contributes: `crates/x/src/par.rs` → `par`,
/// `src/lib.rs` → the crate name, `src/bin/tool.rs` → `tool`,
/// `src/foo/mod.rs` → `foo`.
fn file_module(rel: &str, crate_name: &str) -> String {
    let stem = rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel);
    if stem == "lib" || stem == "main" {
        crate_name.replace('-', "_")
    } else if stem == "mod" {
        rel.rsplit('/')
            .nth(1)
            .unwrap_or(crate_name)
            .replace('-', "_")
    } else {
        stem.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_from(entries: &[(&str, &str)]) -> WorkspaceModel {
        let files: Vec<SourceFile> = entries
            .iter()
            .map(|(rel, _)| SourceFile {
                abs: std::path::PathBuf::from(rel),
                rel: rel.to_string(),
                crate_name: rel
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("root")
                    .to_string(),
                kind: crate::workspace::classify(rel),
            })
            .collect();
        let sources: Vec<String> = entries.iter().map(|(_, s)| s.to_string()).collect();
        WorkspaceModel::build(&files, &sources)
    }

    #[test]
    fn indexes_functions_with_fq_names() {
        let m = model_from(&[
            (
                "crates/g/src/par.rs",
                "pub fn map_indexed() {}\nfn helper() {}\n",
            ),
            (
                "crates/g/src/lib.rs",
                "pub struct G;\nimpl G { pub fn degree(&self) -> usize { 0 } }\n",
            ),
        ]);
        assert_eq!(m.fns.len(), 3);
        let names: Vec<String> = (0..3).map(|i| m.fq_name(i)).collect();
        assert!(names.contains(&"g::G::degree".to_string()), "{names:?}");
        assert!(names.contains(&"g::par::map_indexed".to_string()), "{names:?}");
        assert!(names.contains(&"g::par::helper".to_string()), "{names:?}");
        assert_eq!(m.by_name["degree"].len(), 1);
    }

    #[test]
    fn module_names_from_paths() {
        assert_eq!(file_module("crates/osn-graph/src/par.rs", "osn-graph"), "par");
        assert_eq!(file_module("crates/osn-graph/src/lib.rs", "osn-graph"), "osn_graph");
        assert_eq!(file_module("src/bin/repro.rs", "sybil-repro"), "repro");
        assert_eq!(file_module("crates/x/src/foo/mod.rs", "x"), "foo");
    }
}
