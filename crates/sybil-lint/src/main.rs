//! The `sybil-lint` CLI.
//!
//! ```text
//! sybil-lint --workspace [--format human|json|sarif] [--root DIR]
//!            [--allowlist FILE | --no-allowlist] [--fix-allowlist]
//!            [--list-rules] [--explain CODE] [PATH...]
//! ```
//!
//! `--workspace` runs the token rules (D-series) *and* the semantic
//! call-graph rules (S-series); explicit `PATH` arguments alone run only
//! the token rules, since S-rules need every file to resolve calls.
//! `--explain CODE` prints the full rationale for one rule.
//! `--fix-allowlist` deletes lint.toml entries that matched nothing
//! (byte-identical rewrite when none are stale).
//!
//! Exit codes: 0 clean, 1 unallowlisted violations, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use sybil_lint::workspace::{self, SourceFile};
use sybil_lint::{allowlist, report, rules};

/// Output rendering mode.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    workspace: bool,
    format: Format,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    no_allowlist: bool,
    fix_allowlist: bool,
    list_rules: bool,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: sybil-lint [--workspace] [--format human|json|sarif] [--root DIR] \
                     [--allowlist FILE] [--no-allowlist] [--fix-allowlist] [--list-rules] \
                     [--explain CODE] [PATH...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        format: Format::Human,
        root: None,
        allowlist: None,
        no_allowlist: false,
        fix_allowlist: false,
        list_rules: false,
        explain: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--fix-allowlist" => {
                args.workspace = true; // staleness needs the full scan
                args.fix_allowlist = true;
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain expects a rule code")?)
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("human") => args.format = Format::Human,
                Some("sarif") => args.format = Format::Sarif,
                other => return Err(format!("--format expects human|json|sarif, got {other:?}")),
            },
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root expects a directory")?,
                ))
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(
                    it.next().ok_or("--allowlist expects a file")?,
                ))
            }
            "--no-allowlist" => args.no_allowlist = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.fix_allowlist && args.no_allowlist {
        return Err("--fix-allowlist and --no-allowlist are contradictory".to_string());
    }
    if !args.workspace && args.paths.is_empty() && !args.list_rules && args.explain.is_none() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for code in rules::ALL_RULES.iter().chain(rules::SEM_RULES.iter()) {
            println!("{code}  {}", rules::rule_summary(code));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(code) = &args.explain {
        let code = code.to_uppercase();
        match rules::rule_explanation(&code) {
            Some(text) => {
                println!("{text}");
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "sybil-lint: unknown rule {code:?} (known: {} / {})",
                    rules::ALL_RULES.join(" "),
                    rules::SEM_RULES.join(" ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match args
        .root
        .clone()
        .or_else(|| workspace::find_root(&cwd))
    {
        Some(r) => r,
        None => {
            eprintln!("sybil-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    // Gather files: whole workspace and/or explicit paths.
    let mut files: Vec<SourceFile> = Vec::new();
    if args.workspace {
        match workspace::discover(&root) {
            Ok(fs) => files.extend(fs),
            Err(e) => {
                eprintln!("sybil-lint: workspace discovery failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for p in &args.paths {
        let abs = if p.is_absolute() { p.clone() } else { cwd.join(p) };
        let rel = abs
            .strip_prefix(&root)
            .unwrap_or(&abs)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile {
            kind: workspace::classify(&rel),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("root")
                .to_string(),
            abs,
            rel,
        });
    }

    // Load the allowlist (default <root>/lint.toml; absence is fine).
    let allow_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let mut allow_content = String::new();
    let allow = if args.no_allowlist {
        allowlist::Allowlist::default()
    } else {
        match std::fs::read_to_string(&allow_path) {
            Ok(content) => match allowlist::parse(&content) {
                Ok(a) => {
                    allow_content = content;
                    a
                }
                Err(e) => {
                    eprintln!("sybil-lint: {}: {e}", display(&allow_path));
                    return ExitCode::from(2);
                }
            },
            Err(_) if args.allowlist.is_none() => allowlist::Allowlist::default(),
            Err(e) => {
                eprintln!("sybil-lint: cannot read {}: {e}", display(&allow_path));
                return ExitCode::from(2);
            }
        }
    };

    let run = if args.workspace {
        workspace::run_workspace
    } else {
        workspace::run
    };
    let mut rep = match run(&files, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sybil-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.fix_allowlist {
        // Prune stale entries, then report as if the pruned file had been
        // in effect all along (their S105 findings disappear with them).
        let stale = std::mem::take(&mut rep.unused_allowlist);
        let rewritten = allowlist::remove_stale(&allow_content, &stale);
        if rewritten != allow_content {
            if let Err(e) = std::fs::write(&allow_path, &rewritten) {
                eprintln!("sybil-lint: cannot rewrite {}: {e}", display(&allow_path));
                return ExitCode::from(2);
            }
        }
        rep.violations.retain(|f| f.rule != "S105");
        eprintln!(
            "sybil-lint: --fix-allowlist removed {} stale entr{} from {}",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
            display(&allow_path)
        );
    }

    match args.format {
        Format::Json => print!("{}", report::render_json(&rep)),
        Format::Sarif => print!("{}", sybil_lint::sarif::render_sarif(&rep)),
        Format::Human => print!("{}", report::render_human(&rep)),
    }
    if rep.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn display(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}
