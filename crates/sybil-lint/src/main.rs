//! The `sybil-lint` CLI.
//!
//! ```text
//! sybil-lint --workspace [--format human|json] [--root DIR]
//!            [--allowlist FILE | --no-allowlist] [--list-rules] [PATH...]
//! ```
//!
//! Exit codes: 0 clean, 1 unallowlisted violations, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use sybil_lint::workspace::{self, SourceFile};
use sybil_lint::{allowlist, report, rules};

struct Args {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    no_allowlist: bool,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: sybil-lint [--workspace] [--format human|json] [--root DIR] \
                     [--allowlist FILE] [--no-allowlist] [--list-rules] [PATH...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        root: None,
        allowlist: None,
        no_allowlist: false,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root expects a directory")?,
                ))
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(
                    it.next().ok_or("--allowlist expects a file")?,
                ))
            }
            "--no-allowlist" => args.no_allowlist = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if !args.workspace && args.paths.is_empty() && !args.list_rules {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for code in rules::ALL_RULES {
            println!("{code}  {}", rules::rule_summary(code));
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match args
        .root
        .clone()
        .or_else(|| workspace::find_root(&cwd))
    {
        Some(r) => r,
        None => {
            eprintln!("sybil-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    // Gather files: whole workspace and/or explicit paths.
    let mut files: Vec<SourceFile> = Vec::new();
    if args.workspace {
        match workspace::discover(&root) {
            Ok(fs) => files.extend(fs),
            Err(e) => {
                eprintln!("sybil-lint: workspace discovery failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for p in &args.paths {
        let abs = if p.is_absolute() { p.clone() } else { cwd.join(p) };
        let rel = abs
            .strip_prefix(&root)
            .unwrap_or(&abs)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile {
            kind: workspace::classify(&rel),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("root")
                .to_string(),
            abs,
            rel,
        });
    }

    // Load the allowlist (default <root>/lint.toml; absence is fine).
    let allow = if args.no_allowlist {
        allowlist::Allowlist::default()
    } else {
        let path = args
            .allowlist
            .clone()
            .unwrap_or_else(|| root.join("lint.toml"));
        match std::fs::read_to_string(&path) {
            Ok(content) => match allowlist::parse(&content) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("sybil-lint: {}: {e}", display(&path));
                    return ExitCode::from(2);
                }
            },
            Err(_) if args.allowlist.is_none() => allowlist::Allowlist::default(),
            Err(e) => {
                eprintln!("sybil-lint: cannot read {}: {e}", display(&path));
                return ExitCode::from(2);
            }
        }
    };

    let rep = match workspace::run(&files, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sybil-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report::render_json(&rep));
    } else {
        print!("{}", report::render_human(&rep));
    }
    if rep.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn display(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}
