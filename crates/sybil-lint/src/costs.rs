//! Interprocedural cost inference over the workspace call graph: the
//! loop-context + cost dataflow layer behind rules S113–S117.
//!
//! Each function gets a [`CostSet`] — a bitmask over the five cost kinds
//! in [`Cost`] — seeded from *leaf intrinsics* found by scanning the
//! function's body tokens (`Vec::new`/`with_capacity`, `format!`,
//! `Box::new`, `.clone()`, `.collect()`, `.push(…)`, `.lock()`,
//! `.recv()`, hash-container scans, …) and propagated to a least
//! fixpoint over the name-resolved [`CallGraph`] exactly like
//! [`crate::effects`] — same lib-to-lib adjacency, same union join, same
//! [`fixpoint`] contract (and the same order-independence proptest in
//! `tests/cost_rules.rs`).
//!
//! What makes cost different from effect is *where* a site matters. An
//! allocation once per epoch is amortized noise; the same allocation
//! inside the per-event scan loop is a per-event cost at 5M accounts.
//! So the check is anchored by the `[hotpaths.roots]` table in
//! `lint.toml` ([`HotPathConfig`]) naming the per-event cores, and uses
//! [`crate::loops`] to split each hot function into loop and non-loop
//! regions:
//!
//! - the **hot set** is the forward lib-to-lib closure of the roots;
//! - the **loop context** is the forward closure of every call a hot
//!   function makes *from inside one of its own loops* — code that runs
//!   per event even though its own body has no loop.
//!
//! S113 (allocation), S114 (monotonic growth), and S116 (blocking) fire
//! on intrinsic sites that are in the loop context, or in a hot
//! function's own loop span. S115 (truncating `as` casts) and S117
//! (recursion) fire anywhere in the hot set — a truncation or an
//! unbounded stack is wrong on the critical path whether or not it sits
//! in a loop. Every finding carries the full root→leaf propagation
//! chain, same shape as S101/S109 traces.
//!
//! Growth sites model drains: a `push`/`insert`/`extend` on a receiver
//! that is also `clear`ed / `drain`ed / `truncate`d (or popped, retained,
//! split) *in the same function* is the recycled-scratch idiom the hot
//! path is built on — balanced, and never reported. Only receivers with
//! no drain in their fixpoint region survive as S114 candidates.

use crate::callgraph::CallGraph;
use crate::effects::{edge_step_eff, path_prefixed, EffectConfig};
use crate::lexer::{lex, TokKind, Token};
use crate::loops::{body_loop_spans, in_loop, LoopSpan};
use crate::parser::FnDef;
use crate::report::Finding;
use crate::rules::{hash_iteration_sites, test_line_spans_for, FileKind};
use crate::symbols::{FnIdx, WorkspaceModel};

/// One cost kind — a bit position in [`CostSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cost {
    /// Allocates: `Vec::new`/`with_capacity`, `Box::new`, `vec!`,
    /// `format!`, `.clone()`, `.collect()`, `.to_string()`, ….
    Alloc = 0,
    /// Grows a collection with no drain on the same receiver in the
    /// same function: `push`/`insert`/`extend` family.
    ReallocGrowth = 1,
    /// Scans a hash container (iteration over `HashMap`/`HashSet`).
    CollectionScan = 2,
    /// Blocking acquisition: `.lock()`, `.recv()`, `.wait()`,
    /// `thread::sleep`.
    Blocking = 3,
    /// Participates in a call-graph cycle (direct or mutual recursion).
    Recursion = 4,
}

impl Cost {
    /// Human-readable cost name for messages.
    pub fn name(self) -> &'static str {
        match self {
            Cost::Alloc => "allocation",
            Cost::ReallocGrowth => "monotonic collection growth",
            Cost::CollectionScan => "hash-container scan",
            Cost::Blocking => "blocking acquisition",
            Cost::Recursion => "recursion",
        }
    }

    /// The verb phrase used in the final trace step.
    fn verb(self) -> &'static str {
        match self {
            Cost::Alloc => "allocates via",
            Cost::ReallocGrowth => "grows a collection via",
            Cost::CollectionScan => "scans a hash container via",
            Cost::Blocking => "blocks via",
            Cost::Recursion => "recurses via",
        }
    }
}

/// A set of [`Cost`]s as a bitmask. Union is the lattice join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSet(pub u16);

impl CostSet {
    /// The empty set (lattice bottom).
    pub const EMPTY: CostSet = CostSet(0);

    /// Singleton set.
    pub fn of(c: Cost) -> CostSet {
        CostSet(1 << (c as u16))
    }

    /// Does the set contain `c`?
    pub fn contains(self, c: Cost) -> bool {
        self.0 & (1 << (c as u16)) != 0
    }

    /// Set union (the join).
    pub fn union(self, other: CostSet) -> CostSet {
        CostSet(self.0 | other.0)
    }

    /// Is any cost present?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// One leaf cost intrinsic found in a function body: the evidence a
/// finding's final trace step points at.
#[derive(Clone, Debug)]
pub struct CostSite {
    /// Which cost the site contributes.
    pub cost: Cost,
    /// The token pattern that identifies it (`Vec::new()`,
    /// `detections.push(…)`, `.lock()`, …).
    pub what: String,
    /// For growth sites, the receiver the growth accumulates on.
    pub recv: Option<String>,
    /// Token index of the identifying token — tested against the
    /// enclosing function's loop spans.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One truncating `as` cast found in a function body (S115 evidence).
/// Casts are not lattice members — a cast doesn't propagate to callers —
/// so they live beside the cost sites, keyed by the same hot set.
#[derive(Clone, Debug)]
pub struct CastSite {
    /// The narrow target type (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`).
    pub target: &'static str,
    /// Token index of the `as` keyword.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The `[hotpaths.roots]` table from `lint.toml`: fully qualified
/// function-name patterns (exact, or `prefix*`, same grammar as the
/// effect tables) naming the per-event cores — the serve shard step, the
/// replay inner loop, the snapshot merge, the feature kernels. An empty
/// list disables S113–S117.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotPathConfig {
    /// Root patterns for the per-event critical path.
    pub per_event_roots: Vec<String>,
}

/// Per-function cost information for the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    /// Leaf costs found in each function's own body.
    pub intrinsic: Vec<CostSet>,
    /// The fixpoint: own costs plus everything reachable.
    pub inferred: Vec<CostSet>,
    /// The intrinsic evidence sites, per function, in source order.
    pub sites: Vec<Vec<CostSite>>,
    /// Truncating casts, per function, in source order.
    pub casts: Vec<Vec<CastSite>>,
    /// Loop-body token spans, per function.
    pub loops: Vec<Vec<LoopSpan>>,
}

/// Compute the least fixpoint of `cost(f) = intrinsic(f) ∪ ⋃ cost(g)`
/// for every forward edge `f → g` in `out`, visiting functions in
/// `order` each round until nothing changes.
///
/// The cost lattice joins by set union exactly like the effect lattice,
/// so this delegates to [`crate::effects::fixpoint`]; the explicit
/// `order` argument exists so the cost layer's order-independence
/// proptest (`tests/cost_rules.rs`) pins the property at this boundary.
pub fn fixpoint(out: &[Vec<usize>], intrinsic: &[u16], order: &[usize]) -> Vec<u16> {
    crate::effects::fixpoint(out, intrinsic, order)
}

/// Container types whose `new`/`with_capacity` constructors allocate (or
/// will on first growth — the arc of a fresh `Vec::new` inside a hot
/// loop always ends in `grow`).
const ALLOC_TYPES: [&str; 10] = [
    "Vec", "VecDeque", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box", "Rc",
    "Arc",
];

/// Method calls that allocate their result.
const ALLOC_METHODS: [&str; 6] = [
    "clone",
    "collect",
    "to_string",
    "to_owned",
    "to_vec",
    "into_owned",
];

/// Method calls that grow a collection (candidate S114 sites until a
/// drain on the same receiver balances them).
const GROWTH_METHODS: [&str; 7] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
];

/// Method calls that shrink or recycle a collection — the drain family
/// S114 models. Any receiver drained in a function balances every growth
/// on the same receiver in that function.
const DRAIN_METHODS: [&str; 9] = [
    "clear",
    "drain",
    "truncate",
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "retain",
    "split_off",
];

/// Method calls that block the calling thread until another party acts.
const BLOCKING_METHODS: [&str; 4] = ["lock", "recv", "recv_timeout", "wait"];

/// Narrow integer types an `as` cast can silently truncate id/count
/// values into. Widening targets (`u64`, `usize`, `f64`, …) are never
/// flagged.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Infer costs for every function: collect intrinsics and loop spans
/// from library-code bodies, then propagate over lib-to-lib call edges
/// to a fixpoint. Recursion is seeded from the call graph itself — a
/// function on a lib-to-lib cycle gets a [`Cost::Recursion`] site at its
/// cycle-entering call.
///
/// Propagation is confined to library functions (`is_lib_fn`) for the
/// same reason as the effect layer: costs in bins, benches, and
/// `#[cfg(test)]` code neither seed nor transmit.
pub fn infer(model: &WorkspaceModel, cg: &CallGraph) -> CostModel {
    let n = model.fns.len();
    let mut sites: Vec<Vec<CostSite>> = vec![Vec::new(); n];
    let mut casts: Vec<Vec<CastSite>> = vec![Vec::new(); n];
    let mut loop_spans: Vec<Vec<LoopSpan>> = vec![Vec::new(); n];

    for (fi, file) in model.files.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        let src = file.src.as_str();
        let toks = lex(src);
        let spans = test_line_spans_for(src);
        let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
        let hash_sites = hash_iteration_sites(src, &toks);
        for (f, node) in model.fns.iter().enumerate() {
            if node.file != fi || !model.is_lib_fn(f) {
                continue;
            }
            loop_spans[f] = body_loop_spans(src, &toks, node.def.body);
            collect_cost_sites(src, &toks, &node.def, &mut sites[f], &mut casts[f]);
            for hs in &hash_sites {
                if hs.tok > node.def.body.0 && hs.tok < node.def.body.1 && !in_test(hs.line) {
                    sites[f].push(CostSite {
                        cost: Cost::CollectionScan,
                        what: hs.describe(),
                        recv: None,
                        tok: hs.tok,
                        line: hs.line,
                        col: hs.col,
                    });
                }
            }
            sites[f].sort_by_key(|s| (s.line, s.col, s.cost as u16));
        }
    }

    // Lib-to-lib adjacency, shared by the recursion seed and the fixpoint.
    let out_adj: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            if !model.is_lib_fn(f) {
                return Vec::new();
            }
            cg.out[f]
                .iter()
                .filter(|e| model.is_lib_fn(e.to))
                .map(|e| e.to)
                .collect()
        })
        .collect();

    // Recursion: f is on a cycle iff some callee g of f reaches f again.
    // One BFS per function with a non-empty out list keeps this linear in
    // practice and far under the lint-runtime budget.
    //
    // Same-name method dispatch is excluded from cycle detection: the
    // call graph's name-based method resolution links `self.inner.len()`
    // to *every* `len` in the workspace — including the delegating
    // wrapper itself — so every `fn is_empty() { self.nodes.is_empty() }`
    // would read as a self-cycle. An edge f → g with matching names
    // participates only if f also makes a bare or `Type::name` call by
    // that name (true direct recursion); mutual recursion between
    // differently-named functions is unaffected.
    let rec_adj: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            let fname = &model.fns[f].def.name;
            out_adj[f]
                .iter()
                .copied()
                .filter(|&g| {
                    let gname = &model.fns[g].def.name;
                    if fname != gname {
                        return true;
                    }
                    model.fns[f]
                        .def
                        .calls
                        .iter()
                        .any(|c| c.name == *gname && !c.method)
                })
                .collect()
        })
        .collect();
    for f in 0..n {
        if rec_adj[f].is_empty() {
            continue;
        }
        let Some(back) = rec_adj[f].iter().copied().find(|&g| reaches(&rec_adj, g, f)) else {
            continue;
        };
        let def = &model.fns[f].def;
        let callee = &model.fns[back].def.name;
        let call = def.calls.iter().find(|c| c.name == *callee);
        let (tok, line, col) = call
            .map(|c| (c.tok, c.line, c.col))
            .unwrap_or((def.body.0 + 1, def.line, 1));
        sites[f].push(CostSite {
            cost: Cost::Recursion,
            what: format!("recursive cycle through `{}`", model.fq_name(back)),
            recv: None,
            tok,
            line,
            col,
        });
    }

    let intrinsic: Vec<CostSet> = sites
        .iter()
        .map(|s| {
            s.iter()
                .fold(CostSet::EMPTY, |acc, site| acc.union(CostSet::of(site.cost)))
        })
        .collect();
    let raw: Vec<u16> = intrinsic.iter().map(|s| s.0).collect();
    let order: Vec<usize> = (0..n).collect();
    let inferred = fixpoint(&out_adj, &raw, &order)
        .into_iter()
        .map(CostSet)
        .collect();

    CostModel {
        intrinsic,
        inferred,
        sites,
        casts,
        loops: loop_spans,
    }
}

/// Does `from` reach `to` over `adj` (forward edges, `from` excluded
/// unless revisited)?
fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        for &g in &adj[u] {
            if g == to {
                return true;
            }
            if !seen[g] {
                seen[g] = true;
                stack.push(g);
            }
        }
    }
    false
}

/// Scan one function's body-token span for leaf cost intrinsics and
/// truncating casts. Growth sites are balanced against drain calls on
/// the same receiver before anything is emitted.
fn collect_cost_sites(
    src: &str,
    toks: &[Token],
    def: &FnDef,
    out: &mut Vec<CostSite>,
    casts: &mut Vec<CastSite>,
) {
    let (open, close) = def.body;
    let lo = (open + 1).min(toks.len());
    let hi = close.min(toks.len());
    let mut growth: Vec<CostSite> = Vec::new();
    let mut drained: Vec<&str> = Vec::new();
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        let next_is = |ch: u8| toks.get(i + 1).is_some_and(|n| n.is_punct(ch));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(b'.');
        let push = |out: &mut Vec<CostSite>, cost: Cost, what: String, recv: Option<String>| {
            out.push(CostSite {
                cost,
                what,
                recv,
                tok: i,
                line: t.line,
                col: t.col,
            });
        };
        match text {
            // Constructors on allocating containers: `Vec::new()`,
            // `HashMap::with_capacity(n)`, `Box::new(v)`, ….
            "new" | "with_capacity" if next_is(b'(') => {
                if let Some(qual) = ALLOC_TYPES
                    .iter()
                    .find(|q| path_prefixed(src, toks, i, q))
                {
                    push(out, Cost::Alloc, format!("{qual}::{text}"), None);
                }
            }
            // Allocating macros.
            "vec" if next_is(b'!') => push(out, Cost::Alloc, "vec![…]".into(), None),
            "format" if next_is(b'!') => push(out, Cost::Alloc, "format!(…)".into(), None),
            // Allocating methods; `.collect::<Vec<_>>()` carries a
            // turbofish, so `(` or `::` both count.
            _ if ALLOC_METHODS.contains(&text)
                && prev_is_dot
                && (next_is(b'(') || next_is(b':')) =>
            {
                push(out, Cost::Alloc, format!(".{text}()"), None);
            }
            // Growth and drain, matched by receiver: the ident before
            // the `.` (the field for `self.q.push(…)`); a non-ident
            // receiver (`)…].push`) stays unmatched and conservative.
            _ if GROWTH_METHODS.contains(&text) && prev_is_dot && next_is(b'(') => {
                let recv = recv_name(src, toks, i);
                growth.push(CostSite {
                    cost: Cost::ReallocGrowth,
                    what: format!(
                        "{}.{text}(…)",
                        recv.as_deref().unwrap_or("<expr>")
                    ),
                    recv,
                    tok: i,
                    line: t.line,
                    col: t.col,
                });
            }
            _ if DRAIN_METHODS.contains(&text)
                && prev_is_dot
                && next_is(b'(')
                && i >= 2
                && toks[i - 2].kind == TokKind::Ident =>
            {
                drained.push(toks[i - 2].text(src));
            }
            // Blocking acquisition.
            _ if BLOCKING_METHODS.contains(&text) && prev_is_dot && next_is(b'(') => {
                push(out, Cost::Blocking, format!(".{text}()"), None);
            }
            "sleep" if path_prefixed(src, toks, i, "thread") && next_is(b'(') => {
                push(out, Cost::Blocking, "thread::sleep".into(), None);
            }
            // Truncating casts: `expr as u32` where the target is a
            // narrow integer type. Widening casts are never flagged.
            "as" => {
                if let Some(nt) = toks.get(i + 1) {
                    if nt.kind == TokKind::Ident {
                        if let Some(target) =
                            NARROW_TARGETS.iter().find(|n| nt.is_ident(src, n))
                        {
                            casts.push(CastSite {
                                target,
                                tok: i,
                                line: t.line,
                                col: t.col,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Drain modeling: growth on a receiver that is drained anywhere in
    // the same function is the recycled-scratch idiom — balanced.
    out.extend(
        growth
            .into_iter()
            .filter(|g| match g.recv.as_deref() {
                Some(r) => !drained.contains(&r),
                None => true,
            }),
    );
}

/// The receiver identifier of a method call at token `i` (`recv.m(…)` or
/// `path.to.recv.m(…)` → `recv`), if it is a plain identifier.
fn recv_name(src: &str, toks: &[Token], i: usize) -> Option<String> {
    let r = toks.get(i.checked_sub(2)?)?;
    if r.kind == TokKind::Ident {
        let name = r.text(src);
        if name != "self" {
            return Some(name.to_string());
        }
    }
    None
}

/// Run S113–S117 over the inferred costs, appending findings to `out`.
pub(crate) fn check_costs(
    model: &WorkspaceModel,
    cg: &CallGraph,
    cfg: &HotPathConfig,
    out: &mut Vec<Finding>,
) {
    if cfg.per_event_roots.is_empty() {
        return;
    }
    let n = model.fns.len();
    let is_root = |i: FnIdx| {
        model.is_lib_fn(i) && EffectConfig::matches(&cfg.per_event_roots, &model.fq_name(i))
    };
    let roots: Vec<FnIdx> = (0..n).filter(|&i| is_root(i)).collect();
    if roots.is_empty() {
        return;
    }
    let cm = infer(model, cg);

    // Hot set: forward lib-to-lib closure of the roots.
    let hot = lib_closure(model, cg, &roots);
    // Loop context: closure of calls made from inside a hot function's
    // own loops — per-event code whether or not its body loops.
    let mut seed: Vec<FnIdx> = Vec::new();
    for (f, _) in hot.iter().enumerate().filter(|&(_, &h)| h) {
        let def = &model.fns[f].def;
        for e in &cg.out[f] {
            if !model.is_lib_fn(e.to) {
                continue;
            }
            let callee = &model.fns[e.to].def.name;
            let looped = def.calls.iter().any(|c| {
                c.line == e.line && c.name == *callee && in_loop(&cm.loops[f], c.tok)
            });
            if looped {
                seed.push(e.to);
            }
        }
    }
    let ctx = lib_closure(model, cg, &seed);
    let in_hot_loop =
        |f: FnIdx, tok: usize| ctx[f] || (hot[f] && in_loop(&cm.loops[f], tok));

    // The per-site rules: which rule a cost kind reports under, plus the
    // role word and remediation clause for the message.
    struct Family {
        rule: &'static str,
        cost: Cost,
        loop_scoped: bool,
        fix: &'static str,
    }
    let families = [
        Family {
            rule: "S113",
            cost: Cost::Alloc,
            loop_scoped: true,
            fix: "hoist it into a recycled scratch buffer owned by the caller, \
                  or allowlist with the amortization invariant",
        },
        Family {
            rule: "S114",
            cost: Cost::ReallocGrowth,
            loop_scoped: true,
            fix: "drain the collection at the epoch barrier or allowlist with \
                  the occupancy bound that caps it",
        },
        Family {
            rule: "S116",
            cost: Cost::Blocking,
            loop_scoped: true,
            fix: "stage the data before the loop or allowlist with the wait \
                  bound",
        },
        Family {
            rule: "S117",
            cost: Cost::Recursion,
            loop_scoped: false,
            fix: "bound the depth or rewrite iteratively; the hot path needs \
                  statically bounded stack and work",
        },
    ];

    for (f, _) in hot.iter().enumerate().filter(|&(_, &h)| h) {
        let file = &model.files[model.fns[f].file];
        for fam in &families {
            if !cm.intrinsic[f].contains(fam.cost) {
                continue;
            }
            for site in &cm.sites[f] {
                if site.cost != fam.cost {
                    continue;
                }
                if fam.loop_scoped && !in_hot_loop(f, site.tok) {
                    continue;
                }
                let Some((anc, path)) =
                    cg.nearest_ancestor_where(f, is_root, |i| model.is_lib_fn(i))
                else {
                    continue;
                };
                let mut trace: Vec<String> =
                    path.iter().map(|e| edge_step_eff(model, e)).collect();
                trace.push(format!(
                    "{} {} `{}` at {}:{}",
                    model.fq_name(f),
                    site.cost.verb(),
                    site.what,
                    file.rel,
                    site.line
                ));
                out.push(Finding {
                    rule: fam.rule,
                    path: file.rel.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "`{}` ({}) {} hot-path root `{}` ({}); {}",
                        site.what,
                        site.cost.name(),
                        if fam.loop_scoped {
                            "runs per event inside the hot loop under"
                        } else {
                            "is reachable from"
                        },
                        model.fq_name(anc),
                        hops(path.len()),
                        fam.fix,
                    ),
                    snippet: line_text(&file.src, site.line),
                    trace,
                });
            }
        }

        // S115: truncating casts anywhere in the hot set.
        for cast in &cm.casts[f] {
            let Some((anc, path)) =
                cg.nearest_ancestor_where(f, is_root, |i| model.is_lib_fn(i))
            else {
                continue;
            };
            let mut trace: Vec<String> = path.iter().map(|e| edge_step_eff(model, e)).collect();
            trace.push(format!(
                "{} truncates via `as {}` at {}:{}",
                model.fq_name(f),
                cast.target,
                file.rel,
                cast.line
            ));
            out.push(Finding {
                rule: "S115",
                path: file.rel.clone(),
                line: cast.line,
                col: cast.col,
                message: format!(
                    "`as {}` (truncating cast) is reachable from hot-path root \
                     `{}` ({}); convert with try_into and a typed \
                     Error::IdOverflow, or allowlist with the range invariant \
                     that rules out overflow",
                    cast.target,
                    model.fq_name(anc),
                    hops(path.len()),
                ),
                snippet: line_text(&file.src, cast.line),
                trace,
            });
        }
    }
}

/// Forward lib-to-lib closure of `seeds` (seeds included), as a
/// membership vector over all functions.
fn lib_closure(model: &WorkspaceModel, cg: &CallGraph, seeds: &[FnIdx]) -> Vec<bool> {
    let mut seen = vec![false; model.fns.len()];
    let mut stack: Vec<FnIdx> = Vec::new();
    for &s in seeds {
        if model.is_lib_fn(s) && !seen[s] {
            seen[s] = true;
            stack.push(s);
        }
    }
    while let Some(u) = stack.pop() {
        for e in &cg.out[u] {
            if model.is_lib_fn(e.to) && !seen[e.to] {
                seen[e.to] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// `"N calls away"` for trace messages, or `"in its own body"` when the
/// site sits in the root itself.
fn hops(n: usize) -> String {
    match n {
        0 => "in its own body".to_string(),
        1 => "1 call away".to_string(),
        n => format!("{n} calls away"),
    }
}

fn line_text(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_set_ops() {
        let s = CostSet::of(Cost::Alloc).union(CostSet::of(Cost::Blocking));
        assert!(s.contains(Cost::Alloc));
        assert!(s.contains(Cost::Blocking));
        assert!(!s.contains(Cost::Recursion));
        assert!(CostSet::EMPTY.is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn fixpoint_delegates_and_converges() {
        // 0 → 1 → 2 → 1 (cycle), intrinsic only on 2.
        let out = vec![vec![1], vec![2], vec![1]];
        let intr = vec![0u16, 0, 0b1];
        let eff = fixpoint(&out, &intr, &[0, 1, 2]);
        assert_eq!(eff, vec![0b1, 0b1, 0b1]);
        assert_eq!(fixpoint(&out, &intr, &[2, 1, 0]), eff);
    }

    #[test]
    fn reaches_detects_cycles_and_dead_ends() {
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        assert!(reaches(&adj, 1, 0));
        assert!(reaches(&adj, 0, 0));
        assert!(!reaches(&adj, 3, 0));
    }

    #[test]
    fn hops_wording() {
        assert_eq!(hops(0), "in its own body");
        assert_eq!(hops(1), "1 call away");
        assert_eq!(hops(3), "3 calls away");
    }
}
