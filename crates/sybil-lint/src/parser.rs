//! Item-level Rust parser on top of the token [`lexer`](crate::lexer).
//!
//! This is not a grammar-complete parser — it extracts exactly the item
//! structure the semantic rules (S101–S105) need from one file:
//!
//! * function definitions with visibility, enclosing module path, and
//!   enclosing `impl` type,
//! * call expressions inside each function body (free calls, `path::`
//!   calls, and `.method()` calls, including turbofish forms),
//! * panic sites (`unwrap`/`expect`/panic-family macros) and guard-free
//!   indexing sites,
//! * floating-point reduction sites (`sum`/`product`/`fold`, and `+=` /
//!   `*=` inside loops, in functions with float evidence),
//! * `par::` parallel-map call sites together with the mutable state and
//!   RNG handles their closure arguments capture,
//! * non-`fn` `pub` items (structs, enums, traits, consts, …) for the
//!   dead-export analysis.
//!
//! Everything is resolved later against the whole workspace by
//! [`symbols`](crate::symbols) and [`callgraph`](crate::callgraph).

use crate::lexer::{lex, TokKind, Token};

/// Visibility of an item as written at its definition site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// `pub` with no restriction — exported from the crate.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — crate-internal.
    PubRestricted,
    /// No `pub` at all.
    Private,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment or method name).
    pub name: String,
    /// Path segments before the name (`osn_graph::par::map_indexed` →
    /// `["osn_graph", "par"]`); empty for bare and method calls.
    pub path: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// Token index of the callee name (for span containment tests).
    pub tok: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// 1-based source column of the callee name.
    pub col: u32,
}

/// What kind of potential panic a [`PanicSite`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!` / `assert!`-family is *not* counted.
    Macro,
    /// `x[i]` indexing in a function with no guard evidence at all.
    Index,
}

/// One potential panic site inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What shape of panic this is.
    pub kind: PanicKind,
    /// Token text that identifies the site (`unwrap`, `panic`, the indexed
    /// name, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One floating-point reduction site inside a function body.
#[derive(Clone, Debug)]
pub struct ReductionSite {
    /// `sum`, `product`, `fold`, `+=`, or `*=`.
    pub what: String,
    /// The site is definitely float-typed (turbofish names `f32`/`f64`);
    /// otherwise it only counts when the function shows float evidence.
    pub definite: bool,
    /// Token index (for par-argument containment tests).
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A captured binding observed inside a closure passed to a `par::` call.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The captured identifier.
    pub name: String,
    /// `"&mut"` or `"rng"` — how the capture was detected.
    pub how: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `par::map*` / `par::sweep*` call site.
#[derive(Clone, Debug)]
pub struct ParCall {
    /// The entry-point name (`map_indexed`, `map_slice`, …).
    pub entry: String,
    /// Token index range `(open, close)` of the argument parentheses.
    pub args: (usize, usize),
    /// Mutable state / RNG handles captured from outside the closures.
    pub captures: Vec<Capture>,
    /// 1-based line of the entry-point name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A function definition extracted from one file.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// In-file module path (from `mod` blocks), outermost first.
    pub modules: Vec<String>,
    /// Enclosing `impl` self type, if any (`impl SumUp` → `SumUp`;
    /// `impl SybilDefense for SumUp` → `SumUp`).
    pub self_ty: Option<String>,
    /// Visibility at the definition site.
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Floating-point reduction sites in the body.
    pub reductions: Vec<ReductionSite>,
    /// `par::` parallel-map call sites in the body.
    pub par_calls: Vec<ParCall>,
    /// The body mentions `f32`/`f64` or a float literal.
    pub float_evidence: bool,
    /// The body contains bounds-guard evidence (asserts, `len`, `get`,
    /// `min`, `clamp`, `position`, …) — suppresses `Index` panic sites.
    pub has_guard: bool,
    /// The definition sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Token-index span `(open, close)` of the body braces in the file's
    /// token stream — lets later passes (effect-intrinsic collection)
    /// re-lex the file and attribute token patterns to this function.
    pub body: (usize, usize),
}

/// A non-`fn` item definition (struct, enum, trait, const, …).
#[derive(Clone, Debug)]
pub struct ItemDef {
    /// Item keyword (`struct`, `enum`, `trait`, `type`, `const`, `static`).
    pub kind: String,
    /// Item name.
    pub name: String,
    /// Visibility at the definition site.
    pub vis: Vis,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// The definition sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// All function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// All non-`fn` items, in source order.
    pub items: Vec<ItemDef>,
    /// Every identifier that occurs anywhere in the file (deduplicated,
    /// sorted) — the usage side of the dead-export analysis.
    pub idents: Vec<String>,
    /// Identifiers occurring inside `#[cfg(test)]`/`#[test]` spans
    /// (deduplicated, sorted) — inline unit tests keep exports alive.
    pub test_idents: Vec<String>,
}

/// Bodies containing any of these identifiers are considered
/// bounds-guarded, suppressing `Index` panic sites. Deliberately broad:
/// S101's indexing arm only exists to catch *completely* unguarded
/// accessors.
const GUARD_IDENTS: [&str; 14] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "len",
    "get",
    "get_mut",
    "min",
    "clamp",
    "position",
    "is_empty",
    "resize",
];

const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Keywords that look like calls (`if (…)`, `match (…)`) but are not.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "move", "in", "as",
    "where", "impl",
];

/// Keywords that may directly precede `[` without the bracket being an
/// index expression (`for x in [...]`, `return [...]`, `&mut [...]`).
const EXPR_KEYWORDS: [&str; 10] = [
    "in", "return", "if", "else", "match", "break", "mut", "ref", "move", "const",
];

/// The `osn_graph::par` entry points whose closures cross the thread
/// boundary.
const PAR_ENTRIES: [&str; 3] = ["map_indexed", "map_indexed_with", "map_slice"];

/// Parse one file. `test_spans` are the `#[cfg(test)]`/`#[test]` line
/// ranges computed by the token rules (shared so both layers agree on
/// what counts as test code).
pub fn parse(src: &str, test_spans: &[(u32, u32)]) -> ParsedFile {
    let toks = lex(src);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = ParsedFile::default();

    let mut idents: Vec<String> = Vec::new();
    let mut test_idents: Vec<String> = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Ident) {
        idents.push(t.text(src).to_string());
        if in_test(t.line) {
            test_idents.push(t.text(src).to_string());
        }
    }
    idents.sort_unstable();
    idents.dedup();
    test_idents.sort_unstable();
    test_idents.dedup();
    out.idents = idents;
    out.test_idents = test_idents;

    // Scope stacks: (name, brace depth at which the block opened).
    let mut depth: i32 = 0;
    let mut mods: Vec<(String, i32)> = Vec::new();
    let mut impls: Vec<(String, i32)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                while mods.last().is_some_and(|&(_, d)| d > depth) {
                    mods.pop();
                }
                while impls.last().is_some_and(|&(_, d)| d > depth) {
                    impls.pop();
                }
                i += 1;
            }
            TokKind::Ident => {
                let text = t.text(src);
                match text {
                    "mod" => {
                        // `mod name { … }` or `mod name;` (out-of-line).
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokKind::Ident
                                && toks.get(i + 2).is_some_and(|x| x.is_punct(b'{'))
                            {
                                mods.push((name_tok.text(src).to_string(), depth + 1));
                                depth += 1;
                                i += 3;
                                continue;
                            }
                        }
                        i += 1;
                    }
                    "impl" => {
                        if let Some((ty, body_open)) = impl_self_type(src, &toks, i) {
                            impls.push((ty, depth + 1));
                            depth += 1;
                            i = body_open + 1;
                        } else {
                            i += 1;
                        }
                    }
                    "fn" => {
                        let (def, next) = parse_fn(src, &toks, i, &mods, &impls, &in_test);
                        if let Some(def) = def {
                            out.fns.push(def);
                        }
                        i = next;
                    }
                    "struct" | "enum" | "trait" | "type" | "const" | "static" => {
                        // Module-level items only: they sit exactly at the
                        // depth of the innermost `mod` block (0 at file top
                        // level), which excludes `const`s inside fn bodies
                        // and associated items inside `impl` blocks.
                        let at_mod_level = depth == mods.last().map_or(0, |&(_, d)| d)
                            && impls.last().is_none_or(|&(_, d)| d != depth);
                        if at_mod_level {
                            if let Some(name_tok) = toks.get(i + 1) {
                                if name_tok.kind == TokKind::Ident {
                                    out.items.push(ItemDef {
                                        kind: text.to_string(),
                                        name: name_tok.text(src).to_string(),
                                        vis: visibility(src, &toks, i),
                                        line: t.line,
                                        in_test: in_test(t.line),
                                    });
                                }
                            }
                        }
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Determine the visibility written immediately before item keyword at
/// `kw_idx`, skipping `const`/`unsafe`/`async`/`extern "…"` qualifiers.
fn visibility(src: &str, toks: &[Token], kw_idx: usize) -> Vis {
    let mut i = kw_idx;
    // Walk back over fn qualifiers.
    while let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) {
        let is_qual = prev.kind == TokKind::Ident
            && matches!(prev.text(src), "const" | "unsafe" | "async" | "extern")
            || prev.kind == TokKind::Str;
        if is_qual {
            i -= 1;
        } else {
            break;
        }
    }
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return Vis::Private;
    };
    if prev.is_ident(src, "pub") {
        return Vis::Pub;
    }
    // `pub ( crate ) kw` — prev is `)`; walk back to the matching `(`
    // and check the token before it.
    if prev.is_punct(b')') {
        let mut j = i - 1;
        let mut d = 0i32;
        while j > 0 {
            if toks[j].is_punct(b')') {
                d += 1;
            } else if toks[j].is_punct(b'(') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            j -= 1;
        }
        if j > 0 && toks.get(j - 1).is_some_and(|t| t.is_ident(src, "pub")) {
            return Vis::PubRestricted;
        }
    }
    Vis::Private
}

/// For `impl …` at `impl_idx`, return the self type name and the token
/// index of the body `{`.
fn impl_self_type(src: &str, toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    // Skip generic parameters `<…>`.
    if toks.get(i).is_some_and(|t| t.is_punct(b'<')) {
        let mut d = 0i32;
        while i < toks.len() {
            if toks[i].is_punct(b'<') {
                d += 1;
            } else if toks[i].is_punct(b'>') {
                d -= 1;
                if d == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Scan to the body `{`, remembering the last type name seen at angle
    // depth 0 and whether a `for` appeared (trait impl: type follows it).
    let mut d = 0i32;
    let mut last_ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'<') => d += 1,
            TokKind::Punct(b'>') => d -= 1,
            TokKind::Punct(b'{') if d <= 0 => {
                let ty = if saw_for { after_for } else { last_ty };
                return ty.map(|ty| (ty, i));
            }
            TokKind::Punct(b';') => return None,
            TokKind::Ident if d <= 0 => {
                let text = t.text(src);
                if text == "for" {
                    saw_for = true;
                } else if text == "where" {
                    // Self type is settled; keep scanning for `{`.
                } else if text != "dyn" && text != "mut" {
                    if saw_for && after_for.is_none() {
                        after_for = Some(text.to_string());
                    } else if !saw_for {
                        last_ty = Some(text.to_string());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse one `fn` item starting at the `fn` keyword; returns the
/// definition (None for bodyless trait-method declarations) and the token
/// index to resume scanning at (past the body, so nested closures/items
/// inside bodies are attributed to this function, while nested `fn` items
/// are rare enough to fold into the parent — a deliberate simplification).
fn parse_fn(
    src: &str,
    toks: &[Token],
    fn_idx: usize,
    mods: &[(String, i32)],
    impls: &[(String, i32)],
    in_test: &dyn Fn(u32) -> bool,
) -> (Option<FnDef>, usize) {
    let Some(name_tok) = toks.get(fn_idx + 1) else {
        return (None, fn_idx + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, fn_idx + 1);
    }
    let name = name_tok.text(src).to_string();

    // Find the body `{` at angle/paren depth 0, or `;` (no body).
    let mut i = fn_idx + 2;
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut body_open = None;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => angle = (angle - 1).max(0),
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
            TokKind::Punct(b'-') => {
                // `-> Type` may contain `<`…: reset angle tracking is not
                // needed; generic returns keep balanced angles.
            }
            TokKind::Punct(b'{') if paren == 0 && angle <= 0 => {
                body_open = Some(i);
                break;
            }
            TokKind::Punct(b';') if paren == 0 && angle <= 0 => {
                return (None, i + 1);
            }
            _ => {}
        }
        i += 1;
    }
    let Some(open) = body_open else {
        return (None, i);
    };
    // Matching close brace.
    let mut d = 0i32;
    let mut close = open;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'{') => d += 1,
            TokKind::Punct(b'}') => {
                d -= 1;
                if d == 0 {
                    close = j;
                    break;
                }
            }
            _ => {}
        }
    }

    let mut def = FnDef {
        name,
        modules: mods.iter().map(|(m, _)| m.clone()).collect(),
        self_ty: impls.last().map(|(t, _)| t.clone()),
        vis: visibility(src, toks, fn_idx),
        line: toks[fn_idx].line,
        calls: Vec::new(),
        panics: Vec::new(),
        reductions: Vec::new(),
        par_calls: Vec::new(),
        float_evidence: false,
        has_guard: false,
        in_test: in_test(toks[fn_idx].line),
        body: (open, close),
    };
    scan_body(src, toks, open, close, &mut def);
    (Some(def), close + 1)
}

/// Walk a function body's tokens collecting calls, panic sites, float
/// reductions, and `par::` call sites.
fn scan_body(src: &str, toks: &[Token], open: usize, close: usize, def: &mut FnDef) {
    let mut loop_stack: Vec<i32> = Vec::new(); // brace depth of loop bodies
    let mut depth = 0i32;
    let mut index_sites: Vec<(String, u32, u32)> = Vec::new();
    let mut i = open;
    while i <= close && i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                while loop_stack.last().is_some_and(|&d| d > depth) {
                    loop_stack.pop();
                }
            }
            TokKind::Punct(b'[') => {
                // Indexing: previous token ends an expression. `#[…]`
                // attributes are excluded by the `#` check; a keyword
                // before `[` means an array literal, not indexing.
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let indexes = prev.is_some_and(|p| {
                    matches!(p.kind, TokKind::Ident | TokKind::Punct(b')') | TokKind::Punct(b']'))
                        && !EXPR_KEYWORDS.iter().any(|k| p.is_ident(src, k))
                });
                if indexes {
                    // Only *computed* indices (arithmetic inside the
                    // brackets — the off-by-one class) count as panic
                    // sites. Plain `v[i]` lookups are the NodeId-indexing
                    // idiom whose bounds the container's constructor
                    // established; flagging them would drown the report.
                    let mut j = i + 1;
                    let mut d = 1;
                    let mut computed = false;
                    while j <= close && j < toks.len() && d > 0 {
                        match toks[j].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => d -= 1,
                            TokKind::Punct(b'+' | b'-' | b'*' | b'/' | b'%') if d == 1 => {
                                computed = true
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if computed {
                        let what = prev
                            .filter(|p| p.kind == TokKind::Ident)
                            .map(|p| p.text(src).to_string())
                            .unwrap_or_else(|| "<expr>".to_string());
                        index_sites.push((what, t.line, t.col));
                    }
                }
            }
            TokKind::Punct(b'+') | TokKind::Punct(b'*')
                if toks.get(i + 1).is_some_and(|n| n.is_punct(b'=') && n.start == t.end) =>
            {
                // `x += 1;` — an integer-literal step is a counter, not a
                // float accumulation, regardless of the function's floats.
                let int_step = toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Num && !n.text(src).contains('.')
                }) && toks.get(i + 3).is_some_and(|n| n.is_punct(b';'));
                if !loop_stack.is_empty() && !int_step {
                    let what = if t.is_punct(b'+') { "+=" } else { "*=" };
                    def.reductions.push(ReductionSite {
                        what: what.to_string(),
                        definite: false,
                        tok: i,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            // Float literal: `1` `.` `5` or `0` `.` (trailing) with byte
            // adjacency.
            TokKind::Num
                if toks.get(i + 1).is_some_and(|d| d.is_punct(b'.') && d.start == t.end) =>
            {
                def.float_evidence = true;
            }
            TokKind::Ident => {
                let text = t.text(src);
                if text == "f32" || text == "f64" {
                    def.float_evidence = true;
                }
                if GUARD_IDENTS.contains(&text) {
                    def.has_guard = true;
                }
                if text == "for" || text == "while" || text == "loop" {
                    // The loop body opens at the next depth level.
                    loop_stack.push(depth + 1);
                }
                // Panic macros.
                if PANIC_MACROS.contains(&text)
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
                {
                    def.panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        what: format!("{text}!"),
                        line: t.line,
                        col: t.col,
                    });
                }
                // Method-style panic sites.
                let is_method = i >= 1 && toks[i - 1].is_punct(b'.');
                if is_method
                    && (text == "unwrap" || text == "expect")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(b'('))
                {
                    def.panics.push(PanicSite {
                        kind: if text == "unwrap" {
                            PanicKind::Unwrap
                        } else {
                            PanicKind::Expect
                        },
                        what: format!(".{text}()"),
                        line: t.line,
                        col: t.col,
                    });
                }
                // Calls: `name(`, `name::<T>(`, `path::name(`, `.name(`.
                let mut call_paren = None;
                if toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
                    call_paren = Some(i + 1);
                } else if toks.get(i + 1).is_some_and(|n| n.is_punct(b':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(b':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct(b'<'))
                {
                    // Turbofish: skip the `<…>` and require `(`.
                    let mut d = 0i32;
                    let mut j = i + 3;
                    while j < toks.len() {
                        if toks[j].is_punct(b'<') {
                            d += 1;
                        } else if toks[j].is_punct(b'>') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    if toks.get(j + 1).is_some_and(|n| n.is_punct(b'(')) {
                        call_paren = Some(j + 1);
                        // Float-typed reductions are definite.
                        if matches!(text, "sum" | "product" | "fold") {
                            let tf: Vec<&str> = toks[i + 3..j]
                                .iter()
                                .filter(|x| x.kind == TokKind::Ident)
                                .map(|x| x.text(src))
                                .collect();
                            if tf.contains(&"f32") || tf.contains(&"f64") {
                                def.reductions.push(ReductionSite {
                                    what: text.to_string(),
                                    definite: true,
                                    tok: i,
                                    line: t.line,
                                    col: t.col,
                                });
                            }
                        }
                    }
                }
                if let Some(paren) = call_paren {
                    if !NON_CALL_KEYWORDS.contains(&text) {
                        let method = is_method;
                        // Plain (non-turbofish) reduction methods.
                        if method
                            && matches!(text, "sum" | "product" | "fold")
                            && paren == i + 1
                        {
                            def.reductions.push(ReductionSite {
                                what: text.to_string(),
                                definite: false,
                                tok: i,
                                line: t.line,
                                col: t.col,
                            });
                        }
                        let path = if method { Vec::new() } else { path_before(src, toks, i) };
                        // `par::map_*` entry points get closure-capture
                        // analysis over their argument span.
                        if !method
                            && PAR_ENTRIES.contains(&text)
                            && path.last().is_some_and(|p| p == "par")
                        {
                            let close_paren = matching_paren(toks, paren);
                            def.par_calls.push(ParCall {
                                entry: text.to_string(),
                                args: (paren, close_paren),
                                captures: closure_captures(src, toks, paren, close_paren),
                                line: t.line,
                                col: t.col,
                            });
                        }
                        def.calls.push(Call {
                            name: text.to_string(),
                            path,
                            method,
                            tok: i,
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    if !def.has_guard {
        for (what, line, col) in index_sites {
            def.panics.push(PanicSite {
                kind: PanicKind::Index,
                what: format!("{what}[…]"),
                line,
                col,
            });
        }
        def.panics.sort_by_key(|a| (a.line, a.col));
    }
}

/// Path segments written before the ident at `idx` (`a::b::name` → `[a, b]`).
fn path_before(src: &str, toks: &[Token], idx: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut i = idx;
    while let Some([seg, c1, c2]) = i.checked_sub(3).and_then(|p| toks.get(p..i)) {
        if !(c1.is_punct(b':') && c2.is_punct(b':') && seg.kind == TokKind::Ident) {
            break;
        }
        segs.push(seg.text(src).to_string());
        i -= 3;
    }
    segs.reverse();
    segs
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut d = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(b'(') {
            d += 1;
        } else if t.is_punct(b')') {
            d -= 1;
            if d == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Analyze the argument span of a `par::` call for mutable state and RNG
/// handles captured from the enclosing scope.
///
/// Locals are approximated as: closure parameters (idents between `|…|`
/// pairs), `let` bindings inside the span, and `for` loop variables. Any
/// `&mut NAME` or `NAME.method(…)` where `NAME` looks like an RNG
/// (contains "rng") referring to a non-local is reported.
fn closure_captures(src: &str, toks: &[Token], open: usize, close: usize) -> Vec<Capture> {
    let mut locals: Vec<&str> = Vec::new();
    let mut i = open;
    while i < close {
        let t = &toks[i];
        if t.is_punct(b'|') {
            // Closure parameter list: idents up to the next `|`.
            let mut j = i + 1;
            while j < close && !toks[j].is_punct(b'|') {
                if toks[j].kind == TokKind::Ident && !toks[j].is_ident(src, "mut") {
                    locals.push(toks[j].text(src));
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident(src, "let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|x| x.is_ident(src, "mut")) {
                j += 1;
            }
            // Bind simple and tuple patterns: idents up to `=` or `:`.
            while j < close
                && !toks[j].is_punct(b'=')
                && !toks[j].is_punct(b';')
                && j - i < 16
            {
                if toks[j].kind == TokKind::Ident && !toks[j].is_ident(src, "mut") {
                    locals.push(toks[j].text(src));
                }
                j += 1;
            }
        }
        if t.is_ident(src, "for") {
            let mut j = i + 1;
            while j < close && !toks[j].is_ident(src, "in") && j - i < 16 {
                if toks[j].kind == TokKind::Ident {
                    locals.push(toks[j].text(src));
                }
                j += 1;
            }
        }
        i += 1;
    }

    let mut out = Vec::new();
    for i in open..close {
        let t = &toks[i];
        // `& mut NAME`
        if t.is_punct(b'&')
            && toks.get(i + 1).is_some_and(|x| x.is_ident(src, "mut"))
            && toks.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
        {
            let name = toks[i + 2].text(src);
            if !locals.contains(&name) {
                out.push(Capture {
                    name: name.to_string(),
                    how: "&mut",
                    line: t.line,
                    col: t.col,
                });
            }
        }
        // `NAME.method(` where NAME contains "rng"
        if t.kind == TokKind::Ident
            && t.text(src).to_ascii_lowercase().contains("rng")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(b'.'))
            && toks.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|x| x.is_punct(b'('))
        {
            let name = t.text(src);
            if !locals.contains(&name) {
                out.push(Capture {
                    name: name.to_string(),
                    how: "rng",
                    line: t.line,
                    col: t.col,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::test_line_spans_for;

    fn parse_src(src: &str) -> ParsedFile {
        parse(src, &test_line_spans_for(src))
    }

    #[test]
    fn extracts_fns_with_visibility_modules_and_impls() {
        let src = "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\n\
                   mod inner { pub fn d() {} }\n\
                   struct T;\nimpl T { pub fn m(&self) {} }\n\
                   trait Tr { fn decl(&self); }\nimpl Tr for T { fn decl(&self) {} }\n";
        let p = parse_src(src);
        let names: Vec<(&str, Vis)> = p.fns.iter().map(|f| (f.name.as_str(), f.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("a", Vis::Pub),
                ("b", Vis::Private),
                ("c", Vis::PubRestricted),
                ("d", Vis::Pub),
                ("m", Vis::Pub),
                ("decl", Vis::Private),
            ]
        );
        assert_eq!(p.fns[3].modules, vec!["inner".to_string()]);
        assert_eq!(p.fns[4].self_ty.as_deref(), Some("T"));
        assert_eq!(p.fns[5].self_ty.as_deref(), Some("T"));
    }

    #[test]
    fn extracts_calls_paths_and_methods() {
        let src = "fn f(g: &G) { helper(); osn_graph::bfs::distances(g); v.push(1); }\n";
        let p = parse_src(src);
        let calls = &p.fns[0].calls;
        assert_eq!(calls[0].name, "helper");
        assert!(calls[0].path.is_empty() && !calls[0].method);
        assert_eq!(calls[1].name, "distances");
        assert_eq!(calls[1].path, vec!["osn_graph".to_string(), "bfs".to_string()]);
        assert_eq!(calls[2].name, "push");
        assert!(calls[2].method);
    }

    #[test]
    fn finds_panic_sites_and_guard_free_indexing() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i + 1] }\n\
                   fn g(v: &[u32], i: usize) -> u32 { if i + 1 < v.len() { v[i + 1] } else { 0 } }\n\
                   fn h(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn p() { panic!(\"no\"); }\n\
                   fn plain(v: &[u32], i: usize) -> u32 { v[i] }\n\
                   fn lit() -> u32 { let mut s = 0; for x in [1, 2] { s += x; } s }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].panics.len(), 1);
        assert_eq!(p.fns[0].panics[0].kind, PanicKind::Index);
        assert!(p.fns[1].panics.is_empty(), "len() guard suppresses indexing");
        assert_eq!(p.fns[2].panics[0].kind, PanicKind::Unwrap);
        assert_eq!(p.fns[3].panics[0].kind, PanicKind::Macro);
        assert!(p.fns[4].panics.is_empty(), "plain v[i] is not a panic site");
        assert!(p.fns[5].panics.is_empty(), "array literal after `in` is not indexing");
    }

    #[test]
    fn finds_float_reductions() {
        let src = "fn s(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
                   fn t(xs: &[f64]) -> f64 { let mut a = 0.0; for x in xs { a += x; } a }\n\
                   fn u(xs: &[u32]) -> u32 { let mut a = 0; for x in xs { a += x; } a }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].reductions.len(), 1);
        assert!(p.fns[0].reductions[0].definite);
        assert_eq!(p.fns[1].reductions.len(), 1);
        assert!(p.fns[1].float_evidence);
        assert_eq!(p.fns[2].reductions.len(), 1, "+= in loop is a candidate");
        assert!(!p.fns[2].float_evidence, "but integer fns have no float evidence");
    }

    #[test]
    fn finds_par_calls_and_captures() {
        let src = "fn f(n: usize, rng: &mut R) -> Vec<u32> {\n\
                   par::map_indexed(n, |i| { let mut acc = 0; acc += i; rng.next(acc) })\n\
                   }\n\
                   fn ok(n: usize) -> Vec<usize> { par::map_indexed(n, |i| { let mut v = vec![]; v.push(i); v.len() }) }\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].par_calls.len(), 1);
        let pc = &p.fns[0].par_calls[0];
        assert_eq!(pc.entry, "map_indexed");
        assert_eq!(pc.captures.len(), 1);
        assert_eq!(pc.captures[0].name, "rng");
        assert_eq!(pc.captures[0].how, "rng");
        assert!(p.fns[1].par_calls[0].captures.is_empty());
    }

    #[test]
    fn collects_pub_items_and_idents() {
        let src = "pub struct S;\npub enum E { A }\nconst PRIVATE: u32 = 1;\n\
                   pub trait T {}\n#[cfg(test)]\nmod tests { pub struct Hidden; }\n";
        let p = parse_src(src);
        let pubs: Vec<(&str, &str)> = p
            .items
            .iter()
            .filter(|i| i.vis == Vis::Pub && !i.in_test)
            .map(|i| (i.kind.as_str(), i.name.as_str()))
            .collect();
        assert_eq!(pubs, vec![("struct", "S"), ("enum", "E"), ("trait", "T")]);
        assert!(p.idents.binary_search(&"PRIVATE".to_string()).is_ok());
    }
}
