//! Interprocedural effect inference over the workspace call graph.
//!
//! Each function gets an [`EffectSet`] — a bitmask over the eight effect
//! kinds in [`Effect`] — seeded from *leaf intrinsics* found by scanning
//! the function's body tokens (`Instant::now`, `env::var`, `fs::read`,
//! `println!`, `thread::spawn`, hash-container iteration, …) and
//! propagated to a least fixpoint over the name-resolved [`CallGraph`]:
//! a caller inherits every effect of every callee it can reach. The
//! propagation is deliberately over-approximate in exactly the same way
//! the call graph is — a `.step(…)` call contributes the effects of
//! *every* workspace method named `step` — because over-approximation is
//! the safe direction for a "prove the core clockless" analysis: it can
//! only report a spurious path, never hide a real one. `par::` closure
//! bodies need no special casing — the parser attributes calls inside
//! closure arguments to the enclosing function, so their edges (and thus
//! their effects) already flow through the graph; trait-object dispatch
//! is covered by the method-name over-approximation.
//!
//! The join is set union — commutative, associative, idempotent — so the
//! least fixpoint is independent of visit order. [`fixpoint`] takes the
//! iteration order as an explicit argument purely so the property can be
//! tested (see the order-independence proptest in `tests/eff_rules.rs`).
//!
//! On top of the inferred sets sit two rule shapes. S109/S110/S111/S118
//! are *reachability* rules anchored by [`EffectConfig`], the `lint.toml`
//! `[effects.roots]` / `[effects.sinks]` tables: a designated root or
//! sink function whose inferred set contains a forbidden effect is a
//! violation, reported at the leaf intrinsic with the full call chain
//! from the root — the same shape as S101's panic traces. S112 and S119
//! are *site* rules, no config needed: `thread::spawn`/`thread::scope`
//! anywhere outside the two sanctioned scheduler files, and file IO in
//! the persistence crate anywhere outside its format module, are flagged
//! directly at the intrinsic.

use crate::callgraph::{CallGraph, Edge};
use crate::lexer::{lex, TokKind, Token};
use crate::parser::FnDef;
use crate::report::Finding;
use crate::rules::{hash_iteration_sites, test_line_spans_for, FileKind};
use crate::symbols::{FnIdx, WorkspaceModel};

/// One effect kind — a bit position in [`EffectSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Reads a wall clock: `Instant::now`, `SystemTime`, `UNIX_EPOCH`.
    ReadsWallClock = 0,
    /// Reads the process environment: `env::var`, `env::args`, ….
    ReadsEnv = 1,
    /// Observes the current thread's identity: `thread::current()`.
    ReadsThreadId = 2,
    /// Reads from the filesystem or stdin.
    IoRead = 3,
    /// Writes to the filesystem, stdout, or stderr.
    IoWrite = 4,
    /// May panic (unwrap/expect/panic-family/unguarded index).
    Panics = 5,
    /// Iterates a `HashMap`/`HashSet` without restoring an order.
    NondetIter = 6,
    /// Spawns a thread: `thread::spawn`, `thread::scope`.
    Spawns = 7,
}

impl Effect {
    /// Human-readable effect name for messages.
    pub fn name(self) -> &'static str {
        match self {
            Effect::ReadsWallClock => "wall-clock read",
            Effect::ReadsEnv => "environment read",
            Effect::ReadsThreadId => "thread-id read",
            Effect::IoRead => "IO read",
            Effect::IoWrite => "IO write",
            Effect::Panics => "panic",
            Effect::NondetIter => "unordered hash iteration",
            Effect::Spawns => "thread spawn",
        }
    }

    /// The verb phrase used in the final trace step.
    fn verb(self) -> &'static str {
        match self {
            Effect::ReadsWallClock => "reads the wall clock via",
            Effect::ReadsEnv => "reads the environment via",
            Effect::ReadsThreadId => "reads the thread id via",
            Effect::IoRead => "performs IO read via",
            Effect::IoWrite => "performs IO write via",
            Effect::Panics => "may panic via",
            Effect::NondetIter => "iterates unordered via",
            Effect::Spawns => "spawns a thread via",
        }
    }
}

/// A set of [`Effect`]s as a bitmask. Union is the lattice join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EffectSet(pub u16);

impl EffectSet {
    /// The empty set (lattice bottom).
    pub const EMPTY: EffectSet = EffectSet(0);

    /// Singleton set.
    pub fn of(e: Effect) -> EffectSet {
        EffectSet(1 << (e as u16))
    }

    /// Does the set contain `e`?
    pub fn contains(self, e: Effect) -> bool {
        self.0 & (1 << (e as u16)) != 0
    }

    /// Set union (the join).
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Is any effect present?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// One leaf intrinsic found in a function body: the evidence a finding's
/// final trace step points at.
#[derive(Clone, Debug)]
pub struct EffectSite {
    /// Which effect the site contributes.
    pub effect: Effect,
    /// The token pattern that identifies it (`Instant::now()`,
    /// `env::var`, `m.keys()`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Root/sink designation from `lint.toml`'s `[effects.roots]` and
/// `[effects.sinks]` tables. Patterns match fully qualified function
/// names ([`WorkspaceModel::fq_name`]) either exactly or by prefix when
/// the pattern ends in `*` (`sybil-serve::shard::*`). Empty pattern
/// lists disable the corresponding rule, so a workspace with no
/// `[effects.*]` config gets S112 only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectConfig {
    /// S109 roots: functions that must not reach wall-clock / env /
    /// thread-id reads.
    pub clockless_roots: Vec<String>,
    /// S110 roots: the epoch-barrier critical path, which must not
    /// reach filesystem/stdio IO.
    pub io_free_roots: Vec<String>,
    /// S111 sinks: serialization/export entry points that must not
    /// reach unordered hash iteration.
    pub byte_stable_sinks: Vec<String>,
    /// S118 roots: the production fault-plane surface (the `FaultPlane`
    /// trait's no-op defaults and `NoFaults`), which must not reach
    /// filesystem/stdio IO — journaling belongs to the chaos plane only.
    pub fault_plane_roots: Vec<String>,
}

impl EffectConfig {
    /// Does `fq` match any pattern in `pats` (exact, or `prefix*`)?
    /// Shared with the cost layer's `[hotpaths.roots]` patterns.
    pub(crate) fn matches(pats: &[String], fq: &str) -> bool {
        pats.iter().any(|p| match p.strip_suffix('*') {
            Some(prefix) => fq.starts_with(prefix),
            None => p == fq,
        })
    }
}

/// Per-function effect information for the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct EffectModel {
    /// Leaf effects found in each function's own body.
    pub intrinsic: Vec<EffectSet>,
    /// The fixpoint: own effects plus everything reachable.
    pub inferred: Vec<EffectSet>,
    /// The intrinsic evidence sites, per function, in source order.
    pub sites: Vec<Vec<EffectSite>>,
}

/// Compute the least fixpoint of `eff(f) = intrinsic(f) ∪ ⋃ eff(g)` for
/// every forward edge `f → g` in `out`, visiting functions in `order`
/// each round until nothing changes.
///
/// The join is set union, so the result is the same for every
/// permutation `order` — the property the order-independence proptest
/// exercises. `order` must list every index of `out` exactly once.
pub fn fixpoint(out: &[Vec<usize>], intrinsic: &[u16], order: &[usize]) -> Vec<u16> {
    let mut eff: Vec<u16> = intrinsic.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for &f in order {
            let mut acc = eff[f];
            for &g in &out[f] {
                acc |= eff[g];
            }
            if acc != eff[f] {
                eff[f] = acc;
                changed = true;
            }
        }
    }
    eff
}

/// Infer effects for every function: collect intrinsics from library-code
/// bodies, then propagate over lib-to-lib call edges to a fixpoint.
///
/// Propagation is confined to library functions (`is_lib_fn`): effects
/// in bins, benches, and `#[cfg(test)]` code neither seed nor transmit,
/// so a test helper that prints can never make a core function look
/// IO-dirty through an over-approximated method edge.
pub fn infer(model: &WorkspaceModel, cg: &CallGraph) -> EffectModel {
    let n = model.fns.len();
    let mut sites: Vec<Vec<EffectSite>> = vec![Vec::new(); n];

    // Group functions by file so each lib file is lexed exactly once.
    for (fi, file) in model.files.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        let src = file.src.as_str();
        let toks = lex(src);
        let spans = test_line_spans_for(src);
        let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
        let hash_sites = hash_iteration_sites(src, &toks);
        for (f, node) in model.fns.iter().enumerate() {
            if node.file != fi || !model.is_lib_fn(f) {
                continue;
            }
            collect_body_sites(src, &toks, &node.def, &mut sites[f]);
            for hs in &hash_sites {
                if hs.tok > node.def.body.0 && hs.tok < node.def.body.1 && !in_test(hs.line) {
                    sites[f].push(EffectSite {
                        effect: Effect::NondetIter,
                        what: hs.describe(),
                        line: hs.line,
                        col: hs.col,
                    });
                }
            }
            for p in &node.def.panics {
                sites[f].push(EffectSite {
                    effect: Effect::Panics,
                    what: p.what.clone(),
                    line: p.line,
                    col: p.col,
                });
            }
            sites[f].sort_by_key(|s| (s.line, s.col, s.effect as u16));
        }
    }

    let intrinsic: Vec<EffectSet> = sites
        .iter()
        .map(|s| {
            s.iter()
                .fold(EffectSet::EMPTY, |acc, site| acc.union(EffectSet::of(site.effect)))
        })
        .collect();

    // Lib-to-lib adjacency only; see the doc comment for why.
    let out_adj: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            if !model.is_lib_fn(f) {
                return Vec::new();
            }
            cg.out[f]
                .iter()
                .filter(|e| model.is_lib_fn(e.to))
                .map(|e| e.to)
                .collect()
        })
        .collect();
    let raw: Vec<u16> = intrinsic.iter().map(|s| s.0).collect();
    let order: Vec<usize> = (0..n).collect();
    let inferred = fixpoint(&out_adj, &raw, &order)
        .into_iter()
        .map(EffectSet)
        .collect();

    EffectModel {
        intrinsic,
        inferred,
        sites,
    }
}

/// `std::env` functions that read (or mutate, which implies reading for
/// any later reader) the process environment.
const ENV_FNS: [&str; 12] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "current_dir",
    "current_exe",
    "temp_dir",
    "home_dir",
    "set_var",
    "remove_var",
];

/// `std::fs` functions that read the filesystem.
const FS_READ_FNS: [&str; 7] = [
    "read",
    "read_to_string",
    "read_dir",
    "read_link",
    "metadata",
    "canonicalize",
    "symlink_metadata",
];

/// `std::fs` functions that write the filesystem.
const FS_WRITE_FNS: [&str; 9] = [
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "set_permissions",
];

/// `print`-family macros (stdout/stderr writers).
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

/// Is token `i` the last segment of a `qual::…::i` path whose segment
/// immediately before it is `qual`? Matches both `env::var` and
/// `std::env::var` (only the adjacent qualifier is checked).
pub(crate) fn path_prefixed(src: &str, toks: &[Token], i: usize, qual: &str) -> bool {
    let Some(j) = i.checked_sub(3) else {
        return false;
    };
    toks.get(j).is_some_and(|t| t.is_ident(src, qual))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(b':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct(b':'))
}

/// Scan one function's body-token span for leaf effect intrinsics
/// (everything except hash iteration and panics, which come from shared
/// collectors).
fn collect_body_sites(src: &str, toks: &[Token], def: &FnDef, out: &mut Vec<EffectSite>) {
    let (open, close) = def.body;
    let lo = (open + 1).min(toks.len());
    let hi = close.min(toks.len());
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        let next_is = |ch: u8| toks.get(i + 1).is_some_and(|n| n.is_punct(ch));
        let push = |out: &mut Vec<EffectSite>, effect: Effect, what: String| {
            out.push(EffectSite {
                effect,
                what,
                line: t.line,
                col: t.col,
            });
        };
        match text {
            // Wall clock. `Instant` alone is just a type mention (a
            // parameter, a stored field); only the `now` constructor —
            // and the ambient `SystemTime`/`UNIX_EPOCH` sources, which
            // have no injected form — observe the clock.
            "now" if path_prefixed(src, toks, i, "Instant") && next_is(b'(') => {
                push(out, Effect::ReadsWallClock, "Instant::now()".into());
            }
            "SystemTime" => push(out, Effect::ReadsWallClock, "SystemTime".into()),
            "UNIX_EPOCH" => push(out, Effect::ReadsWallClock, "UNIX_EPOCH".into()),
            // Environment.
            _ if ENV_FNS.contains(&text) && path_prefixed(src, toks, i, "env") => {
                push(out, Effect::ReadsEnv, format!("env::{text}"));
            }
            // Thread identity.
            "current" if path_prefixed(src, toks, i, "thread") && next_is(b'(') => {
                push(out, Effect::ReadsThreadId, "thread::current()".into());
            }
            // Filesystem / stdio.
            _ if FS_READ_FNS.contains(&text) && path_prefixed(src, toks, i, "fs") => {
                push(out, Effect::IoRead, format!("fs::{text}"));
            }
            _ if FS_WRITE_FNS.contains(&text) && path_prefixed(src, toks, i, "fs") => {
                push(out, Effect::IoWrite, format!("fs::{text}"));
            }
            "open" if path_prefixed(src, toks, i, "File") && next_is(b'(') => {
                push(out, Effect::IoRead, "File::open".into());
            }
            "create" if path_prefixed(src, toks, i, "File") && next_is(b'(') => {
                push(out, Effect::IoWrite, "File::create".into());
            }
            "stdin" if path_prefixed(src, toks, i, "io") && next_is(b'(') => {
                push(out, Effect::IoRead, "io::stdin()".into());
            }
            "stdout" if path_prefixed(src, toks, i, "io") && next_is(b'(') => {
                push(out, Effect::IoWrite, "io::stdout()".into());
            }
            "stderr" if path_prefixed(src, toks, i, "io") && next_is(b'(') => {
                push(out, Effect::IoWrite, "io::stderr()".into());
            }
            _ if PRINT_MACROS.contains(&text) && next_is(b'!') => {
                push(out, Effect::IoWrite, format!("{text}!"));
            }
            // Spawning.
            "spawn" | "scope" if path_prefixed(src, toks, i, "thread") && next_is(b'(') => {
                push(out, Effect::Spawns, format!("thread::{text}"));
            }
            _ => {}
        }
    }
}

/// Files allowed to spawn threads: the deterministic parallel map and
/// the serving engine's shard coordinator. Everything else routes
/// parallelism through `osn_graph::par` so S102/S103 can see it.
const SPAWN_SANCTIONED: [&str; 2] = [
    "crates/osn-graph/src/par.rs",
    "crates/sybil-serve/src/engine.rs",
];

/// The persistence crate's library sources: everything here that touches
/// a file writes *versioned* state, so the bytes must route through the
/// format module below.
const VERSIONED_STATE_DIR: &str = "crates/sybil-store/src/";

/// The one module allowed to do file IO on versioned state: it owns the
/// `SYBS` header, the length-prefixed framing, the trailer digest, and
/// the version-compatibility policy.
const FORMAT_MODULE: &str = "crates/sybil-store/src/format.rs";

/// Run S109–S112 over the inferred effects, appending findings to `out`.
pub(crate) fn check_effects(
    model: &WorkspaceModel,
    cg: &CallGraph,
    cfg: &EffectConfig,
    out: &mut Vec<Finding>,
) {
    let em = infer(model, cg);

    // The three reachability families: (rule, root patterns, effects,
    // role word for the message, remediation clause).
    let clock = EffectSet::of(Effect::ReadsWallClock)
        .union(EffectSet::of(Effect::ReadsEnv))
        .union(EffectSet::of(Effect::ReadsThreadId));
    let io = EffectSet::of(Effect::IoRead).union(EffectSet::of(Effect::IoWrite));
    let nondet = EffectSet::of(Effect::NondetIter);
    struct Family<'a> {
        rule: &'static str,
        pats: &'a [String],
        mask: EffectSet,
        role: &'static str,
        fix: &'static str,
    }
    let families = [
        Family {
            rule: "S109",
            pats: &cfg.clockless_roots,
            mask: clock,
            role: "deterministic-core root",
            fix: "inject the value at the boundary (see serve_timed) or \
                  allowlist with the invariant that keeps replay bit-identical",
        },
        Family {
            rule: "S110",
            pats: &cfg.io_free_roots,
            mask: io,
            role: "epoch-barrier path root",
            fix: "hoist the IO out of the barrier (stage bytes before, flush \
                  after) or allowlist with the blocking bound",
        },
        Family {
            rule: "S111",
            pats: &cfg.byte_stable_sinks,
            mask: nondet,
            role: "byte-stable export sink",
            fix: "iterate a BTree container or collect-and-sort before \
                  serializing so the exported bytes are order-stable",
        },
        Family {
            rule: "S118",
            pats: &cfg.fault_plane_roots,
            mask: io,
            role: "production fault-plane hook",
            fix: "keep the production plane a pure no-op — journal writes \
                  and other IO belong in the chaos plane's override, never \
                  in the default the real engine runs",
        },
    ];

    for fam in &families {
        if fam.pats.is_empty() {
            continue;
        }
        let is_root = |i: FnIdx| {
            model.is_lib_fn(i) && EffectConfig::matches(fam.pats, &model.fq_name(i))
        };
        for f in 0..model.fns.len() {
            if em.intrinsic[f].0 & fam.mask.0 == 0 {
                continue;
            }
            let Some((anc, path)) =
                cg.nearest_ancestor_where(f, is_root, |i| model.is_lib_fn(i))
            else {
                continue;
            };
            let file = &model.files[model.fns[f].file];
            for site in &em.sites[f] {
                if !fam.mask.contains(site.effect) {
                    continue;
                }
                let mut trace: Vec<String> =
                    path.iter().map(|e| edge_step_eff(model, e)).collect();
                trace.push(format!(
                    "{} {} `{}` at {}:{}",
                    model.fq_name(f),
                    site.effect.verb(),
                    site.what,
                    file.rel,
                    site.line
                ));
                out.push(Finding {
                    rule: fam.rule,
                    path: file.rel.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "`{}` ({}) is reachable from {} `{}` ({} call{} away); {}",
                        site.what,
                        site.effect.name(),
                        fam.role,
                        model.fq_name(anc),
                        path.len(),
                        if path.len() == 1 { "" } else { "s" },
                        fam.fix,
                    ),
                    snippet: line_text(&file.src, site.line),
                    trace,
                });
            }
        }
    }

    // S112: spawn sites outside the sanctioned scheduler files.
    for f in 0..model.fns.len() {
        if !em.intrinsic[f].contains(Effect::Spawns) {
            continue;
        }
        let file = &model.files[model.fns[f].file];
        if SPAWN_SANCTIONED.iter().any(|s| file.rel.ends_with(s) || file.rel == *s) {
            continue;
        }
        for site in &em.sites[f] {
            if site.effect != Effect::Spawns {
                continue;
            }
            out.push(Finding {
                rule: "S112",
                path: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{}` spawns outside the sanctioned scheduler files \
                     (osn_graph::par, sybil-serve's coordinator); route \
                     parallelism through `par::` so the capture and \
                     reduction rules can see it",
                    site.what
                ),
                snippet: line_text(&file.src, site.line),
                trace: vec![format!(
                    "{} spawns a thread via `{}` at {}:{}, outside the \
                     sanctioned scheduler files",
                    model.fq_name(f),
                    site.what,
                    file.rel,
                    site.line
                )],
            });
        }
    }

    // S119: file IO on versioned state outside the format module. A site
    // rule like S112 — no config, no allowlist: bytes the persistence
    // crate puts on disk anywhere but `format.rs` are unversioned by
    // construction.
    for f in 0..model.fns.len() {
        if !model.is_lib_fn(f) || em.intrinsic[f].0 & io.0 == 0 {
            continue;
        }
        let file = &model.files[model.fns[f].file];
        if !file.rel.starts_with(VERSIONED_STATE_DIR) || file.rel == FORMAT_MODULE {
            continue;
        }
        for site in &em.sites[f] {
            if !io.contains(site.effect) {
                continue;
            }
            out.push(Finding {
                rule: "S119",
                path: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{}` ({}) touches versioned state outside \
                     `sybil-store::format`; the SYBS header, framing, and \
                     trailer digest live in format.rs — express the \
                     operation as a `format` helper so those rules apply \
                     to every byte that reaches disk",
                    site.what,
                    site.effect.name()
                ),
                snippet: line_text(&file.src, site.line),
                trace: vec![format!(
                    "{} {} `{}` at {}:{}, outside the format module that \
                     owns the on-disk encoding",
                    model.fq_name(f),
                    site.effect.verb(),
                    site.what,
                    file.rel,
                    site.line
                )],
            });
        }
    }
}

/// One forward edge as a trace step, annotating calls made from inside a
/// `par::` closure (the parser attributes those calls to the enclosing
/// function, so the plain rendering would hide the thread boundary).
pub(crate) fn edge_step_eff(model: &WorkspaceModel, e: &Edge) -> String {
    let def = &model.fns[e.from].def;
    let callee = &model.fns[e.to].def.name;
    for pc in &def.par_calls {
        let inside = def.calls.iter().any(|c| {
            c.line == e.line && c.name == *callee && c.tok > pc.args.0 && c.tok < pc.args.1
        });
        if inside {
            return format!(
                "{} calls {} from inside the `par::{}` closure at {}:{}",
                model.fq_name(e.from),
                model.fq_name(e.to),
                pc.entry,
                model.path_of(e.from),
                e.line
            );
        }
    }
    format!(
        "{} calls {} at {}:{}",
        model.fq_name(e.from),
        model.fq_name(e.to),
        model.path_of(e.from),
        e.line
    )
}

fn line_text(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_set_ops() {
        let s = EffectSet::of(Effect::ReadsWallClock).union(EffectSet::of(Effect::Spawns));
        assert!(s.contains(Effect::ReadsWallClock));
        assert!(s.contains(Effect::Spawns));
        assert!(!s.contains(Effect::IoRead));
        assert!(EffectSet::EMPTY.is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn fixpoint_propagates_through_cycles() {
        // 0 → 1 → 2 → 1 (cycle), intrinsic only on 2.
        let out = vec![vec![1], vec![2], vec![1]];
        let intr = vec![0u16, 0, 0b100];
        let eff = fixpoint(&out, &intr, &[0, 1, 2]);
        assert_eq!(eff, vec![0b100, 0b100, 0b100]);
        // Reversed visit order reaches the same fixpoint.
        assert_eq!(fixpoint(&out, &intr, &[2, 1, 0]), eff);
    }

    #[test]
    fn config_pattern_matching() {
        let pats = vec!["a::b".to_string(), "x::y::*".to_string()];
        assert!(EffectConfig::matches(&pats, "a::b"));
        assert!(!EffectConfig::matches(&pats, "a::b::c"));
        assert!(EffectConfig::matches(&pats, "x::y::z"));
        assert!(EffectConfig::matches(&pats, "x::y::"));
        assert!(!EffectConfig::matches(&pats, "x::"));
    }
}
